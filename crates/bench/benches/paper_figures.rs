//! One Criterion benchmark group per paper table/figure.
//!
//! Each group runs the *same code path* the corresponding experiment uses,
//! at a reduced machine scale so the whole harness completes in minutes.
//! The `repro` binary (walksteal-experiments) regenerates the actual
//! numbers at paper scale; these benches track the simulator's performance
//! on each experiment's workload shape and guard against regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use walksteal_multitenant::{GpuConfig, PolicyPreset, SimResult, Simulation};
use walksteal_vm::PageSize;
use walksteal_workloads::AppId;

/// The reduced machine every figure-bench runs on.
fn bench_config() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(4)
        .with_warps_per_sm(4)
        .with_instructions_per_warp(500)
}

fn sim(cfg: GpuConfig, apps: &[AppId]) -> SimResult {
    Simulation::new(cfg, apps, 42).run()
}

fn pair_bench(c: &mut Criterion, group: &str, presets: &[PolicyPreset], apps: &[AppId]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for &preset in presets {
        g.bench_with_input(
            BenchmarkId::from_parameter(preset.label()),
            &preset,
            |b, &p| b.iter(|| sim(bench_config().with_preset(p), apps)),
        );
    }
    g.finish();
}

/// Fig. 2 / Fig. 3: Baseline vs S-TLB vs S-(TLB+PTW) on a heavy+light pair.
fn fig2_fig3(c: &mut Criterion) {
    pair_bench(
        c,
        "fig2_fig3_headroom",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::STlb,
            PolicyPreset::STlbPtw,
        ],
        &[AppId::Gups, AppId::Mm],
    );
}

/// Table III: interleaving measurement runs on the baseline.
fn tab3_interleaving(c: &mut Criterion) {
    pair_bench(
        c,
        "tab3_interleaving",
        &[PolicyPreset::Baseline],
        &[AppId::Blk, AppId::Hs],
    );
}

/// §IV doubling study: 2x-resource baseline vs private resources.
fn doubling(c: &mut Criterion) {
    pair_bench(
        c,
        "sec4_doubling",
        &[PolicyPreset::DoubledBaseline, PolicyPreset::STlbPtw],
        &[AppId::Gups, AppId::Jpeg],
    );
}

/// Fig. 5 / 6 / 7: Baseline vs DWS vs DWS++ (throughput, fairness, and
/// weighted IPC all come from the same runs).
fn fig5_fig6_fig7(c: &mut Criterion) {
    pair_bench(
        c,
        "fig5_fig6_fig7_dws",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::Dws,
            PolicyPreset::DwsPlusPlus,
        ],
        &[AppId::Gups, AppId::Jpeg],
    );
}

/// Tables V / VI: interleaving and steal accounting under DWS/DWS++.
fn tab5_tab6(c: &mut Criterion) {
    pair_bench(
        c,
        "tab5_tab6_stealing",
        &[PolicyPreset::Dws, PolicyPreset::DwsPlusPlus],
        &[AppId::Gups, AppId::Sad],
    );
}

/// Fig. 8: walk-latency accounting (heavy+medium stresses the queues most).
fn fig8_walk_latency(c: &mut Criterion) {
    pair_bench(
        c,
        "fig8_walk_latency",
        &[PolicyPreset::Baseline, PolicyPreset::Dws],
        &[AppId::Blk, AppId::Tds],
    );
}

/// Fig. 9: PW-share / TLB-share coupling pairs.
fn fig9_shares(c: &mut Criterion) {
    pair_bench(
        c,
        "fig9_shares",
        &[PolicyPreset::Baseline, PolicyPreset::Dws],
        &[AppId::Sad, AppId::Mm],
    );
}

/// Fig. 10: the DWS++ aggressiveness variants.
fn fig10_knob(c: &mut Criterion) {
    pair_bench(
        c,
        "fig10_knob",
        &[
            PolicyPreset::DwsPlusPlusConservative,
            PolicyPreset::DwsPlusPlus,
            PolicyPreset::DwsPlusPlusAggressive,
        ],
        &[AppId::Gups, AppId::Tds],
    );
}

/// Fig. 11: Static / MASK / MASK+DWS comparison points.
fn fig11_alternatives(c: &mut Criterion) {
    pair_bench(
        c,
        "fig11_alternatives",
        &[
            PolicyPreset::StaticPartition,
            PolicyPreset::Mask,
            PolicyPreset::MaskDws,
        ],
        &[AppId::Gups, AppId::Lps],
    );
}

/// Fig. 12: sensitivity sweep points (small and large VM resources).
fn fig12_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_sensitivity");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, entries, walkers) in [
        ("512e-12w", 512, 12),
        ("1024e-16w", 1024, 16),
        ("2048e-24w", 2048, 24),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let cfg = bench_config()
                    .with_l2_tlb_entries(entries)
                    .with_walkers(walkers)
                    .with_preset(PolicyPreset::Dws);
                sim(cfg, &[AppId::Sad, AppId::Hs])
            })
        });
    }
    g.finish();
}

/// Fig. 13: three- and four-tenant simulations.
fn fig13_many_tenants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_many_tenants");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let three = [AppId::Gups, AppId::Tds, AppId::Mm];
    let four = [AppId::Gups, AppId::Tds, AppId::Mm, AppId::Hs];
    g.bench_function("3-tenants", |b| {
        b.iter(|| {
            let cfg = GpuConfig::default()
                .with_n_sms(6)
                .with_warps_per_sm(4)
                .with_instructions_per_warp(500)
                .with_walkers(18)
                .with_preset(PolicyPreset::Dws);
            sim(cfg, &three)
        })
    });
    g.bench_function("4-tenants", |b| {
        b.iter(|| {
            let cfg = GpuConfig::default()
                .with_n_sms(8)
                .with_warps_per_sm(4)
                .with_instructions_per_warp(500)
                .with_preset(PolicyPreset::Dws);
            sim(cfg, &four)
        })
    });
    g.finish();
}

/// Fig. 14: 64 KB large pages.
fn fig14_large_pages(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_large_pages");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for preset in [PolicyPreset::Baseline, PolicyPreset::Dws] {
        g.bench_with_input(
            BenchmarkId::from_parameter(preset.label()),
            &preset,
            |b, &p| {
                b.iter(|| {
                    let cfg = bench_config()
                        .with_page_size(PageSize::Large64K)
                        .with_preset(p);
                    sim(cfg, &[AppId::Gups, AppId::Mm])
                })
            },
        );
    }
    g.finish();
}

/// Table II: the standalone calibration runs.
fn tab2_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_calibration");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for app in [AppId::Mm, AppId::Tds, AppId::Gups] {
        g.bench_with_input(BenchmarkId::from_parameter(app.name()), &app, |b, &a| {
            b.iter(|| sim(bench_config().with_n_sms(2), &[a]))
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig2_fig3,
    tab3_interleaving,
    doubling,
    fig5_fig6_fig7,
    tab5_tab6,
    fig8_walk_latency,
    fig9_shares,
    fig10_knob,
    fig11_alternatives,
    fig12_sensitivity,
    fig13_many_tenants,
    fig14_large_pages,
    tab2_calibration,
);
criterion_main!(figures);
