//! Microbenchmarks of the substrate data structures: the event queue,
//! caches, TLBs, the page-walk cache, the page table, and the walk
//! subsystem's dispatch path. These are the hot loops of the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use walksteal_mem::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig};
use walksteal_sim_core::{Cycle, EventQueue, SimRng, TenantId, Vpn};
use walksteal_vm::walk::WalkContext;
use walksteal_vm::{
    FrameAlloc, PageSize, PageTable, PwCache, Replacement, StealMode, Tlb, TlbConfig, WalkConfig,
    WalkPolicyKind, WalkRequest, WalkSubsystem,
};

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.push(Cycle(rng.next_below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn cache_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("probe_fill_mixed", |b| {
        let mut cache = Cache::new(CacheConfig { sets: 64, ways: 16 });
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let line = walksteal_sim_core::LineAddr(rng.next_below(4096));
            if !cache.probe(line) {
                cache.fill(line);
            }
        })
    });
    g.finish();
}

fn tlb_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.measurement_time(Duration::from_secs(3));
    for (label, replacement) in [("lru", Replacement::Lru), ("random", Replacement::Random)] {
        g.bench_with_input(
            BenchmarkId::new("probe_fill", label),
            &replacement,
            |b, &r| {
                let mut tlb = Tlb::new(
                    TlbConfig {
                        sets: 64,
                        ways: 16,
                        replacement: r,
                    },
                    2,
                );
                let mut rng = SimRng::new(3);
                let mut now = Cycle::ZERO;
                b.iter(|| {
                    now += 1;
                    let t = TenantId((rng.next_below(2)) as u8);
                    let vpn = Vpn(rng.next_below(4096));
                    if tlb.probe(t, vpn).is_none() {
                        tlb.fill(t, vpn, walksteal_sim_core::Ppn(vpn.0), now);
                    }
                })
            },
        );
    }
    g.finish();
}

fn pwc_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pwc");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("probe_fill_walk", |b| {
        let mut pwc = PwCache::new(128);
        let mut rng = SimRng::new(4);
        b.iter(|| {
            let vpn = Vpn(rng.next_below(1 << 24));
            if pwc.probe(TenantId(0), vpn, 4).is_none() {
                let nodes = [
                    walksteal_sim_core::PhysAddr(0x1000),
                    walksteal_sim_core::PhysAddr(0x2000),
                    walksteal_sim_core::PhysAddr(0x3000),
                    walksteal_sim_core::PhysAddr(0x4000),
                ];
                pwc.fill_walk(TenantId(0), vpn, &nodes);
            }
        })
    });
    g.finish();
}

fn page_table_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("walk_path_hot", |b| {
        let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut frames = FrameAlloc::new();
        // Pre-populate so the bench measures steady-state lookups.
        for v in 0..1024 {
            pt.walk_path(Vpn(v), &mut frames);
        }
        let mut rng = SimRng::new(5);
        b.iter(|| {
            let vpn = Vpn(rng.next_below(1024));
            black_box(pt.walk_path(vpn, &mut frames))
        })
    });
    g.finish();
}

fn walk_subsystem_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("walk_subsystem");
    g.measurement_time(Duration::from_secs(3));
    for (label, policy) in [
        ("shared", WalkPolicyKind::SharedQueue),
        ("dws", WalkPolicyKind::Partitioned(StealMode::Dws)),
    ] {
        g.bench_with_input(
            BenchmarkId::new("enqueue_complete", label),
            &policy,
            |b, p| {
                b.iter(|| {
                    let mut ws = WalkSubsystem::new(WalkConfig {
                        policy: p.clone(),
                        ..WalkConfig::default()
                    });
                    let mut pts = vec![
                        PageTable::new(TenantId(0), PageSize::Small4K),
                        PageTable::new(TenantId(1), PageSize::Small4K),
                    ];
                    let mut frames = FrameAlloc::new();
                    let mut mem = MemSystem::new(MemSystemConfig::default());
                    let mut rng = SimRng::new(6);
                    let mut scheduled = Vec::new();
                    let mut now = Cycle::ZERO;
                    for _ in 0..200 {
                        now += 13;
                        let t = TenantId(rng.next_below(2) as u8);
                        let mut ctx = WalkContext {
                            page_tables: &mut pts,
                            frames: &mut frames,
                            mem: &mut mem,
                            mask: None,
                        };
                        if let Ok(Some(d)) = ws.try_enqueue(
                            WalkRequest {
                                tenant: t,
                                vpn: Vpn(u64::from(t.0) * 0x10_0000 + rng.next_below(512)),
                            },
                            now,
                            &mut ctx,
                        ) {
                            scheduled.push(d);
                        }
                        scheduled.sort_by_key(|d: &walksteal_vm::DispatchedWalk| d.done_at);
                        while let Some(first) = scheduled.first().copied() {
                            if first.done_at > now {
                                break;
                            }
                            scheduled.remove(0);
                            let mut ctx = WalkContext {
                                page_tables: &mut pts,
                                frames: &mut frames,
                                mem: &mut mem,
                                mask: None,
                            };
                            let (_, next) =
                                ws.on_walker_done(first.walker, first.done_at, &mut ctx);
                            if let Some(n) = next {
                                scheduled.push(n);
                                scheduled.sort_by_key(|d| d.done_at);
                            }
                        }
                    }
                    black_box(ws.queued_len())
                })
            },
        );
    }
    g.finish();
}

fn mem_system_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_system");
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("access_mixed", |b| {
        let mut mem = MemSystem::new(MemSystemConfig::default());
        let mut rng = SimRng::new(7);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += 2;
            let line = walksteal_sim_core::LineAddr(rng.next_below(1 << 16));
            let kind = if rng.chance(0.2) {
                AccessKind::PageTable
            } else {
                AccessKind::Data
            };
            black_box(mem.access(line, now, kind))
        })
    });
    g.finish();
}

criterion_group!(
    subsystems,
    event_queue,
    cache_ops,
    tlb_ops,
    pwc_ops,
    page_table_ops,
    walk_subsystem_ops,
    mem_system_ops,
);
criterion_main!(subsystems);
