//! One benchmark group per paper table/figure.
//!
//! Each group runs the *same code path* the corresponding experiment uses,
//! at a reduced machine scale so the whole suite completes in minutes. The
//! `repro` binary (walksteal-experiments) regenerates the actual numbers at
//! paper scale; these benches track the simulator's performance on each
//! experiment's workload shape and guard against regressions.

use walksteal_multitenant::{GpuConfig, PolicyPreset, SimResult, SimulationBuilder};
use walksteal_vm::PageSize;
use walksteal_workloads::AppId;

use crate::harness::{bench, BenchResult};

/// The reduced machine every figure-bench runs on.
fn bench_config() -> GpuConfig {
    GpuConfig::default()
        .with_n_sms(4)
        .with_warps_per_sm(4)
        .with_instructions_per_warp(500)
}

fn sim(cfg: GpuConfig, apps: &[AppId]) -> SimResult {
    SimulationBuilder::new()
        .config(cfg)
        .tenants(apps.iter().copied())
        .seed(42)
        .build()
        .run()
}

fn pair_bench(
    out: &mut Vec<BenchResult>,
    group: &str,
    presets: &[PolicyPreset],
    apps: &[AppId],
) {
    for &preset in presets {
        out.push(bench(&format!("{group}/{}", preset.label()), || {
            std::hint::black_box(sim(bench_config().with_preset(preset), apps));
        }));
    }
}

/// Runs every figure group whose name contains `filter`.
pub fn run(filter: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();
    let mut group = |name: &str, f: &mut dyn FnMut(&mut Vec<BenchResult>)| {
        if name.contains(filter) {
            f(&mut out);
        }
    };

    // Fig. 2 / Fig. 3: Baseline vs S-TLB vs S-(TLB+PTW) on a heavy+light pair.
    group("fig2_fig3_headroom", &mut |out| {
        pair_bench(
            out,
            "fig2_fig3_headroom",
            &[
                PolicyPreset::Baseline,
                PolicyPreset::STlb,
                PolicyPreset::STlbPtw,
            ],
            &[AppId::Gups, AppId::Mm],
        );
    });

    // Table III: interleaving measurement runs on the baseline.
    group("tab3_interleaving", &mut |out| {
        pair_bench(
            out,
            "tab3_interleaving",
            &[PolicyPreset::Baseline],
            &[AppId::Blk, AppId::Hs],
        );
    });

    // §IV doubling study: 2x-resource baseline vs private resources.
    group("sec4_doubling", &mut |out| {
        pair_bench(
            out,
            "sec4_doubling",
            &[PolicyPreset::DoubledBaseline, PolicyPreset::STlbPtw],
            &[AppId::Gups, AppId::Jpeg],
        );
    });

    // Fig. 5 / 6 / 7: Baseline vs DWS vs DWS++ (throughput, fairness, and
    // weighted IPC all come from the same runs).
    group("fig5_fig6_fig7_dws", &mut |out| {
        pair_bench(
            out,
            "fig5_fig6_fig7_dws",
            &[
                PolicyPreset::Baseline,
                PolicyPreset::Dws,
                PolicyPreset::DwsPlusPlus,
            ],
            &[AppId::Gups, AppId::Jpeg],
        );
    });

    // Tables V / VI: interleaving and steal accounting under DWS/DWS++.
    group("tab5_tab6_stealing", &mut |out| {
        pair_bench(
            out,
            "tab5_tab6_stealing",
            &[PolicyPreset::Dws, PolicyPreset::DwsPlusPlus],
            &[AppId::Gups, AppId::Sad],
        );
    });

    // Fig. 8: walk-latency accounting (heavy+medium stresses the queues most).
    group("fig8_walk_latency", &mut |out| {
        pair_bench(
            out,
            "fig8_walk_latency",
            &[PolicyPreset::Baseline, PolicyPreset::Dws],
            &[AppId::Blk, AppId::Tds],
        );
    });

    // Fig. 9: PW-share / TLB-share coupling pairs.
    group("fig9_shares", &mut |out| {
        pair_bench(
            out,
            "fig9_shares",
            &[PolicyPreset::Baseline, PolicyPreset::Dws],
            &[AppId::Sad, AppId::Mm],
        );
    });

    // Fig. 10: the DWS++ aggressiveness variants.
    group("fig10_knob", &mut |out| {
        pair_bench(
            out,
            "fig10_knob",
            &[
                PolicyPreset::DwsPlusPlusConservative,
                PolicyPreset::DwsPlusPlus,
                PolicyPreset::DwsPlusPlusAggressive,
            ],
            &[AppId::Gups, AppId::Tds],
        );
    });

    // Fig. 11: Static / MASK / MASK+DWS comparison points.
    group("fig11_alternatives", &mut |out| {
        pair_bench(
            out,
            "fig11_alternatives",
            &[
                PolicyPreset::StaticPartition,
                PolicyPreset::Mask,
                PolicyPreset::MaskDws,
            ],
            &[AppId::Gups, AppId::Lps],
        );
    });

    // Fig. 12: sensitivity sweep points (small and large VM resources).
    group("fig12_sensitivity", &mut |out| {
        for (label, entries, walkers) in [
            ("512e-12w", 512, 12),
            ("1024e-16w", 1024, 16),
            ("2048e-24w", 2048, 24),
        ] {
            out.push(bench(&format!("fig12_sensitivity/{label}"), || {
                let cfg = bench_config()
                    .with_l2_tlb_entries(entries)
                    .with_walkers(walkers)
                    .with_preset(PolicyPreset::Dws);
                std::hint::black_box(sim(cfg, &[AppId::Sad, AppId::Hs]));
            }));
        }
    });

    // Fig. 13: three- and four-tenant simulations.
    group("fig13_many_tenants", &mut |out| {
        let three = [AppId::Gups, AppId::Tds, AppId::Mm];
        let four = [AppId::Gups, AppId::Tds, AppId::Mm, AppId::Hs];
        out.push(bench("fig13_many_tenants/3-tenants", || {
            let cfg = GpuConfig::default()
                .with_n_sms(6)
                .with_warps_per_sm(4)
                .with_instructions_per_warp(500)
                .with_walkers(18)
                .with_preset(PolicyPreset::Dws);
            std::hint::black_box(sim(cfg, &three));
        }));
        out.push(bench("fig13_many_tenants/4-tenants", || {
            let cfg = GpuConfig::default()
                .with_n_sms(8)
                .with_warps_per_sm(4)
                .with_instructions_per_warp(500)
                .with_preset(PolicyPreset::Dws);
            std::hint::black_box(sim(cfg, &four));
        }));
    });

    // Fig. 14: 64 KB large pages.
    group("fig14_large_pages", &mut |out| {
        for preset in [PolicyPreset::Baseline, PolicyPreset::Dws] {
            out.push(bench(&format!("fig14_large_pages/{}", preset.label()), || {
                let cfg = bench_config()
                    .with_page_size(PageSize::Large64K)
                    .with_preset(preset);
                std::hint::black_box(sim(cfg, &[AppId::Gups, AppId::Mm]));
            }));
        }
    });

    // Table II: the standalone calibration runs.
    group("tab2_calibration", &mut |out| {
        for app in [AppId::Mm, AppId::Tds, AppId::Gups] {
            out.push(bench(&format!("tab2_calibration/{}", app.name()), || {
                std::hint::black_box(sim(bench_config().with_n_sms(2), &[app]));
            }));
        }
    });

    out
}
