//! The measurement loop: warm up, calibrate, time, report.

use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const WINDOW: Duration = Duration::from_millis(300);

/// One benchmark's outcome.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub name: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
}

impl BenchResult {
    /// `1e9 / mean_ns` — iterations per second.
    #[must_use]
    pub fn per_sec(&self) -> f64 {
        1e9 / self.mean_ns
    }
}

/// Times `f`, printing and returning the result.
///
/// Runs one warm-up call, estimates the iteration cost from a short probe,
/// then measures a batch sized to fill `WINDOW`.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    f();
    // Probe: run until 10 ms or 1k iterations to estimate per-iter cost.
    let probe_start = Instant::now();
    let mut probe_iters = 0u64;
    while probe_start.elapsed() < Duration::from_millis(10) && probe_iters < 1_000 {
        f();
        probe_iters += 1;
    }
    let per_iter = probe_start.elapsed().as_secs_f64() / probe_iters as f64;
    let iters = ((WINDOW.as_secs_f64() / per_iter) as u64).max(1);

    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let result = BenchResult {
        name: name.to_owned(),
        iters,
        mean_ns,
    };
    println!(
        "{:<44} {:>12.0} ns/iter   {:>14.0} iters/s   ({} iters)",
        result.name,
        result.mean_ns,
        result.per_sec(),
        result.iters
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_numbers() {
        let r = bench("test/noop-ish", || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(r.iters >= 1);
        assert!(r.mean_ns > 0.0);
        assert!(r.per_sec() > 0.0);
    }
}
