//! Self-contained `std::time` benchmark harness.
//!
//! Two suites, mirroring the old layout: [`figures`] has one benchmark
//! group per paper table/figure (each runs the same code path as the
//! corresponding experiment, at a reduced machine scale), and
//! [`subsystems`] covers the substrate data structures — the simulator's
//! hot loops. The `walksteal-bench` binary runs both:
//!
//! ```text
//! walksteal-bench [FILTER]   # run groups whose name contains FILTER
//! ```
//!
//! The harness is deliberately simple — calibrate an iteration count to a
//! fixed measurement window, report mean ns/iter — and depends only on the
//! workspace crates, so it builds offline.

pub mod figures;
pub mod harness;
pub mod subsystems;

pub use harness::{bench, BenchResult};
