//! Benchmark support crate. The actual Criterion harnesses live in
//! `benches/`: `paper_figures` has one group per paper table/figure, and
//! `subsystems` covers the individual substrate data structures.
