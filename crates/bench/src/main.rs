//! `walksteal-bench [FILTER]` — run the benchmark suites.
//!
//! With no argument, runs every group; with one, runs the groups whose
//! name contains the filter (e.g. `walksteal-bench event_queue`).

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    println!("== subsystems ==");
    let mut results = walksteal_bench::subsystems::run(&filter);
    println!("== paper figures ==");
    results.extend(walksteal_bench::figures::run(&filter));
    if results.is_empty() {
        eprintln!("no benchmark group matches '{filter}'");
        std::process::exit(1);
    }
    println!("{} benchmarks done", results.len());
}
