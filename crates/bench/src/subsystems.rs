//! Microbenchmarks of the substrate data structures: the event queue,
//! caches, TLBs, the page-walk cache, the page table, and the walk
//! subsystem's dispatch path. These are the hot loops of the simulator.

use std::hint::black_box;

use walksteal_mem::{AccessKind, Cache, CacheConfig, MemSystem, MemSystemConfig};
use walksteal_sim_core::{
    BinaryHeapQueue, Cycle, EventQueue, LineAddr, Observer, PhysAddr, Ppn, SimRng, TenantId, Vpn,
};
use walksteal_vm::walk::WalkContext;
use walksteal_vm::{
    DispatchedWalk, FrameAlloc, PageSize, PageTable, PwCache, Replacement, StealMode, Tlb,
    TlbConfig, WalkConfig, WalkPolicyKind, WalkRequest, WalkSubsystem,
};

use crate::harness::{bench, BenchResult};

/// Runs every subsystem group whose name contains `filter`.
pub fn run(filter: &str) -> Vec<BenchResult> {
    let mut out = Vec::new();

    if "event_queue".contains(filter) {
        out.push(bench("event_queue/push_pop_10k", || {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.push(Cycle(rng.next_below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc);
        }));
        out.push(bench("event_queue/push_pop_10k_heap_reference", || {
            let mut q = BinaryHeapQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.push(Cycle(rng.next_below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc);
        }));
    }

    if "cache".contains(filter) {
        let mut cache = Cache::new(CacheConfig { sets: 64, ways: 16 });
        let mut rng = SimRng::new(2);
        out.push(bench("cache/probe_fill_mixed", || {
            let line = LineAddr(rng.next_below(4096));
            if !cache.probe(line) {
                cache.fill(line);
            }
        }));
    }

    if "tlb".contains(filter) {
        for (label, replacement) in [("lru", Replacement::Lru), ("random", Replacement::Random)] {
            let mut tlb = Tlb::new(
                TlbConfig {
                    sets: 64,
                    ways: 16,
                    replacement,
                },
                2,
            );
            let mut rng = SimRng::new(3);
            let mut now = Cycle::ZERO;
            out.push(bench(&format!("tlb/probe_fill/{label}"), || {
                now += 1;
                let t = TenantId((rng.next_below(2)) as u8);
                let vpn = Vpn(rng.next_below(4096));
                if tlb.probe(t, vpn).is_none() {
                    tlb.fill(t, vpn, Ppn(vpn.0), now);
                }
            }));
        }
    }

    if "pwc".contains(filter) {
        let mut pwc = PwCache::new(128);
        let mut rng = SimRng::new(4);
        out.push(bench("pwc/probe_fill_walk", || {
            let vpn = Vpn(rng.next_below(1 << 24));
            if pwc.probe(TenantId(0), vpn, 4).is_none() {
                let nodes = [
                    PhysAddr(0x1000),
                    PhysAddr(0x2000),
                    PhysAddr(0x3000),
                    PhysAddr(0x4000),
                ];
                pwc.fill_walk(TenantId(0), vpn, &nodes);
            }
        }));
    }

    if "page_table".contains(filter) {
        let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
        let mut frames = FrameAlloc::new();
        // Pre-populate so the bench measures steady-state lookups.
        for v in 0..1024 {
            pt.walk_path(Vpn(v), &mut frames);
        }
        let mut rng = SimRng::new(5);
        out.push(bench("page_table/walk_path_hot", || {
            let vpn = Vpn(rng.next_below(1024));
            black_box(pt.walk_path(vpn, &mut frames));
        }));
    }

    if "walk_subsystem".contains(filter) {
        for (label, policy) in [
            ("shared", WalkPolicyKind::SharedQueue),
            ("dws", WalkPolicyKind::Partitioned(StealMode::Dws)),
        ] {
            out.push(bench(&format!("walk_subsystem/enqueue_complete/{label}"), || {
                let mut ws = WalkSubsystem::new(WalkConfig {
                    policy: policy.clone(),
                    ..WalkConfig::default()
                });
                let mut pts = vec![
                    PageTable::new(TenantId(0), PageSize::Small4K),
                    PageTable::new(TenantId(1), PageSize::Small4K),
                ];
                let mut frames = FrameAlloc::new();
                let mut mem = MemSystem::new(MemSystemConfig::default());
                let mut rng = SimRng::new(6);
                let mut scheduled: Vec<DispatchedWalk> = Vec::new();
                let mut obs = Observer::off();
                let mut now = Cycle::ZERO;
                for _ in 0..200 {
                    now += 13;
                    let t = TenantId(rng.next_below(2) as u8);
                    let mut ctx = WalkContext {
                        page_tables: &mut pts,
                        frames: &mut frames,
                        mem: &mut mem,
                        mask: None,
                        obs: &mut obs,
                    };
                    if let Ok(Some(d)) = ws.try_enqueue(
                        WalkRequest {
                            tenant: t,
                            vpn: Vpn(u64::from(t.0) * 0x10_0000 + rng.next_below(512)),
                        },
                        now,
                        &mut ctx,
                    ) {
                        scheduled.push(d);
                    }
                    scheduled.sort_by_key(|d| d.done_at);
                    while let Some(first) = scheduled.first().copied() {
                        if first.done_at > now {
                            break;
                        }
                        scheduled.remove(0);
                        let mut ctx = WalkContext {
                            page_tables: &mut pts,
                            frames: &mut frames,
                            mem: &mut mem,
                            mask: None,
                            obs: &mut obs,
                        };
                        let (_, next) = ws.on_walker_done(first.walker, first.done_at, &mut ctx);
                        if let Some(n) = next {
                            scheduled.push(n);
                            scheduled.sort_by_key(|d| d.done_at);
                        }
                    }
                }
                black_box(ws.queued_len());
            }));
        }
    }

    if "mem_system".contains(filter) {
        let mut mem = MemSystem::new(MemSystemConfig::default());
        let mut rng = SimRng::new(7);
        let mut now = Cycle::ZERO;
        out.push(bench("mem_system/access_mixed", || {
            now += 2;
            let line = LineAddr(rng.next_below(1 << 16));
            let kind = if rng.chance(0.2) {
                AccessKind::PageTable
            } else {
                AccessKind::Data
            };
            black_box(mem.access(line, now, kind));
        }));

        // The same mixed stream, one cycle's 16 coalesced lines per op,
        // resolved through the grouped per-bank/per-channel batch pass.
        let mut mem = MemSystem::new(MemSystemConfig::default());
        let mut rng = SimRng::new(7);
        let mut now = Cycle::ZERO;
        let mut lines: Vec<LineAddr> = Vec::new();
        let mut accesses = Vec::new();
        out.push(bench("mem_system/access_batch_16", || {
            now += 2;
            let kind = if rng.chance(0.2) {
                AccessKind::PageTable
            } else {
                AccessKind::Data
            };
            lines.clear();
            for _ in 0..16 {
                lines.push(LineAddr(rng.next_below(1 << 16)));
            }
            accesses.clear();
            mem.access_batch(&lines, now, kind, &mut accesses);
            black_box(accesses.len());
        }));
    }

    out
}
