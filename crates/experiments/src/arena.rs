//! Policy arena: race the related-work translation designs against
//! DWS/DWS++ over the N-tenant scenario engine.
//!
//! The arena field is [`ARENA_PRESETS`]: the paper's Baseline (the
//! normalization anchor), DWS and DWS++, and the three related-work
//! competitors ([`PolicyPreset::SubEntryTlb`], [`PolicyPreset::MosaicPages`],
//! [`PolicyPreset::DeadEntryGuard`]). Every policy runs the curated two-,
//! three-, and four-tenant mixes at the canonical
//! [`tenant_config`](ExpContext::tenant_config); the result is a
//! *leaderboard*: one row per policy, gmean normalized throughput per
//! tenant count plus overall throughput and fairness, sorted best-first.
//!
//! `arena_quick` races a three-mix subset per tenant count (the CI smoke
//! field, pinned by `tests/golden_arena.rs`); `arena_full` races every
//! curated mix (the EXPERIMENTS.md leaderboard).

use walksteal_multitenant::{fairness, PolicyPreset, SimResult};
use walksteal_sim_core::gmean;
use walksteal_workloads::mixes_for;

use crate::report::Table;
use crate::suite::ExpContext;

/// The arena field, in evaluation order: anchor, the paper's designs, then
/// the related-work competitors.
pub const ARENA_PRESETS: [PolicyPreset; 6] = [
    PolicyPreset::Baseline,
    PolicyPreset::Dws,
    PolicyPreset::DwsPlusPlus,
    PolicyPreset::SubEntryTlb,
    PolicyPreset::MosaicPages,
    PolicyPreset::DeadEntryGuard,
];

/// Tenant counts every arena race covers.
pub const ARENA_TENANT_COUNTS: [usize; 3] = [2, 3, 4];

/// Races `presets` over the first `mixes_per_count` curated mixes of each
/// tenant count and returns the leaderboard table.
fn arena_race(ctx: &mut ExpContext, title: &str, mixes_per_count: usize) -> Table {
    let presets = ctx.presets(&ARENA_PRESETS);
    // Per preset: normalized total IPC per mix, grouped by tenant count,
    // plus fairness per mix over all counts.
    let mut ipc: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); presets.len()]; ARENA_TENANT_COUNTS.len()];
    let mut fair: Vec<Vec<f64>> = vec![Vec::new(); presets.len()];
    for (ci, &n) in ARENA_TENANT_COUNTS.iter().enumerate() {
        let mixes = mixes_for(n);
        let mixes = &mixes[..mixes_per_count.min(mixes.len())];
        for mix in mixes {
            let sa = ctx.standalone_ipcs_for(mix.apps());
            let runs: Vec<SimResult> = presets.iter().map(|&p| ctx.mix(p, mix)).collect();
            // Index 0 is Baseline even under a --policy filter
            // (ExpContext::presets always keeps the anchor).
            let base = runs[0].total_ipc();
            for (pi, r) in runs.iter().enumerate() {
                ipc[ci][pi].push(r.total_ipc() / base);
                fair[pi].push(fairness(r, &sa));
            }
        }
    }
    let mut columns: Vec<String> = ARENA_TENANT_COUNTS
        .iter()
        .map(|n| format!("IPC {n}T"))
        .collect();
    columns.push("IPC ALL".into());
    columns.push("Fairness".into());
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &column_refs);
    // Build one leaderboard row per preset and sort best-first by overall
    // normalized throughput (ties broken by fairness, then field order, so
    // the ordering — pinned by the golden test — is deterministic).
    let mut rows: Vec<(usize, Vec<f64>)> = presets
        .iter()
        .enumerate()
        .map(|(pi, _)| {
            let per_count: Vec<f64> = (0..ARENA_TENANT_COUNTS.len())
                .map(|ci| gmean(&ipc[ci][pi]))
                .collect();
            let overall: Vec<f64> = ipc.iter().flat_map(|c| c[pi].iter().copied()).collect();
            let mut vals = per_count;
            vals.push(gmean(&overall));
            vals.push(gmean(&fair[pi]));
            (pi, vals)
        })
        .collect();
    let ipc_all = columns.len() - 2;
    let fair_col = columns.len() - 1;
    rows.sort_by(|(ai, a), (bi, b)| {
        b[ipc_all]
            .total_cmp(&a[ipc_all])
            .then(b[fair_col].total_cmp(&a[fair_col]))
            .then(ai.cmp(bi))
    });
    for (rank, (pi, vals)) in rows.iter().enumerate() {
        table.row(&format!("#{} {}", rank + 1, presets[*pi].label()), vals);
    }
    table
}

/// The CI smoke race: three mixes per tenant count.
pub fn arena_quick(ctx: &mut ExpContext) -> Table {
    arena_race(
        ctx,
        "Policy arena (quick field): gmean IPC normalized to Baseline",
        3,
    )
}

/// The full race over every curated mix — the EXPERIMENTS.md leaderboard.
pub fn arena_full(ctx: &mut ExpContext) -> Table {
    arena_race(
        ctx,
        "Policy arena (full field): gmean IPC normalized to Baseline",
        usize::MAX,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::store::Store;

    #[test]
    fn arena_field_keeps_baseline_first() {
        assert_eq!(ARENA_PRESETS[0], PolicyPreset::Baseline);
        for p in PolicyPreset::ARENA {
            assert!(ARENA_PRESETS.contains(&p), "{p} missing from the field");
        }
    }

    #[test]
    fn arena_quick_ranks_every_preset_once() {
        let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
        ctx.jobs = 4;
        let table = arena_quick(&mut ctx);
        let text = table.to_string();
        for p in ARENA_PRESETS {
            assert!(text.contains(p.label()), "{p} missing:\n{text}");
        }
        // A leaderboard: ranks 1..=6 each appear exactly once.
        for rank in 1..=ARENA_PRESETS.len() {
            assert_eq!(
                text.matches(&format!("#{rank} ")).count(),
                1,
                "rank {rank}:\n{text}"
            );
        }
        assert!(ctx.failures().is_empty(), "{:?}", ctx.failures());
    }

    #[test]
    fn arena_respects_policy_filter() {
        let mut ctx = ExpContext::new(Scale::Quick, Store::in_memory());
        ctx.jobs = 4;
        ctx.policy = Some(PolicyPreset::MosaicPages);
        let table = arena_quick(&mut ctx);
        let text = table.to_string();
        assert!(text.contains("MOSAIC"));
        assert!(!text.contains("DWS++"), "filtered preset still ran:\n{text}");
    }
}
