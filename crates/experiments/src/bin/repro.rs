//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--verbose] [--jobs N] [--cache DIR] [--markdown FILE]
//!       [--selftest-perf] [EXPERIMENT ...]
//!
//! EXPERIMENT: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6
//!             fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation all (default: all)
//! ```
//!
//! `--jobs N` spreads cache-missing simulations over N worker threads
//! (default: the machine's available parallelism); the printed tables are
//! bit-identical to `--jobs 1`. `--selftest-perf` skips the experiments and
//! instead measures the engine itself, writing `BENCH_parallel.json`.

use std::process::ExitCode;

use walksteal_experiments::{parallel, perf, suite, ExpContext, Scale, Store, Table};

fn usage() -> &'static str {
    "usage: repro [--quick] [--verbose] [--jobs N] [--cache DIR] [--markdown FILE] \
     [--selftest-perf] [EXPERIMENT ...]\n\
     experiments: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6 \
     fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation all"
}

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut cache_dir = String::from("results/cache");
    let mut verbose = false;
    let mut markdown: Option<String> = None;
    let mut jobs = parallel::default_jobs();
    let mut selftest = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--verbose" | "-v" => verbose = true,
            "--selftest-perf" => selftest = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--cache" => match args.next() {
                Some(dir) => cache_dir = dir,
                None => {
                    eprintln!("--cache needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--markdown" => match args.next() {
                Some(f) => markdown = Some(f),
                None => {
                    eprintln!("--markdown needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            exp => wanted.push(exp.to_owned()),
        }
    }

    if selftest {
        let report = perf::selftest(jobs).pretty();
        let path = "BENCH_parallel.json";
        println!("{report}");
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    if wanted.is_empty() {
        wanted.push("all".to_owned());
    }

    let store = Store::on_disk(format!("{cache_dir}/{}", scale.label()));
    let mut ctx = ExpContext::new(scale, store);
    ctx.verbose = verbose;
    ctx.jobs = jobs;

    let mut tables: Vec<Table> = Vec::new();
    for exp in &wanted {
        let start = std::time::Instant::now();
        match exp.as_str() {
            "all" => tables.extend(ctx.run(suite::all)),
            "calib" => tables.push(ctx.run(suite::calibration)),
            "fig2" => tables.push(ctx.run(suite::fig2)),
            "fig3" => tables.push(ctx.run(suite::fig3)),
            "tab3" => tables.push(ctx.run(suite::tab3)),
            "doubling" => tables.push(ctx.run(suite::doubling)),
            "fig5" => tables.push(ctx.run(suite::fig5)),
            "fig6" => tables.push(ctx.run(suite::fig6)),
            "fig7" => tables.push(ctx.run(suite::fig7)),
            "tab5" => tables.push(ctx.run(suite::tab5)),
            "tab6" => tables.push(ctx.run(suite::tab6)),
            "fig8" => tables.push(ctx.run(suite::fig8)),
            "fig9" => tables.push(ctx.run(suite::fig9)),
            "fig10" => tables.extend(ctx.run(suite::fig10)),
            "fig11" => tables.push(ctx.run(suite::fig11)),
            "fig12" => tables.push(ctx.run(suite::fig12)),
            "fig13" => tables.push(ctx.run(suite::fig13)),
            "fig14" => tables.push(ctx.run(suite::fig14)),
            "ablation" => tables.push(ctx.run(suite::ablation_pend_check)),
            other => {
                eprintln!("unknown experiment {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        if verbose {
            eprintln!(
                "[{exp}] done in {:.1?} (sims run: {}, cache hits: {})",
                start.elapsed(),
                ctx.store.misses(),
                ctx.store.hits()
            );
        }
    }

    for t in &tables {
        println!("{t}");
    }
    if let Some(path) = markdown {
        let md: String = tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = std::fs::write(&path, md) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
