//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--verbose] [--jobs N] [--cache DIR] [--markdown FILE]
//!       [--max-events N] [--max-cycles N] [--max-wall-ms N]
//!       [--inject-faults SPEC] [--policy NAME] [--selftest-perf]
//!       [--tenants N] [--sweep AXIS]
//!       [--trace FILE [--trace-filter KINDS] [--pair A,B]]
//!       [--fuzz N [--fuzz-seed S] [--fuzz-budget-ms T]]
//!       [--fuzz-repro FILE] [--verify-cache [N]] [EXPERIMENT ...]
//!
//! EXPERIMENT: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6
//!             fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation
//!             tenants tenants3 tenants4 sens_walkers sens_queue sens_l2tlb
//!             sens_tenants all (default: all)
//! ```
//!
//! `--jobs N` spreads cache-missing simulations over N worker threads
//! (default: the machine's available parallelism); the printed tables are
//! bit-identical to `--jobs 1`. `--selftest-perf` skips the experiments and
//! instead measures the engine itself, writing `BENCH_parallel.json`.
//!
//! # Scenario engine
//!
//! `tenants3` / `tenants4` tabulate the curated three- and four-tenant
//! workload mixes (normalized total IPC and fairness under Baseline / DWS /
//! DWS++); the generic `tenants` experiment uses the `--tenants N` count
//! (default 3). `--sweep AXIS` (repeatable) appends the matching `sens_*`
//! sensitivity table — AXIS is one of `walkers`, `queue`, `l2tlb`,
//! `tenants` — sweeping that knob at the `--tenants N` mix set (default 2;
//! ignored by `sens_tenants`, which sweeps the count itself). An invalid
//! `--tenants` count is rejected up front with a diagnostic and exit
//! code 2.
//!
//! # Observability
//!
//! `--policy NAME` restricts every policy sweep to that preset plus the
//! sweep's normalization base (names as printed in table headers, or CLI
//! aliases like `dws`, `dws++`, `stlb+ptw`; see `PolicyPreset::from_str`).
//!
//! `--trace FILE` switches to trace mode: instead of the experiment suite,
//! one two-tenant simulation runs with a JSONL tracer attached, the trace
//! is written to FILE, and a timeline reconstructed *from the trace alone*
//! is rendered (per-tenant walker-occupancy curves — the shape of Fig. 9 —
//! plus a Table-III-style interleave/steal breakdown). The replayed
//! `pw_share` and `stolen_fraction` are self-checked bit-for-bit against
//! the simulator's own counters. `--pair A,B` picks the workloads (default
//! `GUPS,MM`), `--policy` the preset (default `dws`), and
//! `--trace-filter walk,steal,epoch` limits which event kinds are recorded
//! (kinds: `walk steal pwc pte epoch queue meta`; default: all).
//!
//! # Fuzzing
//!
//! `--fuzz N` skips the experiment suite and runs a fuzz campaign instead
//! (see EXPERIMENTS.md and `walksteal_experiments::fuzz`): regression
//! scenarios under `results/fuzz/` replay first, then N seeded random
//! scenarios — synthetic tenants, random hardware sweep points, every
//! policy preset, mid-run repartitions, fault schedules — each checked by
//! the stacked differential oracle (scheduler lockstep, end-to-end run,
//! trace replay, fault equivalence). `--fuzz-seed S` picks the campaign
//! seed (default 42; scenario `i` depends only on `(S, i)`), and
//! `--fuzz-budget-ms T` bounds the campaign's wall clock. On divergence
//! the scenario is shrunk to a minimal repro, written under
//! `results/fuzz/repros/`, and the campaign exits 1; `--fuzz-repro FILE`
//! deterministically replays such a file through the same oracle stack.
//!
//! `--verify-cache [N]` (default 10) audits the on-disk result cache: a
//! seeded random sample of N cached suite results is re-simulated and
//! compared byte-for-byte; stale entries are listed and exit code 1 is
//! returned. `--fuzz-seed` doubles as the sampling seed.
//!
//! # Fault tolerance
//!
//! The engine survives failing jobs and corrupt cache files instead of
//! dying: a panicking or budget-blowing simulation is retried once and
//! otherwise recorded, corrupt cache files are quarantined and their keys
//! resimulated, and everything that went wrong is itemized in a final
//! failure summary on stderr. `--max-events` / `--max-cycles` /
//! `--max-wall-ms` bound every simulation attempt.
//! `--inject-faults panic=1,corrupt=2,budget=1,seed=7` deterministically
//! forces those failures to prove the suite survives them (tables stay
//! byte-identical to a clean run because injected faults fire only on a
//! job's first attempt).
//!
//! # Exit codes
//!
//! | code | meaning |
//! | --- | --- |
//! | 0 | clean run (quarantine-and-resimulate self-healing still counts as clean) |
//! | 1 | usage error, or an output file could not be written |
//! | 2 | >= 1 job panicked or failed (even if the retry recovered it) |
//! | 3 | >= 1 job died with a blown watchdog budget |

use std::process::ExitCode;
use std::time::Duration;

use walksteal_experiments::{
    fuzz, parallel, perf, suite, sweep, ExpContext, FaultSpec, JobError, Scale, Store, SweepAxis,
    Table,
};
use walksteal_multitenant::{
    JsonlTracer, PolicyPreset, RunBudget, SimulationBuilder, TraceFilter, TraceKind,
};
use walksteal_workloads::AppId;

fn usage() -> &'static str {
    "usage: repro [--quick] [--verbose] [--jobs N] [--cache DIR] [--markdown FILE] \
     [--max-events N] [--max-cycles N] [--max-wall-ms N] [--inject-faults SPEC] \
     [--policy NAME] [--selftest-perf] [--tenants N] [--sweep AXIS] \
     [--trace FILE [--trace-filter KINDS] [--pair A,B]] \
     [--fuzz N [--fuzz-seed S] [--fuzz-budget-ms T]] [--fuzz-repro FILE] \
     [--verify-cache [N]] [EXPERIMENT ...]\n\
     experiments: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6 \
     fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation \
     tenants tenants3 tenants4 sens_walkers sens_queue sens_l2tlb sens_tenants all\n\
     sweep axes: walkers queue l2tlb tenants (repeatable; appends sens_* tables)\n\
     fault spec: panic=N,budget=N,corrupt=N,seed=S (see EXPERIMENTS.md)\n\
     trace kinds: walk steal pwc pte epoch queue meta (comma-separated; default all)"
}

/// Trace mode (`--trace FILE`): run one traced pair, write the JSONL trace,
/// render the timeline reconstructed from the trace alone, and self-check
/// the replayed stats bit-for-bit against the simulator's own counters.
fn run_trace(
    scale: Scale,
    path: &str,
    filter: TraceFilter,
    pair: [AppId; 2],
    policy: PolicyPreset,
    seed: u64,
) -> ExitCode {
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tracing {}.{} under {} (seed {seed}, scale {}) -> {path}",
        pair[0].name(),
        pair[1].name(),
        policy.label(),
        scale.label(),
    );
    let result = SimulationBuilder::new()
        .config(scale.base_config())
        .preset(policy)
        .tenants(pair)
        .seed(seed)
        .tracer(JsonlTracer::new(std::io::BufWriter::new(file)).with_filter(filter))
        .build()
        .run();

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read back {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replayed = match walksteal_experiments::parse_trace(&text)
        .and_then(|evs| walksteal_experiments::replay(&evs))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<String> = pair.iter().map(|a| a.name().to_owned()).collect();
    println!("{}", walksteal_experiments::render(&replayed, &names));
    eprintln!("wrote {path} ({} lines)", text.lines().count());

    // The walk lifecycle is what the replay reconstructs; without it the
    // timeline is empty and there is nothing to cross-check.
    if !filter.contains(TraceKind::Walk) {
        eprintln!("trace filter omits `walk`; skipping the replay self-check");
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for (t, rep) in replayed.tenants.iter().enumerate() {
        let sim = &result.tenants[t];
        for (what, got, want) in [
            ("pw_share", rep.pw_share, sim.pw_share),
            ("stolen_fraction", rep.stolen_fraction, sim.stolen_fraction),
            ("mean_interleave", rep.mean_interleave, sim.mean_interleave),
            ("mean_walk_latency", rep.mean_latency, sim.mean_walk_latency),
        ] {
            if got.to_bits() != want.to_bits() {
                eprintln!("self-check FAILED: tenant {t} {what}: replayed {got} != simulated {want}");
                ok = false;
            }
        }
    }
    if ok {
        eprintln!("self-check ok: replayed pw_share/stolen_fraction/interleave/latency match bit-for-bit");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Fuzz-campaign mode (`--fuzz N`): replay the corpus, run N generated
/// scenarios, shrink and serialize the first divergence. Exit contract:
/// 0 clean, 1 divergence (repro path printed on stderr).
fn run_fuzz(count: usize, seed: u64, budget_ms: Option<u64>, verbose: bool) -> ExitCode {
    let mut opts = fuzz::CampaignOptions::new(count);
    opts.seed = seed;
    opts.budget = budget_ms.map(Duration::from_millis);
    opts.verbose = verbose;
    let outcome = match fuzz::run_campaign(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "fuzz: {} corpus + {} generated scenario(s) clean ({} lockstep steals observed){}",
        outcome.corpus_replayed,
        outcome.generated,
        outcome.total_steals,
        if outcome.out_of_budget {
            "; stopped on wall-clock budget"
        } else {
            ""
        },
    );
    match outcome.divergence {
        None => ExitCode::SUCCESS,
        Some((sc, d, path)) => {
            eprintln!("fuzz: DIVERGENCE in {}: {d}", sc.label);
            eprintln!("fuzz: minimal repro written to {}", path.display());
            eprintln!("fuzz: replay with `repro --fuzz-repro {}`", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Repro-replay mode (`--fuzz-repro FILE`): run one serialized scenario
/// through the full oracle stack. Exit contract: 0 clean, 1 divergence
/// (or unreadable file).
fn run_fuzz_repro(path: &str) -> ExitCode {
    let sc = match fuzz::load_repro(std::path::Path::new(path)) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("fuzz-repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "fuzz-repro: {} — {} tenants, {}, {} walkers, {} steps",
        sc.label,
        sc.tenants.len(),
        sc.preset.label(),
        sc.walkers,
        sc.steps,
    );
    match fuzz::run_oracles(&sc) {
        Ok(stats) => {
            eprintln!(
                "fuzz-repro: clean ({} steals, {} rejects, {} batched, {} sim events)",
                stats.steals, stats.rejected, stats.batched, stats.sim_events
            );
            ExitCode::SUCCESS
        }
        Err(d) => {
            eprintln!("fuzz-repro: DIVERGENCE: {d}");
            ExitCode::FAILURE
        }
    }
}

/// Cache-audit mode (`--verify-cache [N]`): re-simulate a seeded sample of
/// cached suite results and compare byte-for-byte. Exit contract: 0 all
/// sampled entries match (or cache empty), 1 stale entries found.
fn run_verify_cache(scale: Scale, scale_dir: &str, sample: usize, seed: u64, verbose: bool) -> ExitCode {
    let audit = suite::verify_cache(scale, std::path::Path::new(scale_dir), sample, seed, verbose);
    eprintln!(
        "verify-cache [{}]: {} planned, {} cached, {} absent; checked {} -> {} stale",
        scale.label(),
        audit.planned,
        audit.cached,
        audit.absent,
        audit.checked,
        audit.stale.len(),
    );
    if audit.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        for key in &audit.stale {
            eprintln!("  STALE: {key}");
        }
        eprintln!("stale entries no longer match the current simulator; delete them and re-run the suite");
        ExitCode::FAILURE
    }
}

/// Prints the end-of-run failure summary (stderr, so tables on stdout stay
/// byte-identical to a clean run) and picks the process exit code.
fn summarize_failures(ctx: &ExpContext) -> ExitCode {
    let quarantined = ctx.store.quarantined();
    let failures = ctx.failures();
    if quarantined.is_empty() && failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!("\n== failure summary ==");
    if !quarantined.is_empty() {
        eprintln!("quarantined cache files (resimulated):");
        for q in quarantined {
            eprintln!(
                "  {}  [{}] -> {}",
                q.key,
                q.error.kind(),
                q.moved_to
                    .as_deref()
                    .map_or_else(|| "deleted".to_string(), |p| p.display().to_string()),
            );
        }
    }
    if !failures.is_empty() {
        eprintln!("failed jobs:");
        for f in failures {
            let outcome = if f.recovered { "recovered" } else { "DEAD" };
            eprintln!(
                "  {}  seed={} attempts={} [{}] {outcome}: {}",
                f.key,
                f.seed,
                f.attempts,
                f.error.kind(),
                f.error
            );
            if !f.recovered {
                if let JobError::Panicked {
                    backtrace: Some(bt), ..
                } = &f.error
                {
                    eprintln!("    backtrace:\n{bt}");
                }
            }
        }
        eprintln!(
            "{} job failure(s): {} recovered by retry, {} dead",
            failures.len(),
            failures.iter().filter(|f| f.recovered).count(),
            failures.iter().filter(|f| !f.recovered).count(),
        );
    }
    if ctx.any_budget_death() {
        ExitCode::from(3)
    } else if failures.is_empty() {
        // Quarantine alone fully self-heals: the keys were resimulated.
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut cache_dir = String::from("results/cache");
    let mut verbose = false;
    let mut markdown: Option<String> = None;
    let mut jobs = parallel::default_jobs();
    let mut selftest = false;
    let mut budget = RunBudget::unlimited();
    let mut faults: Option<FaultSpec> = None;
    let mut policy: Option<PolicyPreset> = None;
    let mut trace: Option<String> = None;
    let mut trace_filter = TraceFilter::ALL;
    let mut pair = [AppId::Gups, AppId::Mm];
    let mut tenants: Option<usize> = None;
    let mut sweeps: Vec<SweepAxis> = Vec::new();
    let mut fuzz_count: Option<usize> = None;
    let mut fuzz_seed = 42u64;
    let mut fuzz_budget_ms: Option<u64> = None;
    let mut fuzz_repro: Option<String> = None;
    let mut verify_cache: Option<usize> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--verbose" | "-v" => verbose = true,
            "--selftest-perf" => selftest = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--cache" => match args.next() {
                Some(dir) => cache_dir = dir,
                None => {
                    eprintln!("--cache needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--markdown" => match args.next() {
                Some(f) => markdown = Some(f),
                None => {
                    eprintln!("--markdown needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--max-events" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => budget = budget.with_max_events(n),
                _ => {
                    eprintln!("--max-events needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--max-cycles" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => budget = budget.with_max_cycles(n),
                _ => {
                    eprintln!("--max-cycles needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--max-wall-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => budget = budget.with_max_wall(Duration::from_millis(n)),
                _ => {
                    eprintln!("--max-wall-ms needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match args.next().map(|s| s.parse::<PolicyPreset>()) {
                Some(Ok(p)) => policy = Some(p),
                Some(Err(e)) => {
                    eprintln!("--policy: {e}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--policy needs a preset name\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(f) => trace = Some(f),
                None => {
                    eprintln!("--trace needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-filter" => match args.next().map(|s| s.parse::<TraceFilter>()) {
                Some(Ok(f)) => trace_filter = f,
                Some(Err(e)) => {
                    eprintln!("--trace-filter: {e}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--trace-filter needs a kind list\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--pair" => {
                let apps = args.next().map(|s| {
                    s.split(',')
                        .map(|n| AppId::from_name(n.trim()))
                        .collect::<Option<Vec<_>>>()
                });
                match apps {
                    Some(Some(v)) if v.len() == 2 => pair = [v[0], v[1]],
                    _ => {
                        eprintln!("--pair needs two app names, e.g. GUPS,MM\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--tenants" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => tenants = Some(n),
                _ => {
                    eprintln!("--tenants needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--sweep" => match args.next().map(|s| s.parse::<SweepAxis>()) {
                Some(Ok(axis)) => sweeps.push(axis),
                Some(Err(e)) => {
                    eprintln!("--sweep: {e}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--sweep needs an axis name\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => fuzz_count = Some(n),
                None => {
                    eprintln!("--fuzz needs a scenario count\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => fuzz_seed = s,
                None => {
                    eprintln!("--fuzz-seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-budget-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => fuzz_budget_ms = Some(n),
                _ => {
                    eprintln!("--fuzz-budget-ms needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fuzz-repro" => match args.next() {
                Some(f) => fuzz_repro = Some(f),
                None => {
                    eprintln!("--fuzz-repro needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--verify-cache" => {
                // The sample size is optional: `--verify-cache 25` or bare
                // `--verify-cache` (defaults to 10).
                verify_cache = match args.peek().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => {
                        args.next();
                        Some(n)
                    }
                    None => Some(10),
                };
            }
            "--inject-faults" => match args.next().map(|s| FaultSpec::parse(&s)) {
                Some(Ok(spec)) => faults = Some(spec),
                Some(Err(e)) => {
                    eprintln!("--inject-faults: {e}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--inject-faults needs a spec\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            exp => wanted.push(exp.to_owned()),
        }
    }

    if selftest {
        let report = perf::selftest(jobs).pretty();
        let path = "BENCH_parallel.json";
        println!("{report}");
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = trace {
        return run_trace(
            scale,
            &path,
            trace_filter,
            pair,
            policy.unwrap_or(PolicyPreset::Dws),
            42,
        );
    }

    if let Some(path) = fuzz_repro {
        return run_fuzz_repro(&path);
    }
    if let Some(count) = fuzz_count {
        return run_fuzz(count, fuzz_seed, fuzz_budget_ms, verbose);
    }
    if let Some(sample) = verify_cache {
        let scale_dir = format!("{cache_dir}/{}", scale.label());
        return run_verify_cache(scale, &scale_dir, sample, fuzz_seed, verbose);
    }

    // Reject an unusable tenant count up front, before any simulation
    // starts: no curated mixes, or a count the hardware split can't honor.
    if let Some(n) = tenants {
        if let Err(e) = suite::validate_tenants(scale, n) {
            eprintln!("--tenants {n}: {e}");
            return ExitCode::from(2);
        }
    }

    for axis in &sweeps {
        wanted.push(format!("sens_{axis}"));
    }
    if wanted.is_empty() && tenants.is_some() {
        // `--tenants N` alone means "run the N-tenant scenario table".
        wanted.push("tenants".to_owned());
    }
    if wanted.is_empty() {
        wanted.push("all".to_owned());
    }

    let scale_dir = format!("{cache_dir}/{}", scale.label());
    if let Some(spec) = &mut faults {
        // Corruption faults are applied up front, against the cache the run
        // is about to read — the store must quarantine and resimulate.
        let touched = spec.corrupt_cache(std::path::Path::new(&scale_dir));
        if spec.corrupt > 0 {
            eprintln!(
                "fault: only {} cache file(s) available to corrupt ({} requested)",
                touched.len(),
                touched.len() + spec.corrupt
            );
        }
    }

    let store = Store::on_disk(&scale_dir);
    let mut ctx = ExpContext::new(scale, store);
    ctx.verbose = verbose;
    ctx.jobs = jobs;
    ctx.budget = budget;
    ctx.faults = faults;
    ctx.policy = policy;

    let mut tables: Vec<Table> = Vec::new();
    for exp in &wanted {
        let start = std::time::Instant::now();
        match exp.as_str() {
            "all" => tables.extend(ctx.run(suite::all)),
            "calib" => tables.push(ctx.run(suite::calibration)),
            "fig2" => tables.push(ctx.run(suite::fig2)),
            "fig3" => tables.push(ctx.run(suite::fig3)),
            "tab3" => tables.push(ctx.run(suite::tab3)),
            "doubling" => tables.push(ctx.run(suite::doubling)),
            "fig5" => tables.push(ctx.run(suite::fig5)),
            "fig6" => tables.push(ctx.run(suite::fig6)),
            "fig7" => tables.push(ctx.run(suite::fig7)),
            "tab5" => tables.push(ctx.run(suite::tab5)),
            "tab6" => tables.push(ctx.run(suite::tab6)),
            "fig8" => tables.push(ctx.run(suite::fig8)),
            "fig9" => tables.push(ctx.run(suite::fig9)),
            "fig10" => tables.extend(ctx.run(suite::fig10)),
            "fig11" => tables.push(ctx.run(suite::fig11)),
            "fig12" => tables.push(ctx.run(suite::fig12)),
            "fig13" => tables.push(ctx.run(suite::fig13)),
            "fig14" => tables.push(ctx.run(suite::fig14)),
            "ablation" => tables.push(ctx.run(suite::ablation_pend_check)),
            "tenants" => {
                let n = tenants.unwrap_or(3);
                if let Err(e) = suite::validate_tenants(scale, n) {
                    eprintln!("tenants: {e}");
                    return ExitCode::from(2);
                }
                tables.push(ctx.run(|c| suite::tenants_n(c, n)));
            }
            "tenants3" => tables.push(ctx.run(suite::tenants3)),
            "tenants4" => tables.push(ctx.run(suite::tenants4)),
            other => match other.strip_prefix("sens_").map(str::parse::<SweepAxis>) {
                Some(Ok(axis)) => {
                    let n = tenants.unwrap_or(2);
                    tables.push(ctx.run(|c| sweep::sens(c, axis, n)));
                }
                _ => {
                    eprintln!("unknown experiment {other}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
        }
        if verbose {
            eprintln!(
                "[{exp}] done in {:.1?} (sims run: {}, cache hits: {})",
                start.elapsed(),
                ctx.store.misses(),
                ctx.store.hits()
            );
        }
    }

    for t in &tables {
        println!("{t}");
    }
    if let Some(path) = markdown {
        let md: String = tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = std::fs::write(&path, md) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    summarize_failures(&ctx)
}
