//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--verbose] [--cache DIR] [--markdown FILE] [EXPERIMENT ...]
//!
//! EXPERIMENT: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6
//!             fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation all (default: all)
//! ```

use std::process::ExitCode;

use walksteal_experiments::{suite, ExpContext, Scale, Store, Table};

fn usage() -> &'static str {
    "usage: repro [--quick] [--verbose] [--cache DIR] [--markdown FILE] [EXPERIMENT ...]\n\
     experiments: calib fig2 fig3 tab3 doubling fig5 fig6 fig7 tab5 tab6 \
     fig8 fig9 fig10 fig11 fig12 fig13 fig14 ablation all"
}

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut cache_dir = String::from("results/cache");
    let mut verbose = false;
    let mut markdown: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--verbose" | "-v" => verbose = true,
            "--cache" => match args.next() {
                Some(dir) => cache_dir = dir,
                None => {
                    eprintln!("--cache needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--markdown" => match args.next() {
                Some(f) => markdown = Some(f),
                None => {
                    eprintln!("--markdown needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
            exp => wanted.push(exp.to_owned()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_owned());
    }

    let store = Store::on_disk(format!("{cache_dir}/{}", scale.label()));
    let mut ctx = ExpContext::new(scale, store);
    ctx.verbose = verbose;

    let mut tables: Vec<Table> = Vec::new();
    for exp in &wanted {
        let start = std::time::Instant::now();
        match exp.as_str() {
            "all" => tables.extend(suite::all(&mut ctx)),
            "calib" => tables.push(suite::calibration(&mut ctx)),
            "fig2" => tables.push(suite::fig2(&mut ctx)),
            "fig3" => tables.push(suite::fig3(&mut ctx)),
            "tab3" => tables.push(suite::tab3(&mut ctx)),
            "doubling" => tables.push(suite::doubling(&mut ctx)),
            "fig5" => tables.push(suite::fig5(&mut ctx)),
            "fig6" => tables.push(suite::fig6(&mut ctx)),
            "fig7" => tables.push(suite::fig7(&mut ctx)),
            "tab5" => tables.push(suite::tab5(&mut ctx)),
            "tab6" => tables.push(suite::tab6(&mut ctx)),
            "fig8" => tables.push(suite::fig8(&mut ctx)),
            "fig9" => tables.push(suite::fig9(&mut ctx)),
            "fig10" => tables.extend(suite::fig10(&mut ctx)),
            "fig11" => tables.push(suite::fig11(&mut ctx)),
            "fig12" => tables.push(suite::fig12(&mut ctx)),
            "fig13" => tables.push(suite::fig13(&mut ctx)),
            "fig14" => tables.push(suite::fig14(&mut ctx)),
            "ablation" => tables.push(suite::ablation_pend_check(&mut ctx)),
            other => {
                eprintln!("unknown experiment {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        if verbose {
            eprintln!(
                "[{exp}] done in {:.1?} (sims run: {}, cache hits: {})",
                start.elapsed(),
                ctx.store.misses(),
                ctx.store.hits()
            );
        }
    }

    for t in &tables {
        println!("{t}");
    }
    if let Some(path) = markdown {
        let md: String = tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = std::fs::write(&path, md) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
