//! Fairness-under-churn experiments: tenants arrive, run under an SLO, and
//! leave (or are evicted) mid-run.
//!
//! The static suite measures steady-state sharing; these tables measure the
//! regime the paper's motivation describes — a multi-tenant GPU whose
//! tenant set changes over time. Each suite draws seeded churn timelines
//! from the [`ArrivalProcess`] presets ([`churn_light`] / [`churn_heavy`]),
//! lowers them into [`ScenarioSpec`]s with a per-tenant p99 walk-latency
//! SLO, and runs them under the headline presets. The reported metrics are
//! the scenario engine's fairness-under-churn trio:
//!
//! * **SLO %** — mean per-tenant fraction of counted SLO checks whose p99
//!   walk latency met the target;
//! * **WSoL** — weighted speedup over lifetime, Σᵢ lifetime-IPCᵢ / IPCˢᴬᵢ
//!   (each tenant normalized by its stand-alone IPC over its own residency
//!   window);
//! * **Evict** — QoS evictions performed by the admission controller.
//!
//! [`sens_churn`] sweeps churn *intensity* (the mean inter-arrival gap,
//! with residency scaled in proportion) the same way the hardware axes
//! sweep walkers or TLB entries: WSoL normalized to the same point's
//! Baseline, gmean over the seeded timelines.

use walksteal_multitenant::{GpuConfig, PolicyPreset, ScenarioSpec, SimResult, SloPolicy};
use walksteal_sim_core::gmean;
use walksteal_workloads::{ArrivalProcess, ChurnPlan};

use crate::key::ExpKey;
use crate::report::Table;
use crate::suite::{ExpContext, SCENARIO_PRESETS};

/// Seeded timelines per churn table row set (each seed is one row).
pub const CHURN_ROWS: usize = 3;

/// Which churn suite a table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Light churn: staggered arrivals, rare departures, a lenient SLO.
    Light,
    /// Heavy churn: back-to-back arrivals, frequent departures, a tight
    /// SLO the controller has to enforce.
    Heavy,
}

impl ChurnKind {
    /// The suite label (`repro churn_<name>`, cache-key prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChurnKind::Light => "light",
            ChurnKind::Heavy => "heavy",
        }
    }

    /// The arrival process this suite draws timelines from.
    #[must_use]
    pub fn process(self) -> ArrivalProcess {
        match self {
            ChurnKind::Light => ArrivalProcess::light(),
            ChurnKind::Heavy => ArrivalProcess::heavy(),
        }
    }

    /// The per-tenant p99 walk-latency target (cycles) and controller
    /// policy this suite applies to every tenant.
    #[must_use]
    pub fn slo(self) -> (u64, SloPolicy) {
        match self {
            ChurnKind::Light => (
                3_000,
                SloPolicy {
                    check_interval: 20_000,
                    evict_after: 8,
                    min_samples: 64,
                },
            ),
            // Heavy residencies last ~10k cycles, so checks must come fast
            // enough (and the eviction streak be short enough) for the
            // controller to act before the victim departs on its own.
            ChurnKind::Heavy => (
                1_200,
                SloPolicy {
                    check_interval: 5_000,
                    evict_after: 2,
                    min_samples: 32,
                },
            ),
        }
    }
}

/// Lowers a generated churn plan into a scenario: the plan's arrivals and
/// departures in timeline order, plus (when `slo` is set) one p99 target
/// per tenant and the controller policy.
#[must_use]
pub fn scenario_from_plan(plan: &ChurnPlan, slo: Option<(u64, SloPolicy)>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new();
    for &(cycle, app) in &plan.arrivals {
        spec = spec.arrive(cycle, app);
    }
    for &(cycle, tenant) in &plan.departures {
        spec = spec.depart(cycle, tenant);
    }
    if let Some((p99, policy)) = slo {
        for t in 0..plan.n_tenants() {
            spec = spec.slo_target(t, p99);
        }
        spec = spec.slo_policy(policy);
    }
    spec
}

/// The canonical hardware for an `n`-tenant churn run: identical to
/// [`ExpContext::tenant_config`] — churn adds a timeline, not a machine.
fn churn_config(ctx: &ExpContext, n: usize, preset: PolicyPreset) -> GpuConfig {
    ctx.tenant_config(n, preset)
}

/// One churn cell: the scenario for `(kind, seed)` under `preset`,
/// cache-keyed on the suite, preset, and the plan's arrivals.
fn run_churn(
    ctx: &mut ExpContext,
    kind: ChurnKind,
    plan: &ChurnPlan,
    preset: PolicyPreset,
    seed: u64,
) -> SimResult {
    let spec = scenario_from_plan(plan, Some(kind.slo()));
    let cfg = churn_config(ctx, plan.n_tenants(), preset);
    let label = format!("churn|{}|{}", kind.name(), preset.label());
    let key = ExpKey::custom_mix(&label, &plan.apps(), ctx.scale.label(), seed);
    ctx.scenario_run(key, cfg, &spec, seed)
}

/// Mean per-tenant SLO compliance of a churn run, as a percentage.
fn slo_pct(r: &SimResult) -> f64 {
    let churn = r.churn.as_ref().expect("scenario runs report churn");
    let n = churn.tenants.len() as f64;
    100.0 * churn.tenants.iter().map(|t| t.slo_compliance()).sum::<f64>() / n
}

/// The fairness-under-churn table for one suite: a row per seeded
/// timeline, and per compared preset the SLO-compliance percentage,
/// weighted speedup over lifetime, and eviction count; arithmetic-mean
/// summary row (eviction counts are often zero, so gmean is unusable).
pub fn churn_table(ctx: &mut ExpContext, kind: ChurnKind) -> Table {
    let presets = ctx.presets(&SCENARIO_PRESETS);
    let columns: Vec<String> = presets
        .iter()
        .flat_map(|p| {
            [
                format!("SLO% {}", p.label()),
                format!("WSoL {}", p.label()),
                format!("Evict {}", p.label()),
            ]
        })
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!(
            "Fairness under churn ({}): SLO compliance, weighted speedup over lifetime, evictions",
            kind.name()
        ),
        &column_refs,
    );
    let process = kind.process();
    let mut all: Vec<Vec<f64>> = Vec::new();
    for row in 0..CHURN_ROWS {
        let seed = ctx.seed.wrapping_add(row as u64);
        let plan = process.generate(seed);
        let sa = ctx.standalone_ipcs_for(&plan.apps());
        let vals: Vec<f64> = presets
            .iter()
            .flat_map(|&preset| {
                let r = run_churn(ctx, kind, &plan, preset, seed);
                let churn = r.churn.as_ref().expect("scenario runs report churn");
                [
                    slo_pct(&r),
                    churn.weighted_speedup_over_lifetime(&sa),
                    churn.evictions as f64,
                ]
            })
            .collect();
        let label = format!(
            "s{seed} {} ({} dep)",
            plan.apps()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("."),
            plan.departures.len()
        );
        table.row(&label, &vals);
        all.push(vals);
    }
    let means: Vec<f64> = (0..columns.len())
        .map(|c| all.iter().map(|v| v[c]).sum::<f64>() / all.len() as f64)
        .collect();
    table.row("mean", &means);
    table
}

/// The light-churn suite table (`repro churn_light`).
pub fn churn_light(ctx: &mut ExpContext) -> Table {
    churn_table(ctx, ChurnKind::Light)
}

/// The heavy-churn suite table (`repro churn_heavy`).
pub fn churn_heavy(ctx: &mut ExpContext) -> Table {
    churn_table(ctx, ChurnKind::Heavy)
}

/// The churn-intensity points: mean inter-arrival gap in cycles, densest
/// last (see [`SweepAxis::Churn`](crate::SweepAxis)).
pub const CHURN_GAPS: [usize; 3] = [8_000, 4_000, 1_500];

/// The sensitivity table for churn intensity: one row per mean-gap point,
/// one column per compared preset, each cell the gmean over the seeded
/// timelines of weighted speedup over lifetime normalized to the *same
/// point's* Baseline.
pub fn sens_churn(ctx: &mut ExpContext) -> Table {
    let presets = ctx.presets(&SCENARIO_PRESETS);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Sensitivity: churn intensity (weighted speedup over lifetime, normalized per point)",
        &columns,
    );
    let (p99, policy) = ChurnKind::Heavy.slo();
    for &gap in &CHURN_GAPS {
        let process = ArrivalProcess {
            mean_gap: gap as u64,
            mean_residency: 5 * gap as u64,
            depart_chance: 0.6,
            ..ArrivalProcess::light()
        };
        let mut per_seed: Vec<Vec<f64>> = Vec::with_capacity(CHURN_ROWS);
        for row in 0..CHURN_ROWS {
            let seed = ctx.seed.wrapping_add(row as u64);
            let plan = process.generate(seed);
            let sa = ctx.standalone_ipcs_for(&plan.apps());
            let spec = scenario_from_plan(&plan, Some((p99, policy)));
            let wsol: Vec<f64> = presets
                .iter()
                .map(|&preset| {
                    let cfg = churn_config(ctx, plan.n_tenants(), preset);
                    let label = format!("churnS|g{gap}|{}", preset.label());
                    let key = ExpKey::custom_mix(&label, &plan.apps(), ctx.scale.label(), seed);
                    let r = ctx.scenario_run(key, cfg, &spec, seed);
                    r.churn
                        .as_ref()
                        .expect("scenario runs report churn")
                        .weighted_speedup_over_lifetime(&sa)
                })
                .collect();
            per_seed.push(wsol.iter().map(|&v| v / wsol[0]).collect());
        }
        let row: Vec<f64> = (0..presets.len())
            .map(|c| gmean(&per_seed.iter().map(|v| v[c]).collect::<Vec<_>>()))
            .collect();
        table.row(&format!("{gap}-cycle mean gap"), &row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::store::Store;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, Store::in_memory())
    }

    #[test]
    fn plans_lower_to_valid_scenarios() {
        for kind in [ChurnKind::Light, ChurnKind::Heavy] {
            for seed in [42, 43, 44, 7] {
                let plan = kind.process().generate(seed);
                let spec = scenario_from_plan(&plan, Some(kind.slo()));
                assert_eq!(spec.validate(), Ok(()), "{kind:?} seed {seed}");
                assert_eq!(spec.n_tenants(), plan.n_tenants());
                assert!(spec.has_slo_targets());
                // Without an SLO the lowering is timeline-only.
                let bare = scenario_from_plan(&plan, None);
                assert_eq!(bare.validate(), Ok(()));
                assert!(!bare.has_slo_targets());
            }
        }
    }

    #[test]
    fn churn_cells_hit_the_cache_across_tables() {
        let mut ctx = quick_ctx();
        let first = churn_light(&mut ctx);
        let misses = ctx.store.misses();
        let again = churn_light(&mut ctx);
        assert_eq!(first.to_string(), again.to_string());
        assert_eq!(ctx.store.misses(), misses, "second render must be cached");
    }

    #[test]
    fn churn_table_shape_and_ranges() {
        let mut ctx = quick_ctx();
        let t = churn_table(&mut ctx, ChurnKind::Light);
        assert_eq!(t.rows.len(), CHURN_ROWS + 1);
        assert_eq!(t.rows[CHURN_ROWS].0, "mean");
        for (label, vals) in &t.rows {
            assert_eq!(vals.len(), 9, "{label}");
            for chunk in vals.chunks(3) {
                assert!((0.0..=100.0).contains(&chunk[0]), "{label}: SLO% {chunk:?}");
                assert!(chunk[1].is_finite() && chunk[1] >= 0.0, "{label}: WSoL");
                assert!(chunk[2] >= 0.0, "{label}: evictions");
            }
        }
    }

    #[test]
    fn parallel_churn_matches_serial_exactly() {
        let mut serial = quick_ctx();
        let expected = churn_heavy(&mut serial);
        let mut parallel = quick_ctx();
        parallel.jobs = 4;
        let got = parallel.run(churn_heavy);
        assert_eq!(expected.to_string(), got.to_string());
        assert_eq!(serial.store.misses(), parallel.store.misses());
    }

    #[test]
    fn sens_churn_normalizes_each_point_to_baseline() {
        let mut ctx = quick_ctx();
        let t = sens_churn(&mut ctx);
        assert_eq!(t.rows.len(), CHURN_GAPS.len());
        for (label, vals) in &t.rows {
            assert_eq!(vals.len(), 3, "{label}");
            assert!((vals[0] - 1.0).abs() < 1e-12, "{label}: Baseline is the base");
            assert!(vals.iter().all(|v| v.is_finite() && *v > 0.0), "{label}");
        }
    }
}
