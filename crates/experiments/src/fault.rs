//! Deterministic, seed-driven fault injection for the experiment engine.
//!
//! `repro --inject-faults <spec>` exercises the fault-tolerance layer end to
//! end: it forces job panics, artificially tiny run budgets, and corrupted
//! cache files, and the suite must still produce a correct final report with
//! the failures itemized. Every choice the injector makes derives from the
//! spec's seed, so a faulted run is exactly reproducible.
//!
//! The spec is a comma-separated list of `knob=value` pairs:
//!
//! ```text
//! panic=2,corrupt=3,budget=1,seed=7
//! ```
//!
//! * `panic=N` — N jobs panic on their first attempt (the bounded retry
//!   then succeeds, so final numbers match a clean run).
//! * `budget=N` — N jobs get a ~1000-event budget on their first attempt,
//!   forcing a budget-exceeded failure; the retry runs with the real
//!   budget.
//! * `corrupt=N` — N existing cache files are truncated or bit-flipped
//!   before the run (alternating), forcing quarantine-and-resimulate.
//! * `seed=S` — the seed driving every selection (default 0).

use std::fs;
use std::path::{Path, PathBuf};

use walksteal_sim_core::SimRng;

/// A fault the engine injects into one job's first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The job panics mid-simulation.
    Panic,
    /// The job runs under a ~1000-event budget and blows it.
    Budget,
}

/// Parsed `--inject-faults` spec. Counters are consumed as faults are
/// assigned, so a suite of several experiments injects exactly the
/// requested totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Jobs still to be given a first-attempt panic.
    pub panics: usize,
    /// Jobs still to be given a first-attempt budget blowout.
    pub budgets: usize,
    /// Cache files still to be corrupted up front.
    pub corrupt: usize,
    /// Seed for every injection decision.
    pub seed: u64,
    /// Fault-assignment rounds completed (decorrelates successive plans).
    rounds: u64,
}

impl FaultSpec {
    /// Parses a spec string like `panic=1,corrupt=2,budget=1,seed=7`.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending field.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{part}` is not knob=value"))?;
            let n: u64 = v
                .trim()
                .parse()
                .map_err(|_| format!("fault spec value `{v}` is not a number"))?;
            match k.trim() {
                "panic" => spec.panics = n as usize,
                "budget" => spec.budgets = n as usize,
                "corrupt" => spec.corrupt = n as usize,
                "seed" => spec.seed = n,
                other => return Err(format!("unknown fault spec knob `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Whether any fault remains to be injected.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.panics == 0 && self.budgets == 0 && self.corrupt == 0
    }

    /// Assigns pending panic/budget faults to positions among `n_jobs`
    /// planned jobs, consuming the counters. Deterministic in the seed and
    /// the number of prior calls.
    #[must_use]
    pub fn take_plan(&mut self, n_jobs: usize) -> Vec<Option<InjectedFault>> {
        let mut plan = vec![None; n_jobs];
        if n_jobs == 0 {
            return plan;
        }
        let mut rng = SimRng::new(self.seed).split(0x666A + self.rounds);
        self.rounds += 1;
        let mut place = |spec_count: &mut usize, fault: InjectedFault| {
            while *spec_count > 0 {
                if plan.iter().all(Option::is_some) {
                    return; // every job already faulted; keep the rest
                }
                let mut i = rng.next_below(n_jobs as u64) as usize;
                while plan[i].is_some() {
                    i = (i + 1) % n_jobs; // linear-probe to a free slot
                }
                plan[i] = Some(fault);
                *spec_count -= 1;
            }
        };
        place(&mut self.panics, InjectedFault::Panic);
        place(&mut self.budgets, InjectedFault::Budget);
        plan
    }

    /// Corrupts up to the spec's pending `corrupt` count of cache files
    /// under `dir` (truncation and bit-flips, alternating), consuming the
    /// counter. Returns the paths touched. Selection is deterministic:
    /// files are considered in sorted-name order.
    pub fn corrupt_cache(&mut self, dir: &Path) -> Vec<PathBuf> {
        if self.corrupt == 0 {
            return Vec::new();
        }
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        files.sort();
        let mut rng = SimRng::new(self.seed).split(0xC0FF);
        let mut touched = Vec::new();
        while self.corrupt > 0 && !files.is_empty() {
            let pick = rng.next_below(files.len() as u64) as usize;
            let path = files.swap_remove(pick);
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            // Alternate the two corruption shapes the store must survive.
            let mangled = if touched.len() % 2 == 0 {
                text[..text.len() / 2].to_string()
            } else {
                flip_one_digit(&text, &mut rng)
            };
            if fs::write(&path, mangled).is_ok() {
                eprintln!("fault: corrupted {}", path.display());
                touched.push(path);
                self.corrupt -= 1;
            }
        }
        touched
    }
}

/// Replaces one decimal digit of `text` with a different digit, keeping the
/// JSON well-formed but the payload wrong (caught by the envelope
/// checksum).
fn flip_one_digit(text: &str, rng: &mut SimRng) -> String {
    let digits: Vec<usize> = text
        .bytes()
        .enumerate()
        .filter(|(_, b)| b.is_ascii_digit())
        .map(|(i, _)| i)
        .collect();
    if digits.is_empty() {
        return String::new(); // no digits: degrade to an empty (truncated) file
    }
    let at = digits[rng.next_below(digits.len() as u64) as usize];
    let mut bytes = text.as_bytes().to_vec();
    bytes[at] = b'0' + (bytes[at] - b'0' + 1) % 10;
    String::from_utf8(bytes).expect("digit swap preserves UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = FaultSpec::parse("panic=2,corrupt=3,budget=1,seed=7").unwrap();
        assert_eq!(s.panics, 2);
        assert_eq!(s.corrupt, 3);
        assert_eq!(s.budgets, 1);
        assert_eq!(s.seed, 7);
        assert!(!s.exhausted());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(FaultSpec::parse("panic").is_err());
        assert!(FaultSpec::parse("panic=x").is_err());
        assert!(FaultSpec::parse("warp=1").is_err());
    }

    #[test]
    fn plan_is_deterministic_and_consumes_counters() {
        let mut a = FaultSpec::parse("panic=2,budget=1,seed=9").unwrap();
        let mut b = a.clone();
        let pa = a.take_plan(10);
        let pb = b.take_plan(10);
        assert_eq!(pa, pb);
        assert_eq!(
            pa.iter().filter(|f| **f == Some(InjectedFault::Panic)).count(),
            2
        );
        assert_eq!(
            pa.iter().filter(|f| **f == Some(InjectedFault::Budget)).count(),
            1
        );
        assert!(a.exhausted());
        // A second round injects nothing further.
        assert!(a.take_plan(10).iter().all(Option::is_none));
    }

    #[test]
    fn more_faults_than_jobs_saturates() {
        let mut s = FaultSpec::parse("panic=5,seed=1").unwrap();
        let plan = s.take_plan(2);
        assert!(plan.iter().all(Option::is_some));
        assert_eq!(s.panics, 3, "unplaced faults remain pending");
    }

    #[test]
    fn corrupts_requested_number_of_files() {
        let dir = std::env::temp_dir().join(format!("walksteal-fault-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for i in 0..5 {
            fs::write(dir.join(format!("f{i}.json")), format!("{{\"v\":{i}00}}")).unwrap();
        }
        let mut s = FaultSpec::parse("corrupt=2,seed=3").unwrap();
        let touched = s.corrupt_cache(&dir);
        assert_eq!(touched.len(), 2);
        assert_eq!(s.corrupt, 0);
        // Deterministic: same seed picks the same files.
        let mut s2 = FaultSpec::parse("corrupt=2,seed=3").unwrap();
        let dir2 = std::env::temp_dir().join(format!("walksteal-fault2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir2);
        fs::create_dir_all(&dir2).unwrap();
        for i in 0..5 {
            fs::write(dir2.join(format!("f{i}.json")), format!("{{\"v\":{i}00}}")).unwrap();
        }
        let touched2 = s2.corrupt_cache(&dir2);
        let names = |v: &[PathBuf]| {
            v.iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&touched), names(&touched2));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn empty_dir_leaves_counter_pending() {
        let dir = std::env::temp_dir().join(format!("walksteal-fault-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut s = FaultSpec::parse("corrupt=2").unwrap();
        assert!(s.corrupt_cache(&dir).is_empty());
        assert_eq!(s.corrupt, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
