//! Seeded scenario fuzzing with a stacked differential oracle, a
//! delta-debugging shrinker, and self-contained JSON repro files.
//!
//! Every correctness guarantee in the repo — BitmapScheduler vs
//! ReferenceScheduler lockstep, batched vs scalar entry points, the
//! N-tenant invariant properties, trace-replay self-checks, fault-injection
//! equivalence — historically ran only on the 13 calibrated apps and the
//! curated sweep points. This module turns those oracles loose on the whole
//! configuration space:
//!
//! 1. [`FuzzGen`] draws random [`FuzzScenario`]s from a seed: synthetic
//!    tenants (arbitrary footprints and access patterns, via
//!    [`walksteal_workloads::synth`]), random hardware sweep points
//!    (walkers / queue depth / L2-TLB size / L2 banks / DRAM channels and
//!    occupancy / 2–4 tenants), every
//!    [`PolicyPreset`], mid-run repartition schedules, and fault-injection
//!    schedules reusing the `--inject-faults` machinery.
//! 2. [`run_oracles`] runs one scenario through the stacked oracle:
//!    * **lockstep** — optimized (batched) vs reference (scalar) walk
//!      scheduler on identical traffic, per-step invariant checks through
//!      the shared [`walksteal_vm::invariants`] module, inspection-view
//!      agreement, repartition events applied to both sides, and a
//!      batched-vs-scalar memory-system twin on the scenario's randomized
//!      L2-bank/DRAM-channel shape;
//!    * **simulate** — the full end-to-end simulation under an event
//!      budget;
//!    * **trace** — the same simulation traced, the trace replayed from
//!      JSONL alone, and the replayed per-tenant stats compared
//!      bit-for-bit against the simulator (plus traced-vs-untraced result
//!      identity);
//!    * **faults** — the scenario's fault schedule injected through the
//!      parallel engine, and the faulted store compared byte-for-byte to a
//!      clean run.
//! 3. On divergence, [`shrink`] minimizes the scenario with greedy
//!    delta-debugging (drop tenants, halve footprints and schedules,
//!    simplify the config) while the failure persists, and the minimal
//!    scenario is serialized with [`write_repro`] as a self-contained JSON
//!    file that `repro --fuzz-repro FILE` replays deterministically.
//!
//! [`run_campaign`] drives the whole pipeline behind `repro --fuzz N
//! --fuzz-seed S --fuzz-budget-ms T`: regression scenarios in the corpus
//! directory (`results/fuzz/`) replay first, then `N` generated scenarios
//! run until done or out of budget. Exit contract: 0 clean, 1 divergence
//! (repro path printed).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use walksteal_mem::{Access, AccessKind, MemSystem, MemSystemConfig};
use walksteal_multitenant::{
    GpuConfig, JsonlTracer, PolicyPreset, RunBudget, SimError, SimulationBuilder, TenantSpec,
};
use walksteal_sim_core::{Cycle, Json, LineAddr, Observer, SimRng, TenantId, Vpn};
use walksteal_vm::walk::WalkContext;
use walksteal_vm::{
    invariants, DispatchedWalk, FrameAlloc, PageSize, PageTable, SchedulerImpl, WalkQueueFull,
    WalkRequest, WalkSubsystem,
};
use walksteal_workloads::{synthetic_profile, AppId, AppProfile};

use crate::fault::FaultSpec;
use crate::key::ExpKey;
use crate::parallel::{run_jobs, Job, RunOptions};
use crate::store::Store;

/// Event budget for the end-to-end oracle stages: generous enough that
/// every generated scenario completes, small enough that an adversarial
/// hand-edited repro cannot hang a campaign. A scenario that exceeds it is
/// truncated (the downstream trace check is skipped), not failed.
const EVENT_CAP: u64 = 4_000_000;

/// Where one fuzz tenant's behavior comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantSource {
    /// One of the 13 calibrated apps.
    App(AppId),
    /// A fuzzer-drawn synthetic profile (the id is only a label).
    Synthetic(AppProfile),
}

impl TenantSource {
    /// The app id labeling this tenant in results and cache keys.
    #[must_use]
    pub fn app(&self) -> AppId {
        match self {
            TenantSource::App(a) => *a,
            TenantSource::Synthetic(p) => p.id,
        }
    }

    /// The builder spec this tenant simulates as.
    #[must_use]
    pub fn spec(&self) -> TenantSpec {
        match self {
            TenantSource::App(a) => TenantSpec::new(*a),
            TenantSource::Synthetic(p) => TenantSpec::synthetic(*p),
        }
    }

    fn to_json(self) -> Json {
        match self {
            TenantSource::App(a) => Json::Obj(vec![("app".into(), Json::Str(a.name().into()))]),
            TenantSource::Synthetic(p) => Json::Obj(vec![("synthetic".into(), p.to_json())]),
        }
    }

    fn from_json(v: &Json) -> Result<TenantSource, String> {
        if let Some(name) = v.get("app").and_then(Json::as_str) {
            return AppId::from_name(name)
                .map(TenantSource::App)
                .ok_or_else(|| format!("tenant: unknown app `{name}`"));
        }
        if let Some(p) = v.get("synthetic") {
            return AppProfile::from_json(p).map(TenantSource::Synthetic);
        }
        Err("tenant is neither {\"app\":…} nor {\"synthetic\":…}".into())
    }
}

/// One mid-run repartition: at lockstep step `step`, restrict the
/// partitioned walk scheduler to the tenants flagged `true` (a no-op for
/// non-partitioned policies, exactly like the production path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepartitionEvent {
    /// Lockstep step the event fires before.
    pub step: usize,
    /// Per-tenant active flags; always has at least one `true`.
    pub active: Vec<bool>,
}

/// One arrival or departure on a fuzz scenario's tenancy timeline: at
/// lockstep step `step`, the tenant departs (its queued walks are
/// cancelled and the walkers repartition among the residents) or
/// re-arrives (walkers repartition to include it again) — the
/// scheduler-level shape of the scenario engine's `Arrive`/`Depart`
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Lockstep step the event fires before.
    pub step: usize,
    /// The tenant arriving or departing.
    pub tenant: usize,
    /// `true` = departure (cancel + repartition), `false` = arrival.
    pub depart: bool,
}

/// A deliberately wrong scheduler shim, used only by tests to prove the
/// divergence → shrink → repro pipeline works end to end. Never set by the
/// generator; round-trips through repro files so a planted repro replays
/// to the same divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Plant {
    /// No bug planted (every real campaign).
    #[default]
    None,
    /// The reference side silently drops the last enqueue of every fifth
    /// step's burst, breaking attempt accounting — the invariant oracle
    /// must catch it, and it survives every shrinking pass that keeps a
    /// few dozen steps.
    DropReferenceEnqueues,
}

/// One self-contained fuzz scenario: everything needed to replay it is in
/// this struct (and its JSON serialization — no references to external
/// state beyond the simulator itself).
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzScenario {
    /// Human-readable identity, e.g. `s42-17` (generator seed + index).
    pub label: String,
    /// Seed for lockstep traffic and the end-to-end workload.
    pub seed: u64,
    /// The tenants (2–4 from the generator; the shrinker keeps ≥ 2).
    pub tenants: Vec<TenantSource>,
    /// Policy preset under test.
    pub preset: PolicyPreset,
    /// Page-table walkers (a multiple of the tenant count).
    pub walkers: usize,
    /// Aggregate walk-queue entries.
    pub queue_entries: usize,
    /// Shared L2 TLB entries (multiple of 16, power-of-two sets).
    pub l2_tlb_entries: usize,
    /// Shared L2 cache banks (power of two); the batched memory path
    /// groups misses per bank, so this sets the contention geometry.
    pub l2_banks: usize,
    /// DRAM channels (power of two); the batch pass groups per channel.
    pub dram_channels: usize,
    /// Cycles one line transfer occupies its DRAM channel (> 0; the
    /// bandwidth term that creates queue waits under conflicts).
    pub dram_occupancy: u64,
    /// SMs per tenant for the end-to-end stages.
    pub sms_per_tenant: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Per-warp instruction budget.
    pub instructions_per_warp: u64,
    /// Lockstep steps to drive.
    pub steps: usize,
    /// Mid-run repartition schedule, sorted by step.
    pub repartition: Vec<RepartitionEvent>,
    /// Arrival/departure timeline, sorted by step. Interleaves with
    /// `repartition` (at a step tie, repartitions apply first); the merged
    /// schedule never leaves every tenant departed.
    pub churn: Vec<ChurnEvent>,
    /// Fault-injection schedule (an `--inject-faults` spec string), if any.
    pub faults: Option<String>,
    /// Test-only planted bug (see [`Plant`]).
    pub plant: Plant,
}

/// What the oracle stack observed on a clean run — used by tests to assert
/// the oracles were not vacuous (steals happened, batches were batched,
/// faults actually fired).
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Walks serviced by stealing in the lockstep stage.
    pub steals: u64,
    /// Enqueue attempts rejected (queue full) in the lockstep stage.
    pub rejected: u64,
    /// Queued walks cancelled by timeline departures in the lockstep stage.
    pub cancelled: u64,
    /// Requests that went through `try_enqueue_batch` on the optimized side.
    pub batched: u64,
    /// Lines compared through the batched-vs-scalar memory twin in the
    /// lockstep stage.
    pub mem_refs: u64,
    /// Events the end-to-end simulation processed.
    pub sim_events: u64,
    /// The end-to-end stage hit the internal event cap and was truncated.
    pub truncated: bool,
    /// Jobs compared in the fault-equivalence stage (0 = no fault schedule).
    pub fault_jobs: usize,
}

/// A detected oracle failure: which stage tripped and the first mismatch.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Oracle stage: `lockstep`, `simulate`, `trace`, or `faults`.
    pub stage: &'static str,
    /// First mismatch, human-readable.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

impl FuzzScenario {
    /// The scenario's hardware configuration before tenant-count
    /// specialization and preset application (the builder applies those in
    /// the canonical order).
    #[must_use]
    pub fn base_config(&self) -> GpuConfig {
        let mut cfg = GpuConfig::default()
            .with_n_sms(self.sms_per_tenant * self.tenants.len())
            .with_warps_per_sm(self.warps_per_sm)
            .with_instructions_per_warp(self.instructions_per_warp)
            .with_walkers(self.walkers)
            .with_l2_tlb_entries(self.l2_tlb_entries);
        cfg.walk.queue_entries = self.queue_entries;
        cfg.mem.l2_banks = self.l2_banks;
        cfg.mem.dram.channels = self.dram_channels;
        cfg.mem.dram.occupancy_cycles = self.dram_occupancy;
        cfg
    }

    /// The fully specialized configuration (tenant split + preset applied),
    /// as the end-to-end stages run it and the lockstep stage mirrors it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the scenario's knobs cannot
    /// host its tenant count (possible only for hand-edited repro files —
    /// the generator and shrinker keep scenarios valid by construction).
    pub fn config(&self) -> Result<GpuConfig, SimError> {
        Ok(self
            .base_config()
            .try_for_tenants(self.tenants.len())?
            .try_with_preset(self.preset)?)
    }

    /// Serializes the scenario as a self-contained JSON object (the repro
    /// file format; see EXPERIMENTS.md).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("fuzz_repro".into(), Json::UInt(1)),
            ("label".into(), Json::Str(self.label.clone())),
            ("seed".into(), Json::UInt(self.seed)),
            ("preset".into(), Json::Str(self.preset.label().into())),
            (
                "tenants".into(),
                Json::Arr(self.tenants.iter().map(|t| t.to_json()).collect()),
            ),
            ("walkers".into(), Json::UInt(self.walkers as u64)),
            ("queue_entries".into(), Json::UInt(self.queue_entries as u64)),
            ("l2_tlb_entries".into(), Json::UInt(self.l2_tlb_entries as u64)),
            ("l2_banks".into(), Json::UInt(self.l2_banks as u64)),
            ("dram_channels".into(), Json::UInt(self.dram_channels as u64)),
            ("dram_occupancy".into(), Json::UInt(self.dram_occupancy)),
            ("sms_per_tenant".into(), Json::UInt(self.sms_per_tenant as u64)),
            ("warps_per_sm".into(), Json::UInt(self.warps_per_sm as u64)),
            (
                "instructions_per_warp".into(),
                Json::UInt(self.instructions_per_warp),
            ),
            ("steps".into(), Json::UInt(self.steps as u64)),
            (
                "repartition".into(),
                Json::Arr(
                    self.repartition
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("step".into(), Json::UInt(e.step as u64)),
                                (
                                    "active".into(),
                                    Json::Arr(e.active.iter().map(|&b| Json::Bool(b)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.churn.is_empty() {
            obj.push((
                "churn".into(),
                Json::Arr(
                    self.churn
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("step".into(), Json::UInt(e.step as u64)),
                                ("tenant".into(), Json::UInt(e.tenant as u64)),
                                (
                                    "kind".into(),
                                    Json::Str(
                                        if e.depart { "depart" } else { "arrive" }.into(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(f) = &self.faults {
            obj.push(("faults".into(), Json::Str(f.clone())));
        }
        if self.plant == Plant::DropReferenceEnqueues {
            obj.push(("plant".into(), Json::Str("drop_reference_enqueues".into())));
        }
        Json::Obj(obj)
    }

    /// Parses and validates a repro-file JSON object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing/ill-typed field or
    /// structurally invalid value (bad tenant count, uneven walker split,
    /// impossible TLB geometry, malformed repartition mask or fault spec).
    pub fn from_json(v: &Json) -> Result<FuzzScenario, String> {
        let uint = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("scenario: missing integer field `{k}`"))
        };
        // Memory-shape fields postdate the repro format: absent fields
        // (old corpus/repro files) default to the production memory
        // system, so historical repros replay on the hardware they
        // diverged on.
        let uint_or = |k: &str, default: u64| match v.get(k) {
            None => Ok(default),
            Some(j) => j
                .as_u64()
                .ok_or_else(|| format!("scenario: `{k}` is not an integer")),
        };
        let tenants = v
            .get("tenants")
            .and_then(Json::as_array)
            .ok_or("scenario: missing `tenants` array")?
            .iter()
            .map(TenantSource::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if tenants.is_empty() || tenants.len() > 4 {
            return Err(format!("scenario: {} tenants (want 1–4)", tenants.len()));
        }
        let preset_name = v
            .get("preset")
            .and_then(Json::as_str)
            .ok_or("scenario: missing `preset`")?;
        let preset: PolicyPreset = preset_name
            .parse()
            .map_err(|e| format!("scenario: {e}"))?;
        let repartition = match v.get("repartition").and_then(Json::as_array) {
            None => Vec::new(),
            Some(evs) => evs
                .iter()
                .map(|e| {
                    let step = e
                        .get("step")
                        .and_then(Json::as_u64)
                        .ok_or("repartition event: missing `step`")?
                        as usize;
                    let active: Vec<bool> = e
                        .get("active")
                        .and_then(Json::as_array)
                        .ok_or("repartition event: missing `active`")?
                        .iter()
                        .map(|b| b.as_bool().ok_or("repartition mask: non-boolean entry"))
                        .collect::<Result<_, _>>()?;
                    if active.len() != tenants.len() || !active.iter().any(|&b| b) {
                        return Err(format!(
                            "repartition mask {active:?} invalid for {} tenants",
                            tenants.len()
                        ));
                    }
                    Ok(RepartitionEvent { step, active })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        let churn = match v.get("churn").and_then(Json::as_array) {
            None => Vec::new(),
            Some(evs) => evs
                .iter()
                .map(|e| {
                    let step = e
                        .get("step")
                        .and_then(Json::as_u64)
                        .ok_or("churn event: missing `step`")? as usize;
                    let tenant = e
                        .get("tenant")
                        .and_then(Json::as_u64)
                        .ok_or("churn event: missing `tenant`")? as usize;
                    let depart = match e.get("kind").and_then(Json::as_str) {
                        Some("depart") => true,
                        Some("arrive") => false,
                        _ => return Err("churn event: `kind` must be depart|arrive".into()),
                    };
                    if tenant >= tenants.len() {
                        return Err(format!(
                            "churn event: tenant {tenant} out of range for {} tenants",
                            tenants.len()
                        ));
                    }
                    Ok(ChurnEvent {
                        step,
                        tenant,
                        depart,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        check_timeline(tenants.len(), &repartition, &churn)?;
        let faults = match v.get("faults") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let s = f.as_str().ok_or("scenario: `faults` is not a string")?;
                FaultSpec::parse(s)?; // validate now, fail on load not on run
                Some(s.to_owned())
            }
        };
        let plant = match v.get("plant").and_then(Json::as_str) {
            None => Plant::None,
            Some("drop_reference_enqueues") => Plant::DropReferenceEnqueues,
            Some(other) => return Err(format!("scenario: unknown plant `{other}`")),
        };
        let mem_default = MemSystemConfig::default();
        let sc = FuzzScenario {
            label: v
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("unlabeled")
                .to_owned(),
            seed: uint("seed")?,
            tenants,
            preset,
            walkers: uint("walkers")? as usize,
            queue_entries: uint("queue_entries")? as usize,
            l2_tlb_entries: uint("l2_tlb_entries")? as usize,
            l2_banks: uint_or("l2_banks", mem_default.l2_banks as u64)? as usize,
            dram_channels: uint_or("dram_channels", mem_default.dram.channels as u64)? as usize,
            dram_occupancy: uint_or("dram_occupancy", mem_default.dram.occupancy_cycles)?,
            sms_per_tenant: uint("sms_per_tenant")? as usize,
            warps_per_sm: uint("warps_per_sm")? as usize,
            instructions_per_warp: uint("instructions_per_warp")?,
            steps: uint("steps")? as usize,
            repartition,
            churn,
            faults,
            plant,
        };
        if sc.walkers == 0 || sc.walkers % sc.tenants.len() != 0 {
            return Err(format!(
                "scenario: {} walkers cannot split across {} tenants",
                sc.walkers,
                sc.tenants.len()
            ));
        }
        if sc.queue_entries < sc.walkers {
            return Err("scenario: fewer queue entries than walkers".into());
        }
        if sc.l2_tlb_entries % 16 != 0 || !(sc.l2_tlb_entries / 16).is_power_of_two() {
            return Err(format!(
                "scenario: L2 TLB of {} entries is not 16-way with power-of-two sets",
                sc.l2_tlb_entries
            ));
        }
        if sc.sms_per_tenant == 0 || sc.warps_per_sm == 0 || sc.instructions_per_warp == 0 {
            return Err("scenario: zero-sized machine".into());
        }
        if !sc.l2_banks.is_power_of_two() {
            return Err(format!(
                "scenario: {} L2 banks is not a power of two",
                sc.l2_banks
            ));
        }
        if !sc.dram_channels.is_power_of_two() {
            return Err(format!(
                "scenario: {} DRAM channels is not a power of two",
                sc.dram_channels
            ));
        }
        if sc.dram_occupancy == 0 {
            return Err("scenario: zero DRAM occupancy (free bandwidth)".into());
        }
        Ok(sc)
    }
}

/// Replays the merged repartition + churn schedule (step order;
/// repartitions first at a tie — the order [`lockstep`] applies them) and
/// rejects any point where every tenant is departed: the partitioned
/// scheduler cannot leave its walkers ownerless.
fn check_timeline(
    n_tenants: usize,
    repartition: &[RepartitionEvent],
    churn: &[ChurnEvent],
) -> Result<(), String> {
    let mut active = vec![true; n_tenants];
    let (mut r, mut c) = (0usize, 0usize);
    while r < repartition.len() || c < churn.len() {
        let take_repart = c >= churn.len()
            || (r < repartition.len() && repartition[r].step <= churn[c].step);
        if take_repart {
            active.clone_from(&repartition[r].active);
            r += 1;
        } else {
            let e = &churn[c];
            active[e.tenant] = !e.depart;
            c += 1;
        }
        if !active.iter().any(|&b| b) {
            return Err("timeline departs every tenant (no walker owner left)".into());
        }
    }
    Ok(())
}

/// The seeded scenario generator. Scenario `i` depends only on `(seed, i)`
/// — not on how many scenarios were drawn before it — so campaigns are
/// deterministic and any scenario is reconstructible from its label.
pub struct FuzzGen {
    seed: u64,
}

impl FuzzGen {
    /// A generator for campaign seed `seed` (`repro --fuzz-seed`).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzGen { seed }
    }

    /// Draws scenario `index` of this campaign.
    #[must_use]
    pub fn scenario(&self, index: u64) -> FuzzScenario {
        let mut rng = SimRng::new(self.seed).split(0xF522 ^ index);
        let n_tenants = 2 + rng.next_below(3) as usize;
        let tenants: Vec<TenantSource> = (0..n_tenants)
            .map(|_| {
                if rng.chance(0.5) {
                    TenantSource::App(AppId::ALL[rng.next_below(13) as usize])
                } else {
                    TenantSource::Synthetic(synthetic_profile(&mut rng))
                }
            })
            .collect();
        // The draw bound here is frozen at the paper presets (everything
        // before the arena trio): `next_below` maps the same raw word to
        // different values under different bounds, so widening this draw
        // would silently reshuffle every pre-existing campaign. Arena
        // presets enter via a tail override below instead.
        let paper = PolicyPreset::ALL.len() - PolicyPreset::ARENA.len();
        let preset = PolicyPreset::ALL[rng.next_below(paper as u64) as usize];
        let walkers = n_tenants * (1 + rng.next_below(4) as usize);
        let queue_entries = walkers * [4usize, 8, 12, 24][rng.next_below(4) as usize];
        let l2_tlb_entries = [512usize, 1024, 2048][rng.next_below(3) as usize];
        let steps = 400 + rng.next_below(1601) as usize;
        let repartition = if rng.chance(0.35) {
            let n_events = 1 + rng.next_below(2) as usize;
            let mut evs: Vec<RepartitionEvent> = (0..n_events)
                .map(|_| {
                    let step = rng.next_below(steps as u64) as usize;
                    let mut active: Vec<bool> =
                        (0..n_tenants).map(|_| rng.chance(0.6)).collect();
                    if !active.iter().any(|&b| b) {
                        let t = rng.next_below(n_tenants as u64) as usize;
                        active[t] = true;
                    }
                    RepartitionEvent { step, active }
                })
                .collect();
            evs.sort_by_key(|e| e.step);
            evs
        } else {
            Vec::new()
        };
        // Arrival/departure timelines only on repartition-free scenarios:
        // both kinds mutate the same active mask, and keeping them apart
        // makes a shrunk repro's schedule readable. Events stay coherent
        // by construction — depart a resident (never the last one),
        // re-arrive a departed tenant.
        let churn = if repartition.is_empty() && rng.chance(0.4) {
            let n_events = 1 + rng.next_below(4) as usize;
            let mut resident = vec![true; n_tenants];
            let mut evs: Vec<ChurnEvent> = Vec::new();
            let mut steps_at: Vec<usize> = (0..n_events)
                .map(|_| rng.next_below(steps as u64) as usize)
                .collect();
            steps_at.sort_unstable();
            for step in steps_at {
                let departed: Vec<usize> =
                    (0..n_tenants).filter(|&t| !resident[t]).collect();
                let residents: Vec<usize> =
                    (0..n_tenants).filter(|&t| resident[t]).collect();
                let (tenant, depart) = if !departed.is_empty() && rng.chance(0.5) {
                    (departed[rng.next_below(departed.len() as u64) as usize], false)
                } else if residents.len() > 1 {
                    (residents[rng.next_below(residents.len() as u64) as usize], true)
                } else {
                    continue; // sole resident: nothing coherent to do here
                };
                resident[tenant] = !depart;
                evs.push(ChurnEvent {
                    step,
                    tenant,
                    depart,
                });
            }
            evs
        } else {
            Vec::new()
        };
        let faults = rng
            .chance(0.3)
            .then(|| format!("panic=1,budget=1,seed={}", rng.next_below(1000)));
        let seed = rng.next_u64();
        let sms_per_tenant = 1 + rng.next_below(2) as usize;
        let warps_per_sm = 2 + rng.next_below(3) as usize;
        let instructions_per_warp = 150 + rng.next_below(251);
        // Memory-system shape. Drawn after every pre-existing knob so a
        // given campaign seed keeps producing the scenarios it always did,
        // with a randomized memory geometry appended.
        let l2_banks = [4usize, 8, 16][rng.next_below(3) as usize];
        let dram_channels = [2usize, 4, 8, 16][rng.next_below(4) as usize];
        let dram_occupancy = 1 + rng.next_below(12);
        // Policy-arena presets, drawn last for the same stream-stability
        // reason as the memory shape: a quarter of scenarios trade their
        // paper preset for one of the related-work competitors, so a
        // 100-scenario campaign exercises each arena design ~8 times
        // without disturbing the other knobs of any pre-existing seed.
        let preset = if rng.chance(0.25) {
            PolicyPreset::ARENA[rng.next_below(PolicyPreset::ARENA.len() as u64) as usize]
        } else {
            preset
        };
        FuzzScenario {
            label: format!("s{}-{}", self.seed, index),
            seed,
            tenants,
            preset,
            walkers,
            queue_entries,
            l2_tlb_entries,
            l2_banks,
            dram_channels,
            dram_occupancy,
            sms_per_tenant,
            warps_per_sm,
            instructions_per_warp,
            steps,
            repartition,
            churn,
            faults,
            plant: Plant::None,
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle stage 1: scheduler lockstep
// ---------------------------------------------------------------------------

/// One walk subsystem plus the deterministic machinery it dispatches
/// against (the fuzzing twin of the test suite's `SchedSide`).
struct Side {
    ws: WalkSubsystem,
    page_tables: Vec<PageTable>,
    frames: FrameAlloc,
    mem: MemSystem,
    obs: Observer,
    /// Whether the no-consecutive-steal rule is checkable from the outside.
    /// The scheduler conditions it on the *owner's* pending work; after a
    /// repartition a walker's queue can hold the previous owner's draining
    /// walks while the new owner has none pending, making a steal with a
    /// non-empty queue legal — so the external check (which only sees queue
    /// depths) is sound only until the first repartition.
    strict_steals: bool,
}

impl Side {
    fn new(cfg: &GpuConfig, imp: SchedulerImpl) -> Side {
        Side {
            ws: WalkSubsystem::with_scheduler_impl(cfg.walk.clone(), imp),
            page_tables: (0..cfg.walk.n_tenants)
                .map(|t| PageTable::new(TenantId(t as u8), PageSize::Small4K))
                .collect(),
            frames: FrameAlloc::new(),
            mem: MemSystem::new(cfg.mem),
            obs: Observer::off(),
            strict_steals: true,
        }
    }

    fn enqueue(
        &mut self,
        req: WalkRequest,
        now: Cycle,
    ) -> Result<Option<DispatchedWalk>, WalkQueueFull> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue(req, now, &mut ctx)
    }

    fn enqueue_batch(
        &mut self,
        reqs: &[WalkRequest],
        now: Cycle,
        out: &mut Vec<Result<Option<DispatchedWalk>, WalkQueueFull>>,
    ) {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue_batch(reqs, now, &mut ctx, out);
    }

    /// Completes one walk, checking the no-consecutive-steal rule on the
    /// follow-on dispatch.
    fn complete(&mut self, d: DispatchedWalk) -> Result<Option<DispatchedWalk>, String> {
        let pre_depths = self.ws.walker_queue_depths();
        let pre_stolen = self.ws.walker_stolen_bits();
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        let (_, next) = self.ws.on_walker_done(d.walker, d.done_at, &mut ctx);
        if self.strict_steals {
            if let (Some(n), Some(pd), Some(ps)) = (next, pre_depths, pre_stolen) {
                invariants::check_no_consecutive_steal(&self.ws, &pd, &ps, n.walker.index())?;
            }
        }
        Ok(next)
    }
}

/// Drives the optimized (batched) and reference (scalar) schedulers in
/// lockstep through the scenario's traffic, repartition schedule, and
/// invariant checks. Returns the lockstep slice of [`OracleStats`].
fn lockstep(sc: &FuzzScenario, cfg: &GpuConfig) -> Result<OracleStats, Divergence> {
    let div = |detail: String| Divergence {
        stage: "lockstep",
        detail,
    };
    let n_tenants = sc.tenants.len();
    let mut a = Side::new(cfg, SchedulerImpl::Optimized);
    let mut b = Side::new(cfg, SchedulerImpl::Reference);
    // The memory-batch twin: a batched and a scalar `MemSystem` on the
    // scenario's randomized L2-bank/DRAM-channel shape, fed identical line
    // bursts each step. The grouped per-bank/per-channel pass must match
    // the scalar replay request for request, and the full timing state
    // (hit counters, bank free cycles, channel free cycles) must stay
    // equal — the fuzzing twin of `tests/batch_differential.rs`.
    let mut mem_batched = MemSystem::new(cfg.mem);
    let mut mem_scalar = MemSystem::new(cfg.mem);
    let mut mem_rng = SimRng::new(sc.seed).split(0x3E3);
    let mut mem_lines: Vec<LineAddr> = Vec::new();
    let mut mem_out: Vec<Access> = Vec::new();
    let mut mem_refs = 0u64;
    let mut rng = SimRng::new(sc.seed).split(0x10C5);
    // Per-scenario pacing: a small stride saturates the queues (exercising
    // rejection and backpressure), a large one drains them (exercising
    // idle-walker stealing). Drawing it per scenario covers both regimes.
    let stride_max = 4 + rng.next_below(80);
    let mut now = Cycle::ZERO;
    let mut attempts_a = 0u64;
    let mut attempts_b = 0u64;
    let mut batched = 0u64;
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();
    let mut burst: Vec<WalkRequest> = Vec::new();
    let mut batch_out = Vec::new();
    let mut next_repart = 0usize;
    let mut next_churn = 0usize;
    let mut cancelled = 0u64;
    let mut repartitioned = false;
    // A departed (inactive) tenant owns no walkers and sends no more
    // requests — traffic only targets active tenants, like production.
    let mut active_mask = vec![true; n_tenants];

    for step in 0..sc.steps {
        now += 1 + rng.next_below(stride_max);

        while next_repart < sc.repartition.len() && sc.repartition[next_repart].step <= step {
            let active = &sc.repartition[next_repart].active;
            // Repartitioning while walks are in flight is the production
            // contract (tenants arrive and depart mid-run); both sides see
            // the same schedule. No-op for non-partitioned policies.
            a.ws.set_active_tenants(active);
            b.ws.set_active_tenants(active);
            active_mask.clone_from(active);
            next_repart += 1;
            repartitioned = true;
            a.strict_steals = false;
            b.strict_steals = false;
        }

        while next_churn < sc.churn.len() && sc.churn[next_churn].step <= step {
            let e = sc.churn[next_churn];
            if e.depart {
                // The production departure sequence: cancel the tenant's
                // queued walks (the shootdown), then repartition. Both
                // sides must shed the same number of walks.
                let ca = a.ws.cancel_tenant(TenantId(e.tenant as u8));
                let cb = b.ws.cancel_tenant(TenantId(e.tenant as u8));
                if ca != cb {
                    return Err(div(format!(
                        "step {step}: departure of tenant {} cancelled {ca} vs {cb} walks",
                        e.tenant
                    )));
                }
                cancelled += ca;
            }
            active_mask[e.tenant] = !e.depart;
            a.ws.set_active_tenants(&active_mask);
            b.ws.set_active_tenants(&active_mask);
            next_churn += 1;
            repartitioned = true;
            a.strict_steals = false;
            b.strict_steals = false;
        }

        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let na = a.complete(d).map_err(&div)?;
            let nb = b.complete(d).map_err(&div)?;
            if na != nb {
                return Err(div(format!(
                    "step {step}: follow-on dispatch diverged: {na:?} vs {nb:?}"
                )));
            }
            if let Some(n) = na {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }

        // Solo phases starve every tenant but one, so the others'
        // PEND_WALKS reach zero — the only state DWS steals from.
        let solo_phase = (step / 400) % 2 == 1;
        let active: Vec<u8> = (0..n_tenants as u8)
            .filter(|&t| active_mask[t as usize])
            .collect();
        burst.clear();
        for _ in 0..rng.next_below(5) {
            let t = if solo_phase {
                TenantId(active[0])
            } else {
                TenantId(active[rng.next_below(active.len() as u64) as usize])
            };
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_000));
            burst.push(WalkRequest { tenant: t, vpn });
        }
        attempts_a += burst.len() as u64;
        batched += burst.len() as u64;
        a.enqueue_batch(&burst, now, &mut batch_out);

        // The planted bug: the reference shim drops the last request of
        // every fifth step's burst. Attempt accounting on the reference
        // side breaks, which the invariant check below must catch.
        let b_take = if sc.plant == Plant::DropReferenceEnqueues
            && step % 5 == 0
            && !burst.is_empty()
        {
            burst.len() - 1
        } else {
            burst.len()
        };
        attempts_b += burst.len() as u64;
        for (i, (&req, ra)) in burst.iter().zip(&batch_out).enumerate() {
            if i >= b_take {
                break;
            }
            let rb = b.enqueue(req, now);
            if *ra != rb {
                return Err(div(format!(
                    "step {step}: enqueue decision {i} diverged: {ra:?} vs {rb:?}"
                )));
            }
            if let Ok(Some(d)) = *ra {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }

        // Drive the memory twin at this step's cycle: a burst from a
        // 96-line window per tenant, narrow enough that bank and channel
        // conflicts are routine, mixing data and page-table traffic.
        mem_lines.clear();
        // Mostly warp-width bursts; every eighth step goes wider than the
        // grouped-pass threshold so both batch strategies are fuzzed.
        let mem_width = if step % 8 == 0 {
            MemSystem::GROUPED_MIN as u64 + mem_rng.next_below(24)
        } else {
            1 + mem_rng.next_below(12)
        };
        for _ in 0..mem_width {
            let t = mem_rng.next_below(n_tenants as u64);
            mem_lines.push(LineAddr((t << 10) | mem_rng.next_below(96)));
        }
        let kind = match mem_rng.next_below(5) {
            0 => AccessKind::PageTable,
            1 => AccessKind::PageTableBypass,
            _ => AccessKind::Data,
        };
        mem_out.clear();
        mem_batched.access_batch(&mem_lines, now, kind, &mut mem_out);
        for (i, (&line, batched)) in mem_lines.iter().zip(&mem_out).enumerate() {
            let scalar = mem_scalar.access(line, now, kind);
            if *batched != scalar {
                return Err(div(format!(
                    "step {step}: memory batch request {i} ({line:?}, {kind:?}) \
                     diverged: {batched:?} vs {scalar:?}"
                )));
            }
        }
        mem_refs += mem_lines.len() as u64;
        if mem_batched.stats() != mem_scalar.stats()
            || mem_batched.bank_free() != mem_scalar.bank_free()
            || mem_batched.dram().next_free() != mem_scalar.dram().next_free()
        {
            return Err(div(format!(
                "step {step}: memory batch timing state diverged from the scalar replay"
            )));
        }

        // The full ownership decomposition is only valid while walker
        // ownership has been stable since the walks queued; once a
        // repartition fires, a departing tenant's queued walks drain from
        // walkers now owned by someone else, so only the accounting subset
        // holds (the cross-implementation agreement below is unaffected).
        let check: fn(&WalkSubsystem, u64, &str) -> Result<(), String> = if repartitioned {
            invariants::check_accounting
        } else {
            invariants::check_scheduler
        };
        check(&a.ws, attempts_a, &format!("optimized step {step}")).map_err(&div)?;
        check(&b.ws, attempts_b, &format!("reference step {step}")).map_err(&div)?;
        invariants::check_views_agree(&a.ws, &b.ws, &format!("step {step}")).map_err(&div)?;
    }

    // Drain and check the terminal state conserves everything.
    while let Some(d) = outstanding.first().copied() {
        outstanding.remove(0);
        let na = a.complete(d).map_err(&div)?;
        let nb = b.complete(d).map_err(&div)?;
        if na != nb {
            return Err(div(format!("drain dispatch diverged: {na:?} vs {nb:?}")));
        }
        if let Some(n) = na {
            let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
            outstanding.insert(pos, n);
        }
    }
    invariants::check_drained(&a.ws, attempts_a, "optimized terminal").map_err(&div)?;
    invariants::check_drained(&b.ws, attempts_b, "reference terminal").map_err(&div)?;
    invariants::check_views_agree(&a.ws, &b.ws, "terminal").map_err(&div)?;

    let stats = a.ws.stats();
    Ok(OracleStats {
        steals: stats.stolen.iter().sum(),
        rejected: stats.rejected.iter().sum(),
        cancelled,
        batched,
        mem_refs,
        ..OracleStats::default()
    })
}

// ---------------------------------------------------------------------------
// Oracle stages 2+3: end-to-end simulation and trace replay
// ---------------------------------------------------------------------------

/// An `io::Write` sink shared with a [`JsonlTracer`], so the trace stage
/// needs no filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn builder_for(sc: &FuzzScenario) -> SimulationBuilder {
    SimulationBuilder::new()
        .config(sc.base_config())
        .tenants(sc.tenants.iter().map(TenantSource::spec))
        .preset(sc.preset)
        .seed(sc.seed)
        .budget(RunBudget::unlimited().with_max_events(EVENT_CAP))
}

/// Runs the end-to-end simulation (stage 2) and, when it completes within
/// budget, the trace-replay self-check (stage 3): the same simulation with
/// a JSONL tracer attached must produce a bit-identical result, and the
/// per-tenant stats replayed *from the trace alone* must match the
/// simulator's own counters bit for bit.
fn simulate_and_replay(sc: &FuzzScenario) -> Result<(u64, bool), Divergence> {
    let untraced = match builder_for(sc).run() {
        Ok(r) => r,
        Err(SimError::BudgetExceeded { .. }) => return Ok((EVENT_CAP, true)),
        Err(e) => {
            return Err(Divergence {
                stage: "simulate",
                detail: format!("end-to-end run rejected: {e}"),
            })
        }
    };
    for (t, tr) in untraced.tenants.iter().enumerate() {
        if tr.completed_executions == 0 || tr.instructions == 0 {
            return Err(Divergence {
                stage: "simulate",
                detail: format!("tenant {t} retired nothing (completed_executions == 0)"),
            });
        }
    }

    let buf = SharedBuf::default();
    let traced = builder_for(sc)
        .tracer(JsonlTracer::new(buf.clone()))
        .run();
    let traced = match traced {
        Ok(r) => r,
        Err(e) => {
            return Err(Divergence {
                stage: "trace",
                detail: format!("traced rerun failed where untraced succeeded: {e}"),
            })
        }
    };
    if traced != untraced {
        return Err(Divergence {
            stage: "trace",
            detail: "traced result differs from untraced result".into(),
        });
    }

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).map_err(|e| Divergence {
        stage: "trace",
        detail: format!("trace is not UTF-8: {e}"),
    })?;
    let replayed = crate::timeline::parse_trace(&text)
        .and_then(|evs| crate::timeline::replay(&evs))
        .map_err(|e| Divergence {
            stage: "trace",
            detail: format!("trace replay failed: {e}"),
        })?;
    for (t, rep) in replayed.tenants.iter().enumerate() {
        let sim = &untraced.tenants[t];
        for (what, got, want) in [
            ("pw_share", rep.pw_share, sim.pw_share),
            ("stolen_fraction", rep.stolen_fraction, sim.stolen_fraction),
            ("mean_interleave", rep.mean_interleave, sim.mean_interleave),
            ("mean_walk_latency", rep.mean_latency, sim.mean_walk_latency),
        ] {
            if got.to_bits() != want.to_bits() {
                return Err(Divergence {
                    stage: "trace",
                    detail: format!("tenant {t} {what}: replayed {got} != simulated {want}"),
                });
            }
        }
    }
    Ok((untraced.events, false))
}

// ---------------------------------------------------------------------------
// Oracle stage 4: fault-injection equivalence
// ---------------------------------------------------------------------------

/// Runs the scenario's config through the parallel engine twice — once
/// clean, once under the scenario's fault schedule — and requires the two
/// result stores to be byte-identical (injected faults fire only on a
/// job's first attempt; the bounded retry must fully recover). Jobs run the
/// tenants' *labeling* apps (the `Job` plumbing is `AppId`-based), so this
/// stage exercises fault isolation on the scenario's hardware config.
fn fault_equivalence(sc: &FuzzScenario, cfg: &GpuConfig) -> Result<usize, Divergence> {
    let Some(spec_text) = &sc.faults else {
        return Ok(0);
    };
    let apps: Vec<AppId> = sc.tenants.iter().map(TenantSource::app).collect();
    let jobs: Vec<Job> = (0..3)
        .map(|k| Job {
            key: ExpKey::custom_mix(&format!("fuzz-{k}"), &apps, "fuzz", sc.seed ^ k),
            cfg: cfg.clone(),
            apps: apps.clone(),
            seed: sc.seed ^ k,
            scenario: None,
        })
        .collect();
    let opts_clean = RunOptions {
        verbose: false,
        budget: RunBudget::unlimited().with_max_events(EVENT_CAP),
        faults: Vec::new(),
    };
    let mut spec = FaultSpec::parse(spec_text).map_err(|e| Divergence {
        stage: "faults",
        detail: e,
    })?;
    let opts_faulted = RunOptions {
        faults: spec.take_plan(jobs.len()),
        ..opts_clean.clone()
    };

    let mut clean = Store::in_memory();
    run_jobs(&mut clean, &jobs, 1, &opts_clean);
    let mut faulted = Store::in_memory();
    run_jobs(&mut faulted, &jobs, 1, &opts_faulted);

    for job in &jobs {
        let c = clean.lookup(&job.key).map(|r| r.to_json().dump());
        let f = faulted.lookup(&job.key).map(|r| r.to_json().dump());
        if c != f {
            return Err(Divergence {
                stage: "faults",
                detail: format!(
                    "{}: faulted result differs from clean (present: clean={} faulted={})",
                    job.key,
                    c.is_some(),
                    f.is_some()
                ),
            });
        }
    }
    Ok(jobs.len())
}

/// Runs one scenario through the full oracle stack. `Ok` carries the
/// non-vacuousness stats; `Err` carries the first divergence.
///
/// # Errors
///
/// Returns the first [`Divergence`] any oracle stage detects.
pub fn run_oracles(sc: &FuzzScenario) -> Result<OracleStats, Divergence> {
    let cfg = sc.config().map_err(|e| Divergence {
        stage: "config",
        detail: format!("scenario configuration rejected: {e}"),
    })?;
    let mut stats = lockstep(sc, &cfg)?;
    let (events, truncated) = simulate_and_replay(sc)?;
    stats.sim_events = events;
    stats.truncated = truncated;
    stats.fault_jobs = fault_equivalence(sc, &cfg)?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// One round of shrink candidates, most aggressive first. Every candidate
/// is structurally valid by construction (tenant/walker divisibility,
/// repartition masks re-fitted).
fn candidates(sc: &FuzzScenario) -> Vec<FuzzScenario> {
    let mut out = Vec::new();

    // Drop whole tenants (keep at least two — this is a multi-tenancy
    // simulator; the interesting bugs need a neighbor).
    if sc.tenants.len() > 2 {
        for drop in 0..sc.tenants.len() {
            let mut c = sc.clone();
            c.tenants.remove(drop);
            let n = c.tenants.len();
            c.walkers = (c.walkers - c.walkers % n).max(n);
            c.repartition.retain_mut(|e| {
                e.active.remove(drop);
                e.active.iter().any(|&b| b)
            });
            // The dropped tenant's arrivals/departures go with it; the
            // survivors' events shift down one index.
            c.churn.retain(|e| e.tenant != drop);
            for e in &mut c.churn {
                if e.tenant > drop {
                    e.tenant -= 1;
                }
            }
            // Removing a tenant can leave a timeline that departs every
            // survivor — such a candidate cannot run.
            if check_timeline(n, &c.repartition, &c.churn).is_ok() {
                out.push(c);
            }
        }
    }

    // Shorten the run. (Truncating the schedules keeps a prefix of each
    // tenant's arrive/depart alternation, so the timeline stays coherent.)
    if sc.steps > 25 {
        let mut c = sc.clone();
        c.steps /= 2;
        c.repartition.retain(|e| e.step < c.steps);
        c.churn.retain(|e| e.step < c.steps);
        out.push(c);
    }

    // Drop schedule entries and the fault schedule.
    for drop in 0..sc.repartition.len() {
        let mut c = sc.clone();
        c.repartition.remove(drop);
        out.push(c);
    }
    for drop in 0..sc.churn.len() {
        let mut c = sc.clone();
        c.churn.remove(drop);
        // Dropping one event can break the alternation in a way that
        // departs everyone (e.g. losing the re-arrival between two
        // departures); skip candidates that cannot run.
        if check_timeline(c.tenants.len(), &c.repartition, &c.churn).is_ok() {
            out.push(c);
        }
    }
    if sc.faults.is_some() {
        let mut c = sc.clone();
        c.faults = None;
        out.push(c);
    }

    // Simplify tenants: calibrated instead of synthetic, then halved
    // footprints and disabled storms.
    for (i, t) in sc.tenants.iter().enumerate() {
        if let TenantSource::Synthetic(p) = t {
            let mut c = sc.clone();
            c.tenants[i] = TenantSource::App(p.id);
            out.push(c);

            let mut shrunk = *p;
            shrunk.cold_pages = (shrunk.cold_pages / 2).max(1);
            shrunk.warm_pages /= 2;
            shrunk.hot_pages = (shrunk.hot_pages / 2).max(1);
            if shrunk != *p {
                let mut c = sc.clone();
                c.tenants[i] = TenantSource::Synthetic(shrunk);
                out.push(c);
            }
            if p.storm_every_ops > 0 {
                let mut calm = *p;
                calm.storm_every_ops = 0;
                calm.storm_ops = 0;
                calm.storm_cold_prob = 0.0;
                let mut c = sc.clone();
                c.tenants[i] = TenantSource::Synthetic(calm);
                out.push(c);
            }
        }
    }

    // Simplify the hardware, one knob at a time.
    let n = sc.tenants.len();
    for (want_walkers, want_queue, want_tlb, want_sms, want_warps, want_instr) in [(
        n,
        n * 4,
        512,
        1,
        2,
        150,
    )] {
        if sc.walkers > want_walkers {
            let mut c = sc.clone();
            c.walkers = want_walkers;
            c.queue_entries = c.queue_entries.min(want_walkers * 24).max(want_walkers * 4);
            out.push(c);
        }
        if sc.queue_entries > want_queue && want_queue >= sc.walkers {
            let mut c = sc.clone();
            c.queue_entries = want_queue;
            out.push(c);
        }
        if sc.l2_tlb_entries > want_tlb {
            let mut c = sc.clone();
            c.l2_tlb_entries = want_tlb;
            out.push(c);
        }
        if sc.sms_per_tenant > want_sms {
            let mut c = sc.clone();
            c.sms_per_tenant = want_sms;
            out.push(c);
        }
        if sc.warps_per_sm > want_warps {
            let mut c = sc.clone();
            c.warps_per_sm = want_warps;
            out.push(c);
        }
        if sc.instructions_per_warp > want_instr {
            let mut c = sc.clone();
            c.instructions_per_warp = want_instr;
            out.push(c);
        }
    }

    out
}

/// Delta-debugging shrink: starting from a scenario known to fail, greedily
/// applies the first simplification that still fails, restarting the pass
/// after every success, until a fixpoint or `max_evals` oracle runs.
/// Returns the minimal failing scenario, its divergence, and the number of
/// oracle evaluations spent.
///
/// # Panics
///
/// Panics if `sc` does not fail the oracle (shrinking a passing scenario is
/// a caller bug).
#[must_use]
pub fn shrink(sc: &FuzzScenario, max_evals: usize) -> (FuzzScenario, Divergence, usize) {
    let mut best = sc.clone();
    let mut divergence = match run_oracles(&best) {
        Err(d) => d,
        Ok(_) => panic!("shrink called on a scenario that passes the oracle"),
    };
    let mut evals = 1usize;
    'passes: loop {
        for mut cand in candidates(&best) {
            if evals >= max_evals {
                break 'passes;
            }
            cand.label = best.label.clone();
            evals += 1;
            if let Err(d) = run_oracles(&cand) {
                best = cand;
                divergence = d;
                continue 'passes; // restart candidate generation from the smaller scenario
            }
        }
        break;
    }
    best.label = format!("{}-min", sc.label);
    (best, divergence, evals)
}

// ---------------------------------------------------------------------------
// Repro files and the campaign driver
// ---------------------------------------------------------------------------

/// Writes `sc` as a self-contained repro file under `dir` (created if
/// missing). Returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_repro(dir: &Path, sc: &FuzzScenario) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{}.json", sc.label));
    fs::write(&path, format!("{}\n", sc.to_json().pretty()))?;
    Ok(path)
}

/// Loads a scenario from a repro (or corpus) file.
///
/// # Errors
///
/// Returns a description of the I/O, JSON, or validation failure.
pub fn load_repro(path: &Path) -> Result<FuzzScenario, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    FuzzScenario::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
}

/// Which preset × regime cells a campaign actually exercised (ROADMAP
/// item 5's coverage signal). A cell is one [`PolicyPreset`] crossed with
/// the scenario's dynamic regime — `"{n}T/static"`, `"{n}T/churn"`, or
/// `"{n}T/repart"` — so a clean campaign can still be flagged as vacuous
/// when whole designs or regimes were never drawn.
#[derive(Debug, Default)]
pub struct Coverage {
    cells: BTreeMap<(String, String), u64>,
}

impl Coverage {
    /// Records one scenario (clean or diverged — it ran either way).
    pub fn record(&mut self, sc: &FuzzScenario) {
        let regime = format!(
            "{}T/{}",
            sc.tenants.len(),
            if !sc.churn.is_empty() {
                "churn"
            } else if !sc.repartition.is_empty() {
                "repart"
            } else {
                "static"
            }
        );
        *self
            .cells
            .entry((sc.preset.label().to_string(), regime))
            .or_insert(0) += 1;
    }

    /// Every `(preset label, regime, scenario count)` cell hit, sorted.
    #[must_use]
    pub fn cells(&self) -> Vec<(&str, &str, u64)> {
        self.cells
            .iter()
            .map(|((p, r), &n)| (p.as_str(), r.as_str(), n))
            .collect()
    }

    /// Distinct presets exercised at least once.
    #[must_use]
    pub fn presets_hit(&self) -> usize {
        let mut seen: Vec<&str> = self.cells.keys().map(|(p, _)| p.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Presets (by label) never drawn by this campaign.
    #[must_use]
    pub fn missing_presets(&self) -> Vec<&'static str> {
        PolicyPreset::ALL
            .iter()
            .map(|p| p.label())
            .filter(|l| !self.cells.keys().any(|(p, _)| p == l))
            .collect()
    }

    /// One-line summary for the campaign report, e.g.
    /// `coverage: 9/14 presets, 21 preset×regime cells (missing: MOSAIC, …)`.
    #[must_use]
    pub fn summary(&self) -> String {
        let missing = self.missing_presets();
        let suffix = if missing.is_empty() {
            String::new()
        } else {
            format!(" (missing: {})", missing.join(", "))
        };
        format!(
            "coverage: {}/{} presets, {} preset\u{d7}regime cells{suffix}",
            self.presets_hit(),
            PolicyPreset::ALL.len(),
            self.cells.len(),
        )
    }
}

/// Campaign configuration (`repro --fuzz …`).
pub struct CampaignOptions {
    /// Generated scenarios to run (after the corpus replays).
    pub count: usize,
    /// Campaign seed (`--fuzz-seed`; the default is 42).
    pub seed: u64,
    /// Wall-clock budget (`--fuzz-budget-ms`); `None` = run everything.
    pub budget: Option<Duration>,
    /// Regression corpus directory, replayed before generation
    /// (`results/fuzz/`; missing directory = empty corpus).
    pub corpus_dir: PathBuf,
    /// Where divergence repros are written (`results/fuzz/repros/`).
    pub repro_dir: PathBuf,
    /// Progress lines on stderr.
    pub verbose: bool,
    /// Oracle-evaluation cap for the shrinker.
    pub shrink_evals: usize,
}

impl CampaignOptions {
    /// The `repro --fuzz N` defaults: seed 42, no wall-clock budget,
    /// corpus in `results/fuzz/`, repros in `results/fuzz/repros/`.
    #[must_use]
    pub fn new(count: usize) -> Self {
        CampaignOptions {
            count,
            seed: 42,
            budget: None,
            corpus_dir: PathBuf::from("results/fuzz"),
            repro_dir: PathBuf::from("results/fuzz/repros"),
            verbose: false,
            shrink_evals: 120,
        }
    }
}

/// What a campaign did.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Corpus scenarios replayed clean.
    pub corpus_replayed: usize,
    /// Generated scenarios run clean.
    pub generated: usize,
    /// The campaign stopped early on wall-clock budget.
    pub out_of_budget: bool,
    /// Lockstep steals observed across all clean scenarios (non-vacuity).
    pub total_steals: u64,
    /// The divergence, if one was found: the *shrunk* scenario, what
    /// diverged, and the repro file written for it.
    pub divergence: Option<(FuzzScenario, Divergence, PathBuf)>,
    /// Preset × regime cells exercised (corpus and generated scenarios).
    pub coverage: Coverage,
}

/// Runs a fuzz campaign: replay the corpus, then generate-and-check up to
/// `opts.count` scenarios, shrinking and serializing the first divergence.
///
/// # Errors
///
/// Returns an error string for environment failures (unreadable corpus
/// file, unwritable repro directory) — *not* for divergences, which are
/// reported in the outcome.
pub fn run_campaign(opts: &CampaignOptions) -> Result<CampaignOutcome, String> {
    let started = Instant::now();
    let out_of_budget =
        |started: &Instant| opts.budget.is_some_and(|b| started.elapsed() >= b);
    let mut outcome = CampaignOutcome::default();

    let diverged = |sc: &FuzzScenario, d: Divergence, outcome: &mut CampaignOutcome| {
        eprintln!("fuzz: {} DIVERGED: {d}", sc.label);
        let (min, min_div, evals) = shrink(sc, opts.shrink_evals);
        eprintln!(
            "fuzz: shrunk to {} tenants / {} steps in {evals} oracle runs: {min_div}",
            min.tenants.len(),
            min.steps
        );
        let path = write_repro(&opts.repro_dir, &min)
            .map_err(|e| format!("writing repro: {e}"))?;
        outcome.divergence = Some((min, min_div, path));
        Ok::<(), String>(())
    };

    // Corpus regression scenarios first, in sorted-name order.
    let mut corpus: Vec<PathBuf> = fs::read_dir(&opts.corpus_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    corpus.sort();
    for path in corpus {
        let sc = load_repro(&path)?;
        if opts.verbose {
            eprintln!("fuzz: corpus {}", path.display());
        }
        outcome.coverage.record(&sc);
        match run_oracles(&sc) {
            Ok(stats) => {
                outcome.corpus_replayed += 1;
                outcome.total_steals += stats.steals;
            }
            Err(d) => {
                diverged(&sc, d, &mut outcome)?;
                return Ok(outcome);
            }
        }
        if out_of_budget(&started) {
            outcome.out_of_budget = true;
            return Ok(outcome);
        }
    }

    let gen = FuzzGen::new(opts.seed);
    for i in 0..opts.count as u64 {
        if out_of_budget(&started) {
            outcome.out_of_budget = true;
            break;
        }
        let sc = gen.scenario(i);
        if opts.verbose {
            eprintln!(
                "fuzz: {} — {} tenants, {}, {} walkers, {} steps{}{}",
                sc.label,
                sc.tenants.len(),
                sc.preset.label(),
                sc.walkers,
                sc.steps,
                if sc.repartition.is_empty() { "" } else { ", repartition" },
                if sc.faults.is_some() { ", faults" } else { "" },
            );
        }
        outcome.coverage.record(&sc);
        match run_oracles(&sc) {
            Ok(stats) => {
                outcome.generated += 1;
                outcome.total_steals += stats.steals;
            }
            Err(d) => {
                diverged(&sc, d, &mut outcome)?;
                return Ok(outcome);
            }
        }
    }
    Ok(outcome)
}
