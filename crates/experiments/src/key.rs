//! Typed experiment cache keys.
//!
//! The store used to be keyed on `format!`-built strings, which put a heap
//! allocation and a formatting pass on every cache lookup — measurable once
//! the experiment engine started replaying thousands of lookups per suite.
//! [`ExpKey`] is a plain value type (hashable without formatting); rendering
//! to the legacy string form now happens only when naming a cache file on
//! disk or printing progress, and produces exactly the strings the old keys
//! used, so existing on-disk caches remain valid.

use std::fmt;

use walksteal_multitenant::PolicyPreset;
use walksteal_workloads::{AppId, WorkloadPair};

/// Maximum tenants any experiment runs (Fig. 13's four-tenant combos).
pub const MAX_APPS: usize = 4;

/// What kind of run a key names (and the non-app parameters of that run).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// A two-tenant pair under a policy preset at the scale's base config.
    Pair(PolicyPreset),
    /// A mix (2..=[`MAX_APPS`] tenants) under a custom config; the label
    /// must uniquely describe the tweaks (e.g. `"f12|2048e|DWS"`).
    /// Two-tenant keys render with the legacy `pairx|` prefix, larger
    /// mixes with `mixx|`.
    Custom(String),
    /// A stand-alone baseline run on `sms` SMs with the tripled budget.
    Solo {
        /// SMs the lone tenant runs on.
        sms: usize,
    },
    /// A three-or-more-tenant combination under a preset (Fig. 13).
    Multi(PolicyPreset),
}

/// One simulation's identity: what ran, on what, at which scale and seed.
///
/// # Examples
///
/// ```
/// use walksteal_experiments::key::ExpKey;
/// use walksteal_multitenant::PolicyPreset;
/// use walksteal_workloads::{AppId, WorkloadPair};
///
/// let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
/// let key = ExpKey::pair(PolicyPreset::Dws, pair, "quick", 42);
/// assert_eq!(key.to_string(), "pair|DWS|GUPS.MM|quick|s42");
/// assert_eq!(key.apps(), [AppId::Gups, AppId::Mm]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExpKey {
    /// Run kind and its non-app parameters.
    pub kind: KeyKind,
    /// The tenants' applications, in tenant order (`MAX_APPS` capacity).
    apps: [Option<AppId>; MAX_APPS],
    /// The scale label (see [`Scale::label`](crate::Scale::label)).
    pub scale: &'static str,
    /// The base workload seed.
    pub seed: u64,
}

impl ExpKey {
    fn pack(kind: KeyKind, apps: &[AppId], scale: &'static str, seed: u64) -> Self {
        assert!(apps.len() <= MAX_APPS, "at most {MAX_APPS} tenants");
        let mut packed = [None; MAX_APPS];
        for (slot, &app) in packed.iter_mut().zip(apps) {
            *slot = Some(app);
        }
        ExpKey {
            kind,
            apps: packed,
            scale,
            seed,
        }
    }

    /// Key of a preset pair run.
    #[must_use]
    pub fn pair(preset: PolicyPreset, pair: WorkloadPair, scale: &'static str, seed: u64) -> Self {
        Self::pack(KeyKind::Pair(preset), &pair.apps(), scale, seed)
    }

    /// Key of a custom-config pair run.
    #[must_use]
    pub fn custom(label: &str, pair: WorkloadPair, scale: &'static str, seed: u64) -> Self {
        Self::pack(KeyKind::Custom(label.to_owned()), &pair.apps(), scale, seed)
    }

    /// Key of a custom-config N-tenant mix run; identical to
    /// [`custom`](Self::custom) for two apps.
    #[must_use]
    pub fn custom_mix(label: &str, apps: &[AppId], scale: &'static str, seed: u64) -> Self {
        Self::pack(KeyKind::Custom(label.to_owned()), apps, scale, seed)
    }

    /// Key of a stand-alone run.
    #[must_use]
    pub fn solo(app: AppId, sms: usize, scale: &'static str, seed: u64) -> Self {
        Self::pack(KeyKind::Solo { sms }, &[app], scale, seed)
    }

    /// Key of a multi-tenant (3+) combination run.
    #[must_use]
    pub fn multi(preset: PolicyPreset, combo: &[AppId], scale: &'static str, seed: u64) -> Self {
        Self::pack(KeyKind::Multi(preset), combo, scale, seed)
    }

    /// The tenants' applications, in tenant order.
    #[must_use]
    pub fn apps(&self) -> Vec<AppId> {
        self.apps.iter().copied().flatten().collect()
    }

    fn write_apps(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, app) in self.apps.iter().flatten().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{app}")?;
        }
        Ok(())
    }
}

/// Renders the legacy string key (also the disk-cache identity).
impl fmt::Display for ExpKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            KeyKind::Pair(preset) => write!(f, "pair|{}|", preset.label())?,
            KeyKind::Custom(label) => {
                // Two-tenant custom keys keep the historical `pairx|`
                // prefix so existing on-disk caches stay valid; larger
                // mixes get their own prefix.
                let prefix = if self.apps.iter().flatten().count() == 2 {
                    "pairx"
                } else {
                    "mixx"
                };
                write!(f, "{prefix}|{label}|")?;
            }
            KeyKind::Solo { sms } => {
                let app = self.apps[0].expect("solo key has an app");
                return write!(f, "solo|{app}|{sms}sms|{}|s{}", self.scale, self.seed);
            }
            KeyKind::Multi(preset) => write!(f, "multi|{}|", preset.label())?,
        }
        self.write_apps(f)?;
        write!(f, "|{}|s{}", self.scale, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gups_mm() -> WorkloadPair {
        WorkloadPair::new(AppId::Gups, AppId::Mm)
    }

    #[test]
    fn renders_legacy_pair_string() {
        let k = ExpKey::pair(PolicyPreset::DwsPlusPlus, gups_mm(), "paper", 42);
        assert_eq!(k.to_string(), "pair|DWS++|GUPS.MM|paper|s42");
    }

    #[test]
    fn renders_legacy_custom_string() {
        let k = ExpKey::custom("f14|DWS", gups_mm(), "quick", 7);
        assert_eq!(k.to_string(), "pairx|f14|DWS|GUPS.MM|quick|s7");
    }

    #[test]
    fn renders_legacy_solo_string() {
        let k = ExpKey::solo(AppId::Tds, 15, "paper", 42);
        assert_eq!(k.to_string(), "solo|3DS|15sms|paper|s42");
    }

    #[test]
    fn renders_legacy_multi_string() {
        let combo = [AppId::Gups, AppId::Tds, AppId::Mm, AppId::Hs];
        let k = ExpKey::multi(PolicyPreset::Dws, &combo, "quick", 42);
        assert_eq!(k.to_string(), "multi|DWS|GUPS.3DS.MM.HS|quick|s42");
        assert_eq!(k.apps(), combo);
    }

    #[test]
    fn custom_mix_renders_pairx_for_two_apps_and_mixx_beyond() {
        let two = ExpKey::custom_mix("sens|ptw8|DWS", &[AppId::Gups, AppId::Mm], "quick", 42);
        assert_eq!(two.to_string(), "pairx|sens|ptw8|DWS|GUPS.MM|quick|s42");
        assert_eq!(
            two,
            ExpKey::custom("sens|ptw8|DWS", gups_mm(), "quick", 42),
            "two-app custom_mix must alias custom"
        );
        let three = ExpKey::custom_mix(
            "sens|ptw9|DWS",
            &[AppId::Gups, AppId::Tds, AppId::Mm],
            "quick",
            42,
        );
        assert_eq!(three.to_string(), "mixx|sens|ptw9|DWS|GUPS.3DS.MM|quick|s42");
    }

    #[test]
    fn distinct_parameters_are_distinct_keys() {
        let a = ExpKey::pair(PolicyPreset::Dws, gups_mm(), "paper", 42);
        assert_ne!(a, ExpKey::pair(PolicyPreset::Baseline, gups_mm(), "paper", 42));
        assert_ne!(a, ExpKey::pair(PolicyPreset::Dws, gups_mm(), "quick", 42));
        assert_ne!(a, ExpKey::pair(PolicyPreset::Dws, gups_mm(), "paper", 43));
        let flipped = WorkloadPair::new(AppId::Mm, AppId::Gups);
        assert_ne!(a, ExpKey::pair(PolicyPreset::Dws, flipped, "paper", 42));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_apps_panics() {
        let five = [AppId::Mm; 5];
        let _ = ExpKey::multi(PolicyPreset::Dws, &five, "quick", 1);
    }
}
