//! Experiment runners that regenerate every table and figure of the
//! paper's evaluation (§IV and §VII).
//!
//! Each `fig*` / `tab*` function in [`suite`] reproduces one result:
//!
//! | Function | Paper result |
//! | --- | --- |
//! | [`suite::fig2`] | Fig. 2 — total IPC: Baseline / S-TLB / S-(TLB+PTW) |
//! | [`suite::fig3`] | Fig. 3 — weighted IPC for the same configurations |
//! | [`suite::tab3`] | Table III — baseline page-walk interleaving |
//! | [`suite::doubling`] | §IV — 2× resources vs. S-(TLB+PTW) |
//! | [`suite::fig5`] | Fig. 5 — throughput: Baseline / DWS / DWS++ |
//! | [`suite::fig6`] | Fig. 6 — fairness: Baseline / DWS / DWS++ |
//! | [`suite::fig7`] | Fig. 7 — weighted IPC: Baseline / DWS / DWS++ |
//! | [`suite::tab5`] | Table V — interleaving under DWS / DWS++ |
//! | [`suite::tab6`] | Table VI — % of walks serviced by stealing |
//! | [`suite::fig8`] | Fig. 8 — normalized walk latency per class |
//! | [`suite::fig9`] | Fig. 9 — PW-share ↔ TLB-share coupling |
//! | [`suite::fig10`] | Fig. 10 — DWS++ fairness/throughput knob |
//! | [`suite::fig11`] | Fig. 11 — vs. Static / MASK / MASK+DWS |
//! | [`suite::fig12`] | Fig. 12 — TLB-size / walker-count sensitivity |
//! | [`suite::fig13`] | Fig. 13 — three and four tenants |
//! | [`suite::fig14`] | Fig. 14 — 64 KB large pages |
//! | [`suite::calibration`] | Table II — standalone MPMI per app |
//!
//! Beyond the paper's own tables, the scenario engine generalizes the
//! evaluation to N-tenant mixes and hardware sweeps: [`suite::tenants_n`]
//! tabulates the curated three- and four-tenant mixes (`tenants3` /
//! `tenants4`), and [`sweep::sens`] sweeps a [`sweep::SweepAxis`] (walkers,
//! queue depth, L2-TLB size, tenant count) as gmean-over-mixes tables
//! (`sens_*`, `repro --sweep`). The [`churn`] module takes the engine
//! dynamic: seeded arrival/departure timelines under per-tenant SLOs
//! ([`churn::churn_light`] / [`churn::churn_heavy`], `repro --suite`),
//! an arrival-intensity sweep ([`churn::sens_churn`]), and hand-written
//! scenario JSON via `repro --scenario FILE`. The [`arena`] module races
//! the related-work translation designs (sub-entry sharing, Mosaic-style
//! coalescing, dead-entry prediction) against DWS/DWS++ as a gmean
//! leaderboard ([`arena::arena_quick`] / [`arena::arena_full`],
//! `repro --suite`).
//!
//! Runs are cached on disk (see [`store::Store`]), so re-running the suite
//! re-simulates only what is missing, and separate experiments share the
//! same underlying simulations.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro all            # every experiment at paper scale
//! repro --quick fig5   # one experiment at smoke-test scale
//! ```

pub mod arena;
pub mod churn;
pub mod fault;
pub mod fuzz;
pub mod key;
pub mod parallel;
pub mod perf;
pub mod report;
pub mod scale;
pub mod store;
pub mod suite;
pub mod sweep;
pub mod timeline;

pub use arena::{arena_full, arena_quick, ARENA_PRESETS, ARENA_TENANT_COUNTS};
pub use churn::{scenario_from_plan, ChurnKind};
pub use fault::{FaultSpec, InjectedFault};
pub use fuzz::{
    load_repro, run_campaign, run_oracles, shrink, write_repro, CampaignOptions, CampaignOutcome,
    ChurnEvent, Coverage, Divergence, FuzzGen, FuzzScenario, OracleStats, Plant,
    RepartitionEvent, TenantSource,
};
pub use key::ExpKey;
pub use parallel::{Job, JobError, JobFailure, RunOptions, RunReport};
pub use report::Table;
pub use scale::Scale;
pub use store::{QuarantineEvent, Store, StoreError};
pub use suite::ExpContext;
pub use sweep::SweepAxis;
pub use timeline::{parse_trace, render, replay, TenantReplay, TraceReplay};
