//! Deterministic parallel execution of independent simulation jobs, with
//! per-job failure isolation.
//!
//! The experiment suite is embarrassingly parallel — every `(pair, preset,
//! scale, seed)` cell of the evaluation matrix is an independent simulation —
//! but its *output* must not depend on scheduling. The engine therefore
//! splits execution from aggregation:
//!
//! 1. the suite is replayed in *plan* mode to materialize the full job list
//!    up front (see [`ExpContext::run`](crate::ExpContext::run)),
//! 2. [`run_jobs`] simulates the jobs on a work-stealing pool of scoped
//!    threads, and
//! 3. results are merged into the [`Store`] **in canonical job order**, so
//!    the store — and every table derived from it — is bit-identical to a
//!    serial run no matter how the pool interleaved the work.
//!
//! The pool is built purely on `std`: one `Mutex<VecDeque>` of job indices
//! per worker (pop your own front, steal a victim's back) and an `mpsc`
//! channel carrying results home. Each simulation seeds its own RNG from the
//! job, so thread count and steal order cannot perturb any result.
//!
//! # Failure isolation
//!
//! A failing simulation must not take the suite down with it. Every attempt
//! runs under `catch_unwind`, so a panicking job is *recorded* — key, seed,
//! panic message, and backtrace — while its peers keep draining the queues
//! (whose locks recover from poisoning rather than cascading the panic).
//! After the pool finishes, each failed job gets **one bounded retry**,
//! serial and on a fresh stack; only if that also fails is the job declared
//! dead. [`RunBudget`] watchdogs bound each attempt, turning a runaway
//! simulation into a [`JobError::Budget`] with a partial-result diagnostic
//! instead of a hung suite. The deterministic fault-injection harness
//! ([`InjectedFault`]) drives exactly these
//! paths in tests and CI.

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{mpsc, Mutex, MutexGuard, Once, PoisonError};

use walksteal_multitenant::{
    GpuConfig, RunBudget, ScenarioSpec, SimError, SimResult, SimulationBuilder,
};
use walksteal_workloads::AppId;

use crate::fault::InjectedFault;
use crate::key::ExpKey;
use crate::store::Store;

/// One simulation to run: the cache key plus everything needed to run it.
#[derive(Debug, Clone)]
pub struct Job {
    /// Cache identity of the run.
    pub key: ExpKey,
    /// Full hardware/policy configuration.
    pub cfg: GpuConfig,
    /// Tenant applications, in tenant order (for a scenario job, the
    /// arrivals in arrival order — informational; the spec drives the run).
    pub apps: Vec<AppId>,
    /// Base workload seed.
    pub seed: u64,
    /// When set, the job is a churn run: the builder takes this scenario
    /// instead of a static tenant list.
    pub scenario: Option<ScenarioSpec>,
}

impl Job {
    /// Runs the simulation this job describes.
    #[must_use]
    pub fn simulate(&self) -> SimResult {
        self.builder().build().run()
    }

    /// Runs the simulation under a watchdog budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetExceeded`] with a partial-result diagnostic
    /// if the run blows through `budget`.
    pub fn simulate_budgeted(&self, budget: &RunBudget) -> Result<SimResult, SimError> {
        self.builder().budget(budget.clone()).run()
    }

    /// The builder describing this job's simulation, before observability
    /// or budgets are attached.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let builder = SimulationBuilder::new().config(self.cfg.clone()).seed(self.seed);
        match &self.scenario {
            Some(spec) => builder.scenario(spec.clone()),
            None => builder.tenants(self.apps.iter().copied()),
        }
    }
}

/// Why one attempt at a job failed.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The simulation panicked.
    Panicked {
        /// The panic payload, rendered.
        message: String,
        /// Backtrace captured at the panic site (when available).
        backtrace: Option<String>,
    },
    /// The simulation blew through its [`RunBudget`].
    Budget(SimError),
}

impl JobError {
    /// A short label for summary tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panicked { .. } => "panic",
            JobError::Budget(_) => "budget",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { message, .. } => write!(f, "panicked: {message}"),
            JobError::Budget(e) => write!(f, "{e}"),
        }
    }
}

/// The record of a job that failed at least once.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Cache identity of the failing run.
    pub key: ExpKey,
    /// Base workload seed of the failing run.
    pub seed: u64,
    /// The last attempt's error.
    pub error: JobError,
    /// Attempts made (2 = initial + the bounded retry).
    pub attempts: u32,
    /// Whether the retry produced a result (the failure was transient).
    pub recovered: bool,
}

/// What [`run_jobs`] reports back besides the merged store.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Every job that failed at least once, in canonical job order.
    pub failures: Vec<JobFailure>,
}

impl RunReport {
    /// Jobs that failed both attempts and produced no result.
    #[must_use]
    pub fn dead(&self) -> impl Iterator<Item = &JobFailure> {
        self.failures.iter().filter(|f| !f.recovered)
    }

    /// Whether any job died with a blown budget (as opposed to a panic).
    #[must_use]
    pub fn any_budget_death(&self) -> bool {
        self.dead()
            .any(|f| matches!(f.error, JobError::Budget(_)))
    }
}

/// Execution options for [`run_jobs`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Print a progress line per simulation.
    pub verbose: bool,
    /// Watchdog budget applied to every attempt.
    pub budget: RunBudget,
    /// Injected faults, aligned with the job list (empty = none). A fault
    /// fires on the job's first attempt only, so the bounded retry recovers
    /// and the final output matches a clean run.
    pub faults: Vec<Option<InjectedFault>>,
}

/// Below this many jobs the pool is skipped entirely and the batch runs
/// serially on the caller's thread: spawning workers, cloning channel
/// handles, and bouncing job indices through mutexes costs more than a
/// handful of simulations saves, and on single-core hosts it is a pure
/// loss at any batch size.
pub const SERIAL_CUTOFF: usize = 4;

/// The machine's available parallelism (the `--jobs` default and the
/// `host_parallelism` field of `BENCH_parallel.json`).
///
/// `std::thread::available_parallelism` honours cgroup quotas and CPU
/// affinity masks; when it errors (unsupported platform, restricted
/// sandbox) we fall back to counting processors in `/proc/cpuinfo` before
/// giving up and reporting 1, so multi-core hosts are not silently
/// recorded as single-core.
#[must_use]
pub fn default_jobs() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.into(),
        Err(_) => cpuinfo_processors().unwrap_or(1),
    }
}

/// Counts `processor` entries in `/proc/cpuinfo` (Linux fallback).
fn cpuinfo_processors() -> Option<usize> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let n = info
        .lines()
        .filter(|l| l.starts_with("processor"))
        .count();
    (n > 0).then_some(n)
}

/// Locks `m`, recovering the guard if a panicking holder poisoned it. The
/// queues only ever hold plain job indices, so a poisoned lock's data is
/// always valid — recovery cannot observe a broken invariant.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Set while this thread runs a job under `catch_unwind`, so the panic
    /// hook records instead of printing.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    /// Backtrace captured by the hook at the most recent panic site.
    static LAST_BACKTRACE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that captures a backtrace at
/// the panic site for threads attempting a job, and defers to the previous
/// hook everywhere else.
fn install_capture_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(Cell::get) {
                LAST_BACKTRACE.with(|b| {
                    *b.borrow_mut() = Some(Backtrace::force_capture().to_string());
                });
            } else {
                prev(info);
            }
        }));
    });
}

/// Renders a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One isolated attempt at `job`. `fault` (first attempts only) forces the
/// failure the harness asked for; panics are caught and returned as
/// [`JobError::Panicked`] with the site backtrace.
fn attempt(job: &Job, fault: Option<InjectedFault>, budget: &RunBudget) -> Result<SimResult, JobError> {
    install_capture_hook();
    let budget = match fault {
        // An injected budget blowout: far too few events to finish.
        Some(InjectedFault::Budget) => RunBudget::unlimited().with_max_events(1_000),
        _ => *budget,
    };
    CAPTURING.with(|c| c.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        if fault == Some(InjectedFault::Panic) {
            panic!("injected fault: forced panic for {}", job.key);
        }
        job.simulate_budgeted(&budget)
    }));
    CAPTURING.with(|c| c.set(false));
    match outcome {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(JobError::Budget(e)),
        Err(payload) => Err(JobError::Panicked {
            message: panic_message(payload.as_ref()),
            backtrace: LAST_BACKTRACE.with(|b| b.borrow_mut().take()),
        }),
    }
}

/// Simulates `jobs` on up to `workers` threads and merges the results into
/// `store` in job order.
///
/// After this returns, the store is indistinguishable from one that ran each
/// job serially in the given order: identical contents, and identical
/// miss accounting (each successful job counts one miss). A job whose both
/// attempts failed inserts nothing; it is reported in the returned
/// [`RunReport`] instead of aborting the merge.
///
/// Jobs are borrowed, not consumed: callers comparing serial and parallel
/// runs (or replaying a batch) pass the same slice twice without cloning
/// every [`GpuConfig`] and [`ExpKey`] in it. Batches smaller than
/// [`SERIAL_CUTOFF`] run serially regardless of `workers`.
pub fn run_jobs(store: &mut Store, jobs: &[Job], workers: usize, opts: &RunOptions) -> RunReport {
    let mut report = RunReport::default();
    if jobs.is_empty() {
        return report;
    }
    debug_assert!(
        opts.faults.is_empty() || opts.faults.len() == jobs.len(),
        "fault plan must align with the job list"
    );
    let fault_of = |i: usize| opts.faults.get(i).copied().flatten();
    let workers = if jobs.len() < SERIAL_CUTOFF {
        1
    } else {
        workers.clamp(1, jobs.len())
    };

    let mut results: Vec<Option<SimResult>> = vec![None; jobs.len()];
    let mut first_errors: Vec<Option<JobError>> = vec![None; jobs.len()];

    if workers == 1 {
        for (i, job) in jobs.iter().enumerate() {
            if opts.verbose {
                eprintln!("  sim: {}", job.key);
            }
            match attempt(job, fault_of(i), &opts.budget) {
                Ok(r) => results[i] = Some(r),
                Err(e) => first_errors[i] = Some(e),
            }
        }
    } else {
        // Round-robin the job indices across per-worker deques. Workers pop
        // their own front and steal a victim's back, so early finishers
        // drain the stragglers' queues instead of idling.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..jobs.len() {
            lock(&queues[i % workers]).push_back(i);
        }

        let (tx, rx) = mpsc::channel::<(usize, Result<SimResult, JobError>)>();
        let jobs_ref = &jobs;
        let queues_ref = &queues;
        std::thread::scope(|s| {
            for me in 0..workers {
                let tx = tx.clone();
                s.spawn(move || {
                    while let Some(i) = claim(queues_ref, me) {
                        let r = attempt(&jobs_ref[i], fault_of(i), &opts.budget);
                        if tx.send((i, r)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            let total = jobs_ref.len();
            let mut done = 0usize;
            for (i, r) in rx {
                done += 1;
                if opts.verbose {
                    eprintln!("  sim [{done}/{total}]: {}", jobs_ref[i].key);
                }
                match r {
                    Ok(r) => results[i] = Some(r),
                    Err(e) => first_errors[i] = Some(e),
                }
            }
        });
    }

    // One bounded retry per failed job: serial, on this (fresh) stack, and
    // never with an injected fault, so transient failures recover.
    for (i, first_error) in first_errors.into_iter().enumerate() {
        let Some(first_error) = first_error else {
            continue;
        };
        let job = &jobs[i];
        eprintln!(
            "  job failed ({}), retrying once: {} [seed {}]",
            first_error.kind(),
            job.key,
            job.seed
        );
        match attempt(job, None, &opts.budget) {
            Ok(r) => {
                results[i] = Some(r);
                report.failures.push(JobFailure {
                    key: job.key.clone(),
                    seed: job.seed,
                    error: first_error,
                    attempts: 2,
                    recovered: true,
                });
            }
            Err(second_error) => {
                eprintln!("  job dead after retry: {} ({second_error})", job.key);
                report.failures.push(JobFailure {
                    key: job.key.clone(),
                    seed: job.seed,
                    error: second_error,
                    attempts: 2,
                    recovered: false,
                });
            }
        }
    }

    // Merge in canonical (job-list) order, not completion order. Dead jobs
    // simply contribute nothing.
    for (job, r) in jobs.iter().zip(results) {
        if let Some(r) = r {
            store.insert(&job.key, r);
        }
    }
    report
}

/// Takes the next job index for worker `me`: own queue first, then steal.
fn claim(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = lock(&queues[me]).pop_front() {
        return Some(i);
    }
    for step in 1..queues.len() {
        let victim = (me + step) % queues.len();
        if let Some(i) = lock(&queues[victim]).pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use walksteal_multitenant::PolicyPreset;
    use walksteal_workloads::{AppId, WorkloadPair};

    fn tiny_jobs(n: usize) -> Vec<Job> {
        let pairs = [
            WorkloadPair::new(AppId::Gups, AppId::Mm),
            WorkloadPair::new(AppId::Jpeg, AppId::Hs),
            WorkloadPair::new(AppId::Fft, AppId::Blk),
        ];
        (0..n)
            .map(|i| {
                let pair = pairs[i % pairs.len()];
                let seed = 42 + (i / pairs.len()) as u64;
                let cfg = GpuConfig::default()
                    .with_n_sms(4)
                    .with_warps_per_sm(4)
                    .with_instructions_per_warp(300)
                    .with_preset(PolicyPreset::Dws);
                Job {
                    key: ExpKey::pair(PolicyPreset::Dws, pair, "quick", seed),
                    cfg,
                    apps: pair.apps().to_vec(),
                    seed,
                    scenario: None,
                }
            })
            .collect()
    }

    fn run_plain(store: &mut Store, jobs: &[Job], workers: usize) -> RunReport {
        run_jobs(store, jobs, workers, &RunOptions::default())
    }

    #[test]
    fn parallel_matches_serial_store() {
        let jobs = tiny_jobs(6);
        let mut serial = Store::in_memory();
        run_plain(&mut serial, &jobs, 1);
        let mut parallel = Store::in_memory();
        run_plain(&mut parallel, &jobs, 4);
        assert_eq!(serial.misses(), parallel.misses());
        for job in &jobs {
            let a = serial.lookup(&job.key).expect("serial ran the job");
            let b = parallel.lookup(&job.key).expect("parallel ran the job");
            assert_eq!(a, b, "results diverge for {}", job.key);
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = tiny_jobs(2);
        let mut store = Store::in_memory();
        let report = run_plain(&mut store, &jobs, 16);
        assert_eq!(store.misses(), 2);
        assert!(store.lookup(&jobs[0].key).is_some());
        assert!(report.failures.is_empty());
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let mut store = Store::in_memory();
        let report = run_plain(&mut store, &[], 8);
        assert_eq!(store.misses(), 0);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn claim_drains_all_queues() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..3).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..7 {
            lock(&queues[i % 3]).push_back(i);
        }
        let mut seen: Vec<usize> = Vec::new();
        while let Some(i) = claim(&queues, 1) {
            seen.push(i);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn lock_recovers_from_poisoning() {
        let m = Mutex::new(VecDeque::from([1usize]));
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(lock(&m).pop_front(), Some(1));
    }

    #[test]
    fn injected_panic_is_isolated_and_recovered() {
        let jobs = tiny_jobs(6);
        let mut faults = vec![None; 6];
        faults[2] = Some(InjectedFault::Panic);
        let opts = RunOptions {
            faults,
            ..RunOptions::default()
        };
        let mut store = Store::in_memory();
        let report = run_jobs(&mut store, &jobs, 4, &opts);
        // Every job produced a result (the faulted one via retry)...
        assert_eq!(store.misses(), 6);
        // ...and the failure is on the record, with its context.
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert!(f.recovered);
        assert_eq!(f.key, jobs[2].key);
        assert_eq!(f.attempts, 2);
        match &f.error {
            JobError::Panicked { message, backtrace } => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(backtrace.is_some(), "backtrace missing");
            }
            other => panic!("expected a panic record, got {other:?}"),
        }
        // The store matches a clean run exactly.
        let mut clean = Store::in_memory();
        run_plain(&mut clean, &jobs, 1);
        for job in &jobs {
            assert_eq!(clean.lookup(&job.key), store.lookup(&job.key));
        }
    }

    #[test]
    fn injected_budget_blowout_recovers_on_retry() {
        let jobs = tiny_jobs(3);
        let mut faults = vec![None; 3];
        faults[0] = Some(InjectedFault::Budget);
        let opts = RunOptions {
            faults,
            ..RunOptions::default()
        };
        let mut store = Store::in_memory();
        let report = run_jobs(&mut store, &jobs, 2, &opts);
        assert_eq!(store.misses(), 3);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].recovered);
        assert!(matches!(report.failures[0].error, JobError::Budget(_)));
        assert!(!report.any_budget_death());
    }

    #[test]
    fn real_budget_kills_the_job_but_not_the_suite() {
        let jobs = tiny_jobs(3);
        let opts = RunOptions {
            // Too few events for any of these sims: every job dies, both
            // attempts, and the suite still returns.
            budget: RunBudget::unlimited().with_max_events(100),
            ..RunOptions::default()
        };
        let mut store = Store::in_memory();
        let report = run_jobs(&mut store, &jobs, 2, &opts);
        assert_eq!(store.misses(), 0);
        assert_eq!(report.failures.len(), 3);
        assert_eq!(report.dead().count(), 3);
        assert!(report.any_budget_death());
    }
}
