//! Deterministic parallel execution of independent simulation jobs.
//!
//! The experiment suite is embarrassingly parallel — every `(pair, preset,
//! scale, seed)` cell of the evaluation matrix is an independent simulation —
//! but its *output* must not depend on scheduling. The engine therefore
//! splits execution from aggregation:
//!
//! 1. the suite is replayed in *plan* mode to materialize the full job list
//!    up front (see [`ExpContext::run`](crate::ExpContext::run)),
//! 2. [`run_jobs`] simulates the jobs on a work-stealing pool of scoped
//!    threads, and
//! 3. results are merged into the [`Store`] **in canonical job order**, so
//!    the store — and every table derived from it — is bit-identical to a
//!    serial run no matter how the pool interleaved the work.
//!
//! The pool is built purely on `std`: one `Mutex<VecDeque>` of job indices
//! per worker (pop your own front, steal a victim's back) and an `mpsc`
//! channel carrying results home. Each simulation seeds its own RNG from the
//! job, so thread count and steal order cannot perturb any result.

use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};

use walksteal_multitenant::{GpuConfig, SimResult, Simulation};
use walksteal_workloads::AppId;

use crate::key::ExpKey;
use crate::store::Store;

/// One simulation to run: the cache key plus everything needed to run it.
#[derive(Debug, Clone)]
pub struct Job {
    /// Cache identity of the run.
    pub key: ExpKey,
    /// Full hardware/policy configuration.
    pub cfg: GpuConfig,
    /// Tenant applications, in tenant order.
    pub apps: Vec<AppId>,
    /// Base workload seed.
    pub seed: u64,
}

impl Job {
    /// Runs the simulation this job describes.
    #[must_use]
    pub fn simulate(&self) -> SimResult {
        Simulation::new(self.cfg.clone(), &self.apps, self.seed).run()
    }
}

/// The machine's available parallelism (the `--jobs` default).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Simulates `jobs` on up to `workers` threads and merges the results into
/// `store` in job order.
///
/// After this returns, the store is indistinguishable from one that ran each
/// job serially in the given order: identical contents, and identical
/// miss accounting (each job counts one miss).
pub fn run_jobs(store: &mut Store, jobs: Vec<Job>, workers: usize, verbose: bool) {
    if jobs.is_empty() {
        return;
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        for job in &jobs {
            if verbose {
                eprintln!("  sim: {}", job.key);
            }
            let r = job.simulate();
            store.insert(&job.key, r);
        }
        return;
    }

    // Round-robin the job indices across per-worker deques. Workers pop
    // their own front and steal a victim's back, so early finishers drain
    // the stragglers' queues instead of idling.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..jobs.len() {
        queues[i % workers].lock().unwrap().push_back(i);
    }

    let mut results: Vec<Option<SimResult>> = vec![None; jobs.len()];
    let (tx, rx) = mpsc::channel::<(usize, SimResult)>();
    let jobs_ref = &jobs;
    let queues_ref = &queues;
    std::thread::scope(|s| {
        for me in 0..workers {
            let tx = tx.clone();
            s.spawn(move || {
                while let Some(i) = claim(queues_ref, me) {
                    let r = jobs_ref[i].simulate();
                    if tx.send((i, r)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        let total = jobs_ref.len();
        let mut done = 0usize;
        for (i, r) in rx {
            done += 1;
            if verbose {
                eprintln!("  sim [{done}/{total}]: {}", jobs_ref[i].key);
            }
            results[i] = Some(r);
        }
    });

    // Merge in canonical (job-list) order, not completion order.
    for (job, r) in jobs.iter().zip(results) {
        store.insert(&job.key, r.expect("every job was simulated"));
    }
}

/// Takes the next job index for worker `me`: own queue first, then steal.
fn claim(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = queues[me].lock().unwrap().pop_front() {
        return Some(i);
    }
    for step in 1..queues.len() {
        let victim = (me + step) % queues.len();
        if let Some(i) = queues[victim].lock().unwrap().pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use walksteal_multitenant::PolicyPreset;
    use walksteal_workloads::{AppId, WorkloadPair};

    fn tiny_jobs(n: usize) -> Vec<Job> {
        let pairs = [
            WorkloadPair::new(AppId::Gups, AppId::Mm),
            WorkloadPair::new(AppId::Jpeg, AppId::Hs),
            WorkloadPair::new(AppId::Fft, AppId::Blk),
        ];
        (0..n)
            .map(|i| {
                let pair = pairs[i % pairs.len()];
                let seed = 42 + (i / pairs.len()) as u64;
                let cfg = GpuConfig::default()
                    .with_n_sms(4)
                    .with_warps_per_sm(4)
                    .with_instructions_per_warp(300)
                    .with_preset(PolicyPreset::Dws);
                Job {
                    key: ExpKey::pair(PolicyPreset::Dws, pair, "quick", seed),
                    cfg,
                    apps: pair.apps().to_vec(),
                    seed,
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_store() {
        let jobs = tiny_jobs(6);
        let mut serial = Store::in_memory();
        run_jobs(&mut serial, jobs.clone(), 1, false);
        let mut parallel = Store::in_memory();
        run_jobs(&mut parallel, jobs.clone(), 4, false);
        assert_eq!(serial.misses(), parallel.misses());
        for job in &jobs {
            let a = serial.lookup(&job.key).expect("serial ran the job");
            let b = parallel.lookup(&job.key).expect("parallel ran the job");
            assert_eq!(a, b, "results diverge for {}", job.key);
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = tiny_jobs(2);
        let mut store = Store::in_memory();
        run_jobs(&mut store, jobs.clone(), 16, false);
        assert_eq!(store.misses(), 2);
        assert!(store.lookup(&jobs[0].key).is_some());
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let mut store = Store::in_memory();
        run_jobs(&mut store, Vec::new(), 8, false);
        assert_eq!(store.misses(), 0);
    }

    #[test]
    fn claim_drains_all_queues() {
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..3).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..7 {
            queues[i % 3].lock().unwrap().push_back(i);
        }
        let mut seen: Vec<usize> = Vec::new();
        while let Some(i) = claim(&queues, 1) {
            seen.push(i);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }
}
