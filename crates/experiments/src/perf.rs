//! `repro --selftest-perf`: the engine measuring itself.
//!
//! Four throughput measurements, reported as JSON (the repo checks a
//! snapshot in as `BENCH_parallel.json`; CI's perf-smoke job compares a
//! fresh run against it):
//!
//! 1. **Event-queue micro-benchmark** — an identical synthetic push/pop
//!    workload driven through the calendar-queue [`EventQueue`] and the
//!    reference [`BinaryHeapQueue`], reporting events/sec for each and
//!    their ratio.
//! 2. **Per-subsystem throughput** — steady-state ops/sec through each
//!    stage of the translation hot path in isolation: L2 TLB probe/fill
//!    (scalar and cycle-batched), page-walk cache, the partitioned walk
//!    scheduler (scalar and batched enqueue + completion + steal
//!    decisions), and warp-stream generation. When the end-to-end number
//!    moves, these locate the subsystem responsible.
//! 3. **Whole-simulation throughput** — a quick-scale pair simulation,
//!    reporting simulated events/sec end to end (best of ten runs).
//! 4. **Parallel scaling** — the same batch of quick-scale simulations
//!    through [`parallel::run_jobs`] with one worker and with `jobs`
//!    workers, reporting wall-clock for both and the speedup. The two
//!    stores are also compared, so the selftest doubles as a determinism
//!    check. On a host that exposes a single core the section is skipped
//!    with a note: a multi-worker run there measures only scheduler
//!    overhead, and reporting its "speedup" as if it meant something
//!    poisoned earlier snapshots. `host_parallelism` always records what
//!    the host actually exposed.

use std::time::Instant;

use walksteal_mem::{Access, AccessKind, MemSystem, MemSystemConfig};
use walksteal_multitenant::{PolicyPreset, SimulationBuilder};
use walksteal_sim_core::{
    BinaryHeapQueue, Cycle, EventQueue, Json, LineAddr, Observer, Ppn, SimRng, TenantId, Vpn,
};
use walksteal_vm::walk::WalkContext;
use walksteal_vm::{
    DispatchedWalk, FrameAlloc, PageSize, PageTable, PwCache, Replacement, StealMode, Tlb,
    TlbConfig, WalkConfig, WalkPolicyKind, WalkQueueFull, WalkRequest, WalkSubsystem,
};
use walksteal_workloads::{paper_pairs, AppId, MemRef, WarpStream};

use crate::key::ExpKey;
use crate::parallel::{self, Job};
use crate::scale::Scale;
use crate::store::Store;

/// Push/pop pairs driven through each queue in the micro-benchmark.
const QUEUE_OPS: u64 = 2_000_000;

/// Simulations in the parallel-scaling batch (per `jobs`, min 8).
fn batch_size(jobs: usize) -> usize {
    (2 * jobs).max(8)
}

/// The operations both queue implementations share.
trait Queue {
    fn push(&mut self, at: Cycle, value: u64);
    fn pop(&mut self) -> Option<(Cycle, u64)>;
}

impl Queue for EventQueue<u64> {
    fn push(&mut self, at: Cycle, value: u64) {
        EventQueue::push(self, at, value);
    }
    fn pop(&mut self) -> Option<(Cycle, u64)> {
        EventQueue::pop(self)
    }
}

impl Queue for BinaryHeapQueue<u64> {
    fn push(&mut self, at: Cycle, value: u64) {
        BinaryHeapQueue::push(self, at, value);
    }
    fn pop(&mut self) -> Option<(Cycle, u64)> {
        BinaryHeapQueue::pop(self)
    }
}

/// Drives `ops` pop+push pairs through `q` and returns events/sec.
///
/// The workload mimics the simulator's profile: a warm queue of ~1k pending
/// events, short geometric delays (wakeups, memory latencies) plus an
/// occasional far-future event (sample ticks, relaunches) that lands beyond
/// the calendar window.
fn drive(q: &mut dyn Queue, ops: u64) -> f64 {
    let mut rng = SimRng::new(0xC0FFEE);
    for i in 0..1024 {
        q.push(Cycle(rng.next_below(512)), i);
    }
    let start = Instant::now();
    for n in 0..ops {
        let (at, _) = q.pop().expect("queue stays warm");
        let delay = 1 + rng.next_geometric(1.0 / 120.0);
        q.push(Cycle(at.0 + delay), n);
        if rng.chance(1.0 / 64.0) {
            let (far_at, _) = q.pop().expect("queue stays warm");
            q.push(Cycle(far_at.0 + 5_000 + rng.next_below(4_096)), n);
        }
    }
    // Each loop iteration pops and pushes at least one event.
    ops as f64 / start.elapsed().as_secs_f64()
}

fn queue_micro() -> Json {
    let heap = drive(&mut BinaryHeapQueue::new(), QUEUE_OPS);
    let calendar = drive(&mut EventQueue::new(), QUEUE_OPS);
    eprintln!(
        "queue micro: calendar {calendar:.0} ev/s vs heap {heap:.0} ev/s ({:.2}x)",
        calendar / heap
    );
    Json::Obj(vec![
        ("ops".into(), Json::UInt(QUEUE_OPS)),
        ("binary_heap_events_per_sec".into(), Json::Num(heap)),
        ("calendar_events_per_sec".into(), Json::Num(calendar)),
        ("calendar_over_heap".into(), Json::Num(calendar / heap)),
    ])
}

/// Times `ops` calls of `f` and returns ops/sec.
fn rate(ops: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..ops {
        f();
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Steady-state L2-TLB probe/fill throughput (1024-entry, 16-way, two
/// tenants — the Table I shared TLB under a mixed hit/miss stream).
fn tlb_probe_rate() -> f64 {
    let mut tlb = Tlb::new(
        TlbConfig {
            sets: 64,
            ways: 16,
            replacement: Replacement::Lru,
        },
        2,
    );
    let mut rng = SimRng::new(11);
    let mut now = Cycle::ZERO;
    rate(2_000_000, || {
        now += 1;
        let t = TenantId(rng.next_below(2) as u8);
        let vpn = Vpn(rng.next_below(4_096));
        if tlb.probe(t, vpn).is_none() {
            tlb.fill(t, vpn, Ppn(vpn.0), now);
        }
    })
}

/// Batched L2-TLB throughput: the same mixed hit/miss stream as
/// [`tlb_probe_rate`], resolved eight probes at a time through
/// [`Tlb::probe_batch`], with each address repeated once the way warp
/// divergence repeats them (so the batch's same-VPN dedupe stays on the
/// measured profile). Reported as probes/sec, directly comparable to
/// `tlb_probe_ops_per_sec`.
fn tlb_batch_rate() -> f64 {
    const BATCH: u64 = 8;
    let mut tlb = Tlb::new(
        TlbConfig {
            sets: 64,
            ways: 16,
            replacement: Replacement::Lru,
        },
        2,
    );
    let mut rng = SimRng::new(11);
    let mut now = Cycle::ZERO;
    let mut probes: Vec<(TenantId, Vpn)> = Vec::new();
    let mut out: Vec<Option<Ppn>> = Vec::new();
    rate(2_000_000 / BATCH, || {
        now += 1;
        probes.clear();
        let t = TenantId(rng.next_below(2) as u8);
        for _ in 0..BATCH / 2 {
            let vpn = Vpn(rng.next_below(4_096));
            probes.push((t, vpn));
            probes.push((t, vpn));
        }
        tlb.probe_batch(&probes, &mut out);
        for (i, r) in out.iter().enumerate() {
            if r.is_none() {
                let (t, vpn) = probes[i];
                tlb.fill(t, vpn, Ppn(vpn.0), now);
            }
        }
    }) * BATCH as f64
}

/// Page-walk-cache probe + walk-fill throughput (128 entries, 4 levels).
fn pwc_rate() -> f64 {
    let mut pwc = PwCache::new(128);
    let mut rng = SimRng::new(12);
    let nodes = [
        walksteal_sim_core::PhysAddr(0x1000),
        walksteal_sim_core::PhysAddr(0x2000),
        walksteal_sim_core::PhysAddr(0x3000),
        walksteal_sim_core::PhysAddr(0x4000),
    ];
    rate(1_000_000, || {
        let t = TenantId(rng.next_below(2) as u8);
        let vpn = Vpn(rng.next_below(1 << 22));
        if pwc.probe(t, vpn, 4).is_none() {
            pwc.fill_walk(t, vpn, &nodes);
        }
    })
}

/// Walk-scheduler throughput under DWS: each op is one enqueue attempt
/// plus draining every completion due, so the rate covers the bitmap
/// FWA/TWM/WTM selection, the arena queues, and steal decisions.
fn walk_scheduler_rate() -> f64 {
    let mut ws = WalkSubsystem::new(WalkConfig {
        policy: WalkPolicyKind::Partitioned(StealMode::Dws),
        ..WalkConfig::default()
    });
    let mut pts = vec![
        PageTable::new(TenantId(0), PageSize::Small4K),
        PageTable::new(TenantId(1), PageSize::Small4K),
    ];
    let mut frames = FrameAlloc::new();
    let mut mem = MemSystem::new(MemSystemConfig::default());
    let mut obs = Observer::off();
    let mut rng = SimRng::new(13);
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();
    let mut now = Cycle::ZERO;
    rate(200_000, || {
        now += 13;
        // Skewed traffic so the steal path stays live.
        let t = TenantId(u8::from(rng.next_below(8) == 0));
        let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_096));
        let mut ctx = WalkContext {
            page_tables: &mut pts,
            frames: &mut frames,
            mem: &mut mem,
            mask: None,
            obs: &mut obs,
        };
        if let Ok(Some(d)) = ws.try_enqueue(WalkRequest { tenant: t, vpn }, now, &mut ctx) {
            let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
            outstanding.insert(pos, d);
        }
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let mut ctx = WalkContext {
                page_tables: &mut pts,
                frames: &mut frames,
                mem: &mut mem,
                mask: None,
                obs: &mut obs,
            };
            let (_, next) = ws.on_walker_done(d.walker, d.done_at, &mut ctx);
            if let Some(n) = next {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }
    })
}

/// Batched walk-scheduler throughput: the workload of
/// [`walk_scheduler_rate`] with each cycle's arrivals enqueued through
/// [`WalkSubsystem::try_enqueue_batch`], so one FWA/TWM mask pass serves
/// the whole batch's steal decisions. Reported as requests/sec, directly
/// comparable to `walk_scheduler_ops_per_sec`.
fn walk_sched_batch_rate() -> f64 {
    const BATCH: u64 = 4;
    let mut ws = WalkSubsystem::new(WalkConfig {
        policy: WalkPolicyKind::Partitioned(StealMode::Dws),
        ..WalkConfig::default()
    });
    let mut pts = vec![
        PageTable::new(TenantId(0), PageSize::Small4K),
        PageTable::new(TenantId(1), PageSize::Small4K),
    ];
    let mut frames = FrameAlloc::new();
    let mut mem = MemSystem::new(MemSystemConfig::default());
    let mut obs = Observer::off();
    let mut rng = SimRng::new(13);
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();
    let mut reqs: Vec<WalkRequest> = Vec::new();
    let mut results: Vec<Result<Option<DispatchedWalk>, WalkQueueFull>> = Vec::new();
    let mut now = Cycle::ZERO;
    rate(200_000 / BATCH, || {
        now += 13;
        reqs.clear();
        for _ in 0..BATCH {
            // Same skew as the scalar bench: the steal path stays live.
            let t = TenantId(u8::from(rng.next_below(8) == 0));
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(4_096));
            reqs.push(WalkRequest { tenant: t, vpn });
        }
        let mut ctx = WalkContext {
            page_tables: &mut pts,
            frames: &mut frames,
            mem: &mut mem,
            mask: None,
            obs: &mut obs,
        };
        ws.try_enqueue_batch(&reqs, now, &mut ctx, &mut results);
        for r in results.drain(..) {
            if let Ok(Some(d)) = r {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let mut ctx = WalkContext {
                page_tables: &mut pts,
                frames: &mut frames,
                mem: &mut mem,
                mask: None,
                obs: &mut obs,
            };
            let (_, next) = ws.on_walker_done(d.walker, d.done_at, &mut ctx);
            if let Some(n) = next {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }
    }) * BATCH as f64
}

/// Memory-system throughput through the scalar [`MemSystem::access`] path:
/// a mixed data/page-table stream over a 64 Ki-line footprint (so the L2
/// banks see real hit/miss/eviction traffic), issued 16 lines per cycle —
/// the same per-cycle shape the batched bench resolves in one pass.
fn mem_access_rate() -> f64 {
    const BATCH: u64 = 16;
    let mut mem = MemSystem::new(MemSystemConfig::default());
    let mut rng = SimRng::new(14);
    let mut now = Cycle::ZERO;
    let mut lines: Vec<LineAddr> = Vec::new();
    rate(2_000_000 / BATCH, || {
        now += 2;
        let kind = if rng.chance(0.2) {
            AccessKind::PageTable
        } else {
            AccessKind::Data
        };
        lines.clear();
        for _ in 0..BATCH {
            lines.push(LineAddr(rng.next_below(1 << 16)));
        }
        for &line in &lines {
            mem.access(line, now, kind);
        }
    }) * BATCH as f64
}

/// Batched memory-system throughput: the exact workload of
/// [`mem_access_rate`], with each cycle's 16 coalesced lines resolved in
/// one [`MemSystem::access_batch`] pass. Reported as accesses/sec,
/// directly comparable to `mem_access_ops_per_sec`.
fn mem_access_batch_rate() -> f64 {
    const BATCH: u64 = 16;
    let mut mem = MemSystem::new(MemSystemConfig::default());
    let mut rng = SimRng::new(14);
    let mut now = Cycle::ZERO;
    let mut lines: Vec<LineAddr> = Vec::new();
    let mut accesses: Vec<Access> = Vec::new();
    rate(2_000_000 / BATCH, || {
        now += 2;
        let kind = if rng.chance(0.2) {
            AccessKind::PageTable
        } else {
            AccessKind::Data
        };
        lines.clear();
        for _ in 0..BATCH {
            lines.push(LineAddr(rng.next_below(1 << 16)));
        }
        accesses.clear();
        mem.access_batch(&lines, now, kind, &mut accesses);
    }) * BATCH as f64
}

/// Warp-stream generation throughput: ops/sec of the allocation-free
/// [`WarpStream::next_op_into`] path (GUPS — the divergence-heaviest
/// profile, so the dedup is exercised hardest).
fn stream_gen_rate() -> f64 {
    let mut seed = 0u64;
    let mut stream = WarpStream::new(AppId::Gups.profile(), seed, 0, 100_000);
    let mut refs: Vec<MemRef> = Vec::new();
    rate(2_000_000, || {
        if stream.next_op_into(&mut refs).is_none() {
            seed += 1;
            stream = WarpStream::new(AppId::Gups.profile(), seed, 0, 100_000);
        }
    })
}

fn subsystems() -> Json {
    let tlb = tlb_probe_rate();
    let tlb_batch = tlb_batch_rate();
    let pwc = pwc_rate();
    let walk = walk_scheduler_rate();
    let walk_batch = walk_sched_batch_rate();
    let mem = mem_access_rate();
    let mem_batch = mem_access_batch_rate();
    let stream = stream_gen_rate();
    eprintln!(
        "subsystems: tlb {tlb:.0} ops/s (batch {tlb_batch:.0}), pwc {pwc:.0} ops/s, \
         walk sched {walk:.0} ops/s (batch {walk_batch:.0}), \
         mem {mem:.0} ops/s (batch {mem_batch:.0}), stream gen {stream:.0} ops/s"
    );
    Json::Obj(vec![
        ("tlb_probe_ops_per_sec".into(), Json::Num(tlb)),
        ("tlb_batch_ops_per_sec".into(), Json::Num(tlb_batch)),
        ("pwc_ops_per_sec".into(), Json::Num(pwc)),
        ("walk_scheduler_ops_per_sec".into(), Json::Num(walk)),
        ("walk_sched_batch_ops_per_sec".into(), Json::Num(walk_batch)),
        ("mem_access_ops_per_sec".into(), Json::Num(mem)),
        ("mem_access_batch_ops_per_sec".into(), Json::Num(mem_batch)),
        ("stream_gen_ops_per_sec".into(), Json::Num(stream)),
    ])
}

fn sim_throughput() -> Json {
    let cfg = Scale::Quick
        .base_config()
        .for_tenants(2)
        .with_preset(PolicyPreset::DwsPlusPlus);
    let apps = [AppId::Gups, AppId::Mm];
    let mut events = 0u64;
    let mut best = 0.0f64;
    // A quick-scale run is tens of milliseconds, so single samples are at
    // the mercy of scheduler jitter; take the best of a batch to report
    // what the code can do rather than what the host happened to allow.
    for _ in 0..10 {
        let start = Instant::now();
        let r = SimulationBuilder::new()
            .config(cfg.clone())
            .tenants(apps)
            .seed(42)
            .build()
            .run();
        let rate = r.events as f64 / start.elapsed().as_secs_f64();
        events = r.events;
        best = best.max(rate);
    }
    eprintln!("simulation: {events} events, best {best:.0} ev/s");
    Json::Obj(vec![
        ("scale".into(), Json::Str("quick".into())),
        ("events".into(), Json::UInt(events)),
        ("events_per_sec".into(), Json::Num(best)),
    ])
}

fn scaling_jobs(n: usize) -> Vec<Job> {
    let pairs = paper_pairs();
    (0..n)
        .map(|i| {
            let pair = pairs[i % pairs.len()];
            let seed = 42 + (i / pairs.len()) as u64;
            let cfg = Scale::Quick
                .base_config()
                .for_tenants(2)
                .with_preset(PolicyPreset::Dws);
            Job {
                key: ExpKey::pair(PolicyPreset::Dws, pair, "quick", seed),
                cfg,
                apps: pair.apps().to_vec(),
                seed,
                scenario: None,
            }
        })
        .collect()
}

fn parallel_scaling(jobs: usize) -> Json {
    let batch = scaling_jobs(batch_size(jobs));
    let n = batch.len();

    let mut serial_store = Store::in_memory();
    let start = Instant::now();
    parallel::run_jobs(&mut serial_store, &batch, 1, &parallel::RunOptions::default());
    let serial = start.elapsed().as_secs_f64();

    let mut parallel_store = Store::in_memory();
    let start = Instant::now();
    parallel::run_jobs(&mut parallel_store, &batch, jobs, &parallel::RunOptions::default());
    let par = start.elapsed().as_secs_f64();

    let identical = batch
        .iter()
        .all(|j| serial_store.lookup(&j.key) == parallel_store.lookup(&j.key));
    assert!(identical, "parallel results diverged from serial");
    eprintln!(
        "parallel: {n} sims, serial {serial:.2}s, {jobs} workers {par:.2}s ({:.2}x)",
        serial / par
    );
    Json::Obj(vec![
        ("n_sims".into(), Json::UInt(n as u64)),
        ("serial_secs".into(), Json::Num(serial)),
        ("parallel_secs".into(), Json::Num(par)),
        ("sims_per_sec_serial".into(), Json::Num(n as f64 / serial)),
        ("sims_per_sec_parallel".into(), Json::Num(n as f64 / par)),
        ("speedup".into(), Json::Num(serial / par)),
        ("identical_results".into(), Json::Bool(identical)),
    ])
}

/// Runs all four measurements with `jobs` workers and returns the report.
///
/// `host_parallelism` records what the host actually exposes. When that is
/// a single core, the parallel-scaling section is skipped with a note
/// instead of measured: a multi-worker batch on one core times only
/// scheduler overhead, and a snapshot of that number reads as a real (and
/// alarming) sub-1.0 "speedup".
#[must_use]
pub fn selftest(jobs: usize) -> Json {
    let host = parallel::default_jobs();
    let par = if host > 1 {
        parallel_scaling(jobs)
    } else {
        eprintln!(
            "parallel: skipped - host exposes a single core, so a multi-worker \
             speedup would only measure scheduler overhead"
        );
        Json::Obj(vec![(
            "skipped".into(),
            Json::Str("host exposes a single core; parallel speedup not measurable".into()),
        )])
    };
    Json::Obj(vec![
        ("jobs".into(), Json::UInt(jobs as u64)),
        ("host_parallelism".into(), Json::UInt(host as u64)),
        ("queue_micro".into(), queue_micro()),
        ("subsystems".into(), subsystems()),
        ("simulation".into(), sim_throughput()),
        ("parallel".into(), par),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_queues_agree_on_the_micro_workload() {
        // Replay a short prefix of the benchmark loop on both queues and
        // check every popped (cycle, value) pair matches.
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut rng_a = SimRng::new(0xC0FFEE);
        let mut rng_b = SimRng::new(0xC0FFEE);
        for i in 0..64 {
            cal.push(Cycle(rng_a.next_below(512)), i);
            heap.push(Cycle(rng_b.next_below(512)), i);
        }
        for n in 0..5_000u64 {
            let a = cal.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!(a, b, "divergence at op {n}");
            let (da, db) = (
                1 + rng_a.next_geometric(1.0 / 120.0),
                1 + rng_b.next_geometric(1.0 / 120.0),
            );
            assert_eq!(da, db);
            cal.push(Cycle(a.0 .0 + da), n);
            heap.push(Cycle(b.0 .0 + db), n);
        }
    }

    #[test]
    fn batch_size_covers_the_workers() {
        assert_eq!(batch_size(1), 8);
        assert_eq!(batch_size(8), 16);
        assert!(batch_size(3) >= 6);
    }

    #[test]
    fn scaling_jobs_have_distinct_keys() {
        let jobs = scaling_jobs(50); // wraps past the 45 paper pairs
        let mut keys: Vec<String> = jobs.iter().map(|j| j.key.to_string()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len());
    }
}
