//! Plain-text tables for experiment output.

use std::fmt;

/// A labeled table of numeric results: one row per workload (or class), one
/// column per configuration.
///
/// # Examples
///
/// ```
/// use walksteal_experiments::Table;
///
/// let mut t = Table::new("Demo", &["Baseline", "DWS"]);
/// t.row("GUPS.MM", &[1.0, 1.82]);
/// t.row("gmean", &[1.0, 1.4]);
/// let text = t.to_string();
/// assert!(text.contains("GUPS.MM"));
/// assert!(text.contains("1.82"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The table's title (e.g. "Fig. 5: Throughput").
    pub title: String,
    /// Column headers (configurations).
    pub columns: Vec<String>,
    /// Rows: a label plus one value per column (NaN renders as "-").
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column count.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push((label.to_owned(), values.to_vec()));
    }

    /// The value at (row label, column name), if present.
    #[must_use]
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, values) = self.rows.iter().find(|(l, _)| l == row)?;
        Some(values[c])
    }

    /// Renders as GitHub-flavored Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n| workload |", self.title);
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push_str("\n| --- |");
        for _ in &self.columns {
            out.push_str(" ---: |");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in values {
                if v.is_nan() {
                    out.push_str(" - |");
                } else {
                    out.push_str(&format!(" {v:.3} |"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(9))
            .collect::<Vec<_>>();

        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for (v, w) in values.iter().zip(&col_w) {
                if v.is_nan() {
                    write!(f, "  {:>w$}", "-")?;
                } else {
                    write!(f, "  {v:>w$.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_rows_and_values() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row("r1", &[1.0, 2.5]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("r1"));
        assert!(s.contains("2.500"));
    }

    #[test]
    fn nan_renders_as_dash() {
        let mut t = Table::new("T", &["a"]);
        t.row("r", &[f64::NAN]);
        assert!(t.to_string().contains('-'));
        assert!(t.to_markdown().contains("| - |"));
    }

    #[test]
    fn get_by_labels() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row("r1", &[1.0, 2.0]);
        assert_eq!(t.get("r1", "b"), Some(2.0));
        assert_eq!(t.get("r1", "zz"), None);
        assert_eq!(t.get("zz", "a"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row("r", &[1.0]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Md", &["x"]);
        t.row("r", &[0.5]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Md"));
        assert!(md.contains("| r | 0.500 |"));
    }
}
