//! Simulation scale presets.

use walksteal_multitenant::GpuConfig;

/// How big the simulations are.
///
/// [`Scale::Paper`] matches the Table I machine (30 SMs, 24 warps/SM) with
/// an execution length long enough that warm-up effects wash out.
/// [`Scale::Quick`] is a smoke-test scale for CI and iteration: the same
/// mechanisms fire, but class magnitudes are noisier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Full evaluation scale (paper Table I machine).
    #[default]
    Paper,
    /// Reduced smoke-test scale.
    Quick,
}

impl Scale {
    /// A short identifier used in cache keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }

    /// The base [`GpuConfig`] at this scale (before policy presets).
    #[must_use]
    pub fn base_config(self) -> GpuConfig {
        match self {
            Scale::Paper => GpuConfig::default(),
            Scale::Quick => GpuConfig::default()
                .with_n_sms(8)
                .with_warps_per_sm(8)
                .with_instructions_per_warp(1_200),
        }
    }

    /// SMs assigned to a tenant when `n_tenants` share the GPU — also the
    /// SM count its stand-alone baseline uses.
    #[must_use]
    pub fn sms_per_tenant(self, n_tenants: usize) -> usize {
        let total = self.base_config().n_sms;
        // Fig. 13 uses 28 SMs for four tenants (30 is not divisible by 4).
        let usable = total - total % n_tenants;
        usable / n_tenants
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_table_one() {
        let c = Scale::Paper.base_config();
        assert_eq!(c.n_sms, 30);
        assert_eq!(c.warps_per_sm, 24);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = Scale::Quick.base_config();
        assert!(q.n_sms < 30);
        assert!(q.instructions_per_warp < 6_000);
    }

    #[test]
    fn sm_split() {
        assert_eq!(Scale::Paper.sms_per_tenant(2), 15);
        assert_eq!(Scale::Paper.sms_per_tenant(3), 10);
        assert_eq!(Scale::Paper.sms_per_tenant(4), 7);
        assert_eq!(Scale::Quick.sms_per_tenant(2), 4);
    }

    #[test]
    fn labels() {
        assert_eq!(Scale::Paper.to_string(), "paper");
        assert_eq!(Scale::Quick.label(), "quick");
    }
}
