//! A disk-backed store of simulation results.
//!
//! Experiments share runs (Fig. 5, 6, 7, 10, and Tables V/VI all consume the
//! same Baseline/DWS/DWS++ simulations), and the full paper-scale suite is
//! hours of single-core simulation — so every completed run is cached as a
//! JSON file keyed by its configuration. Re-running the suite simulates only
//! what is missing.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use walksteal_multitenant::SimResult;

/// A cache of [`SimResult`]s, in memory and optionally on disk.
///
/// # Examples
///
/// ```
/// use walksteal_experiments::Store;
/// use walksteal_multitenant::SimResult;
///
/// let mut store = Store::in_memory();
/// let mut runs = 0;
/// let make = |runs: &mut u32| {
///     *runs += 1;
///     SimResult { tenants: vec![], cycles: 1, events: 0, timeline: vec![] }
/// };
/// store.get_or_run("demo", || make(&mut runs));
/// store.get_or_run("demo", || make(&mut runs));
/// assert_eq!(runs, 1); // second call was a cache hit
/// ```
#[derive(Debug)]
pub struct Store {
    dir: Option<PathBuf>,
    memory: HashMap<String, SimResult>,
    hits: u64,
    misses: u64,
}

impl Store {
    /// A store that caches only in memory (tests, quick runs).
    #[must_use]
    pub fn in_memory() -> Self {
        Store {
            dir: None,
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A store persisting results under `dir` (created on demand).
    #[must_use]
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Store {
            dir: Some(dir.into()),
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Turns a free-form key into a safe file name.
    fn file_name(key: &str) -> String {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        // Append a hash so that sanitization collisions cannot alias.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{safe}-{h:016x}.json")
    }

    /// Returns the cached result for `key`, or computes, caches, and
    /// returns it.
    pub fn get_or_run(&mut self, key: &str, run: impl FnOnce() -> SimResult) -> SimResult {
        if let Some(r) = self.memory.get(key) {
            self.hits += 1;
            return r.clone();
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(Self::file_name(key));
            if let Ok(text) = fs::read_to_string(&path) {
                if let Ok(r) = serde_json::from_str::<SimResult>(&text) {
                    self.hits += 1;
                    self.memory.insert(key.to_owned(), r.clone());
                    return r;
                }
            }
        }
        self.misses += 1;
        let r = run();
        if let Some(dir) = &self.dir {
            // Cache write failures are non-fatal: the result is still valid.
            let _ = fs::create_dir_all(dir);
            let path = dir.join(Self::file_name(key));
            if let Ok(text) = serde_json::to_string(&r) {
                let _ = fs::write(path, text);
            }
        }
        self.memory.insert(key.to_owned(), r.clone());
        r
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. simulations actually run).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: u64) -> SimResult {
        SimResult {
            tenants: vec![],
            cycles,
            events: 0,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn memoizes() {
        let mut s = Store::in_memory();
        let a = s.get_or_run("k", || dummy(7));
        let b = s.get_or_run("k", || panic!("must not re-run"));
        assert_eq!(a, b);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn distinct_keys_rerun() {
        let mut s = Store::in_memory();
        s.get_or_run("a", || dummy(1));
        let b = s.get_or_run("b", || dummy(2));
        assert_eq!(b.cycles, 2);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("walksteal-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut s = Store::on_disk(&dir);
            s.get_or_run("persist me", || dummy(42));
        }
        {
            let mut s = Store::on_disk(&dir);
            let r = s.get_or_run("persist me", || panic!("should load from disk"));
            assert_eq!(r.cycles, 42);
            assert_eq!(s.hits(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_distinguish_similar_keys() {
        // Sanitization maps both '|' and '/' to '_' — the hash suffix keeps
        // the file names distinct.
        assert_ne!(Store::file_name("a|b"), Store::file_name("a/b"));
    }
}
