//! A disk-backed, self-healing store of simulation results.
//!
//! Experiments share runs (Fig. 5, 6, 7, 10, and Tables V/VI all consume the
//! same Baseline/DWS/DWS++ simulations), and the full paper-scale suite is
//! hours of single-core simulation — so every completed run is cached as a
//! JSON file keyed by its configuration. Re-running the suite simulates only
//! what is missing.
//!
//! In memory the cache is keyed on the typed [`ExpKey`]; the key is rendered
//! to its legacy string form only to name the file on disk, so caches written
//! by earlier versions remain readable.
//!
//! # Fault tolerance
//!
//! A result cache shared by a whole evaluation suite must not be able to
//! take the suite down:
//!
//! * **Atomic writes** — results are written to a temp file in the cache
//!   directory and renamed into place, so a crash mid-write can never leave
//!   a half-written file under a live key.
//! * **Integrity checksums** — new files carry an FNV-1a 64 checksum of the
//!   result payload in their JSON envelope (`Store::persist` format:
//!   `{"fnv64":"<hex>","result":{...}}`). Files written before the envelope
//!   existed load checksum-free, unchanged on disk.
//! * **Quarantine, don't panic** — an unreadable, unparseable, or
//!   checksum-failing file is moved to `<dir>/quarantine/` and logged; the
//!   lookup reports a miss so the key is simply resimulated. The
//!   [`Store::quarantined`] log lets the caller itemize what self-healed.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use walksteal_multitenant::SimResult;
use walksteal_sim_core::Json;

use crate::key::ExpKey;

/// Subdirectory (inside the cache dir) corrupt files are moved to.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Why a cache file could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file exists but could not be read.
    Io {
        /// The offending file.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        msg: String,
    },
    /// The file is not valid JSON (truncated, bit-flipped, …).
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The parser's complaint.
        msg: String,
    },
    /// The envelope checksum does not match the payload.
    Checksum {
        /// The offending file.
        path: PathBuf,
    },
    /// Valid JSON that does not decode to a [`SimResult`] (stale schema).
    Decode {
        /// The offending file.
        path: PathBuf,
    },
}

impl StoreError {
    /// The file the error is about.
    #[must_use]
    pub fn path(&self) -> &Path {
        match self {
            StoreError::Io { path, .. }
            | StoreError::Parse { path, .. }
            | StoreError::Checksum { path }
            | StoreError::Decode { path } => path,
        }
    }

    /// A short label for summary tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "unreadable",
            StoreError::Parse { .. } => "unparseable",
            StoreError::Checksum { .. } => "checksum mismatch",
            StoreError::Decode { .. } => "stale schema",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, msg } => write!(f, "{}: {msg}", path.display()),
            StoreError::Parse { path, msg } => {
                write!(f, "{}: invalid JSON: {msg}", path.display())
            }
            StoreError::Checksum { path } => {
                write!(f, "{}: checksum mismatch", path.display())
            }
            StoreError::Decode { path } => {
                write!(f, "{}: not a result record", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One file the store moved out of the way instead of dying on.
#[derive(Debug, Clone)]
pub struct QuarantineEvent {
    /// The key whose lookup hit the bad file.
    pub key: ExpKey,
    /// Why the file was rejected.
    pub error: StoreError,
    /// Where the file was moved (`None` if even the move failed and the
    /// file was deleted instead).
    pub moved_to: Option<PathBuf>,
}

/// FNV-1a 64 over `bytes` (also used to suffix cache file names).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A cache of [`SimResult`]s, in memory and optionally on disk.
///
/// # Examples
///
/// ```
/// use walksteal_experiments::{key::ExpKey, Store};
/// use walksteal_multitenant::{PolicyPreset, SimResult};
/// use walksteal_workloads::{AppId, WorkloadPair};
///
/// let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
/// let key = ExpKey::pair(PolicyPreset::Dws, pair, "quick", 42);
/// let mut store = Store::in_memory();
/// let mut runs = 0;
/// let make = |runs: &mut u32| {
///     *runs += 1;
///     SimResult { tenants: vec![], cycles: 1, events: 0, timeline: vec![], churn: None }
/// };
/// store.get_or_run(&key, || make(&mut runs));
/// store.get_or_run(&key, || make(&mut runs));
/// assert_eq!(runs, 1); // second call was a cache hit
/// ```
#[derive(Debug)]
pub struct Store {
    dir: Option<PathBuf>,
    memory: HashMap<ExpKey, SimResult>,
    hits: u64,
    misses: u64,
    quarantined: Vec<QuarantineEvent>,
}

impl Store {
    /// A store that caches only in memory (tests, quick runs).
    #[must_use]
    pub fn in_memory() -> Self {
        Store {
            dir: None,
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
            quarantined: Vec::new(),
        }
    }

    /// A store persisting results under `dir` (created on demand).
    #[must_use]
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Store {
            dir: Some(dir.into()),
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
            quarantined: Vec::new(),
        }
    }

    /// Turns a rendered key into a safe file name.
    fn file_name(key: &str) -> String {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        // Append a hash so that sanitization collisions cannot alias.
        format!("{safe}-{:016x}.json", fnv64(key.as_bytes()))
    }

    fn disk_path(&self, key: &ExpKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(Self::file_name(&key.to_string())))
    }

    /// Decodes one cache file's contents: the checksummed envelope written
    /// by [`persist`](Self::persist), or a bare legacy result.
    fn decode(path: &Path, text: &str) -> Result<SimResult, StoreError> {
        // Envelope layout is fixed by the writer, so the payload's exact
        // bytes can be recovered for checksumming without re-serializing
        // (float formatting round-trips are then irrelevant).
        const PREFIX: &str = "{\"fnv64\":\"";
        const SEP: &str = "\",\"result\":";
        let payload = if let Some(rest) = text.strip_prefix(PREFIX) {
            let (sum, rest) = rest.split_at_checked(16).ok_or_else(|| {
                StoreError::Parse {
                    path: path.to_path_buf(),
                    msg: "truncated envelope".into(),
                }
            })?;
            let payload = rest
                .strip_prefix(SEP)
                .and_then(|r| r.trim_end().strip_suffix('}'))
                .ok_or_else(|| StoreError::Parse {
                    path: path.to_path_buf(),
                    msg: "malformed envelope".into(),
                })?;
            if format!("{:016x}", fnv64(payload.as_bytes())) != sum {
                return Err(StoreError::Checksum {
                    path: path.to_path_buf(),
                });
            }
            payload
        } else {
            text
        };
        let json = Json::parse(payload).map_err(|msg| StoreError::Parse {
            path: path.to_path_buf(),
            msg,
        })?;
        SimResult::from_json(&json).ok_or_else(|| StoreError::Decode {
            path: path.to_path_buf(),
        })
    }

    /// Moves a rejected cache file to the quarantine directory (best
    /// effort) and records the event. The key's next lookup misses, so it
    /// is resimulated rather than the suite dying here.
    fn quarantine(&mut self, key: &ExpKey, path: &Path, error: StoreError) {
        let moved_to = self.dir.as_ref().and_then(|dir| {
            let qdir = dir.join(QUARANTINE_DIR);
            fs::create_dir_all(&qdir).ok()?;
            let dest = qdir.join(path.file_name()?);
            fs::rename(path, &dest).ok()?;
            Some(dest)
        });
        if moved_to.is_none() {
            // Could not move it aside; remove it so the resimulated result
            // can take the slot.
            let _ = fs::remove_file(path);
        }
        eprintln!(
            "store: quarantined {} ({}) -> {}",
            path.display(),
            error.kind(),
            moved_to
                .as_deref()
                .map_or_else(|| "deleted".to_string(), |p| p.display().to_string()),
        );
        self.quarantined.push(QuarantineEvent {
            key: key.clone(),
            error,
            moved_to,
        });
    }

    fn load_from_disk(&mut self, key: &ExpKey) -> Option<SimResult> {
        let path = self.disk_path(key)?;
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.quarantine(
                    key,
                    &path,
                    StoreError::Io {
                        path: path.clone(),
                        msg: e.to_string(),
                    },
                );
                return None;
            }
        };
        match Self::decode(&path, &text) {
            Ok(r) => {
                self.memory.insert(key.clone(), r.clone());
                Some(r)
            }
            Err(err) => {
                self.quarantine(key, &path, err);
                None
            }
        }
    }

    fn persist(&self, key: &ExpKey, r: &SimResult) {
        if let (Some(dir), Some(path)) = (&self.dir, self.disk_path(key)) {
            // Cache write failures are non-fatal: the result is still valid.
            let _ = fs::create_dir_all(dir);
            let payload = r.to_json().dump();
            let text = format!(
                "{{\"fnv64\":\"{:016x}\",\"result\":{payload}}}",
                fnv64(payload.as_bytes())
            );
            // Temp-file-then-rename so a crash mid-write cannot leave a
            // truncated file under a live key.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, &path).is_err() {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Returns the cached result for `key` without running anything.
    ///
    /// Counts a hit when found (in memory or on disk); counts nothing when
    /// absent. A corrupt on-disk entry is quarantined (see the module docs)
    /// and reads as absent.
    pub fn lookup(&mut self, key: &ExpKey) -> Option<SimResult> {
        if let Some(r) = self.memory.get(key) {
            self.hits += 1;
            return Some(r.clone());
        }
        let r = self.load_from_disk(key)?;
        self.hits += 1;
        Some(r)
    }

    /// Records a freshly simulated result, counting it as a miss.
    ///
    /// This is the merge half of the parallel engine: workers simulate
    /// cache-missing jobs off-thread and the engine inserts the results in
    /// canonical job order, leaving the store exactly as if `get_or_run` had
    /// simulated each one in place.
    pub fn insert(&mut self, key: &ExpKey, r: SimResult) {
        self.misses += 1;
        self.persist(key, &r);
        self.memory.insert(key.clone(), r);
    }

    /// Returns the cached result for `key`, or computes, caches, and
    /// returns it.
    pub fn get_or_run(&mut self, key: &ExpKey, run: impl FnOnce() -> SimResult) -> SimResult {
        if let Some(r) = self.lookup(key) {
            return r;
        }
        let r = run();
        self.insert(key, r.clone());
        r
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. simulations actually run).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Every cache file quarantined (and so resimulated) this session.
    #[must_use]
    pub fn quarantined(&self) -> &[QuarantineEvent] {
        &self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walksteal_multitenant::PolicyPreset;
    use walksteal_workloads::{AppId, WorkloadPair};

    fn key(seed: u64) -> ExpKey {
        let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
        ExpKey::pair(PolicyPreset::Dws, pair, "quick", seed)
    }

    fn dummy(cycles: u64) -> SimResult {
        SimResult {
            tenants: vec![],
            cycles,
            events: 0,
            timeline: Vec::new(),
            churn: None,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "walksteal-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memoizes() {
        let mut s = Store::in_memory();
        let a = s.get_or_run(&key(1), || dummy(7));
        let b = s.get_or_run(&key(1), || panic!("must not re-run"));
        assert_eq!(a, b);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn distinct_keys_rerun() {
        let mut s = Store::in_memory();
        s.get_or_run(&key(1), || dummy(1));
        let b = s.get_or_run(&key(2), || dummy(2));
        assert_eq!(b.cycles, 2);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn insert_behaves_like_a_computed_run() {
        let mut s = Store::in_memory();
        s.insert(&key(1), dummy(9));
        let r = s.get_or_run(&key(1), || panic!("must not re-run"));
        assert_eq!(r.cycles, 9);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn lookup_misses_count_nothing() {
        let mut s = Store::in_memory();
        assert!(s.lookup(&key(1)).is_none());
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 0);
    }

    #[test]
    fn disk_round_trip() {
        let dir = scratch_dir("roundtrip");
        {
            let mut s = Store::on_disk(&dir);
            s.get_or_run(&key(42), || dummy(42));
        }
        {
            let mut s = Store::on_disk(&dir);
            let r = s.get_or_run(&key(42), || panic!("should load from disk"));
            assert_eq!(r.cycles, 42);
            assert_eq!(s.hits(), 1);
            assert!(s.quarantined().is_empty());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_files_carry_a_verifiable_checksum_envelope() {
        let dir = scratch_dir("envelope");
        let mut s = Store::on_disk(&dir);
        s.insert(&key(1), dummy(5));
        let path = s.disk_path(&key(1)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"fnv64\":\""), "envelope missing: {text}");
        assert!(Store::decode(&path, &text).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_files_still_load() {
        let dir = scratch_dir("legacy");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(Store::file_name(&key(3).to_string()));
        fs::write(&path, dummy(3).to_json().dump()).unwrap();
        let mut s = Store::on_disk(&dir);
        let r = s.get_or_run(&key(3), || panic!("legacy file should load"));
        assert_eq!(r.cycles, 3);
        assert!(s.quarantined().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_quarantined_and_resimulated() {
        let dir = scratch_dir("truncated");
        let k = key(7);
        {
            let mut s = Store::on_disk(&dir);
            s.insert(&k, dummy(7));
        }
        let path = Store::on_disk(&dir).disk_path(&k).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();

        let mut s = Store::on_disk(&dir);
        let r = s.get_or_run(&k, || dummy(77));
        assert_eq!(r.cycles, 77, "corrupt entry must be resimulated");
        assert_eq!(s.quarantined().len(), 1);
        let q = &s.quarantined()[0];
        assert_eq!(q.key, k);
        let moved = q.moved_to.as_ref().expect("file moved aside");
        assert!(moved.starts_with(dir.join(QUARANTINE_DIR)));
        assert!(moved.exists());
        // The fresh result took the original slot, checksummed.
        assert!(fs::read_to_string(&path).unwrap().starts_with("{\"fnv64\":"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_payload_fails_the_checksum() {
        let dir = scratch_dir("bitflip");
        let k = key(9);
        {
            let mut s = Store::on_disk(&dir);
            s.insert(&k, dummy(1234));
        }
        let path = Store::on_disk(&dir).disk_path(&k).unwrap();
        // Flip one digit inside the payload (keeps the JSON valid).
        let text = fs::read_to_string(&path).unwrap().replace("1234", "1235");
        fs::write(&path, text).unwrap();

        let mut s = Store::on_disk(&dir);
        let r = s.get_or_run(&k, || dummy(42));
        assert_eq!(r.cycles, 42);
        assert!(matches!(
            s.quarantined()[0].error,
            StoreError::Checksum { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_is_quarantined() {
        let dir = scratch_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        let k = key(11);
        let path = dir.join(Store::file_name(&k.to_string()));
        fs::write(&path, r#"{"not_a_result": true}"#).unwrap();
        let mut s = Store::on_disk(&dir);
        assert!(s.lookup(&k).is_none());
        assert!(matches!(s.quarantined()[0].error, StoreError::Decode { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_files_left_behind() {
        let dir = scratch_dir("tmpfiles");
        let mut s = Store::on_disk(&dir);
        for i in 0..4 {
            s.insert(&key(i), dummy(i));
        }
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(name.ends_with(".json"), "leftover temp file {name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_distinguish_similar_keys() {
        // Sanitization maps both '|' and '/' to '_' — the hash suffix keeps
        // the file names distinct.
        assert_ne!(Store::file_name("a|b"), Store::file_name("a/b"));
    }
}
