//! A disk-backed store of simulation results.
//!
//! Experiments share runs (Fig. 5, 6, 7, 10, and Tables V/VI all consume the
//! same Baseline/DWS/DWS++ simulations), and the full paper-scale suite is
//! hours of single-core simulation — so every completed run is cached as a
//! JSON file keyed by its configuration. Re-running the suite simulates only
//! what is missing.
//!
//! In memory the cache is keyed on the typed [`ExpKey`]; the key is rendered
//! to its legacy string form only to name the file on disk, so caches written
//! by earlier versions remain readable.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use walksteal_multitenant::SimResult;
use walksteal_sim_core::Json;

use crate::key::ExpKey;

/// A cache of [`SimResult`]s, in memory and optionally on disk.
///
/// # Examples
///
/// ```
/// use walksteal_experiments::{key::ExpKey, Store};
/// use walksteal_multitenant::{PolicyPreset, SimResult};
/// use walksteal_workloads::{AppId, WorkloadPair};
///
/// let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
/// let key = ExpKey::pair(PolicyPreset::Dws, pair, "quick", 42);
/// let mut store = Store::in_memory();
/// let mut runs = 0;
/// let make = |runs: &mut u32| {
///     *runs += 1;
///     SimResult { tenants: vec![], cycles: 1, events: 0, timeline: vec![] }
/// };
/// store.get_or_run(&key, || make(&mut runs));
/// store.get_or_run(&key, || make(&mut runs));
/// assert_eq!(runs, 1); // second call was a cache hit
/// ```
#[derive(Debug)]
pub struct Store {
    dir: Option<PathBuf>,
    memory: HashMap<ExpKey, SimResult>,
    hits: u64,
    misses: u64,
}

impl Store {
    /// A store that caches only in memory (tests, quick runs).
    #[must_use]
    pub fn in_memory() -> Self {
        Store {
            dir: None,
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A store persisting results under `dir` (created on demand).
    #[must_use]
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Store {
            dir: Some(dir.into()),
            memory: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Turns a rendered key into a safe file name.
    fn file_name(key: &str) -> String {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        // Append a hash so that sanitization collisions cannot alias.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{safe}-{h:016x}.json")
    }

    fn disk_path(&self, key: &ExpKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|dir| dir.join(Self::file_name(&key.to_string())))
    }

    fn load_from_disk(&mut self, key: &ExpKey) -> Option<SimResult> {
        let path = self.disk_path(key)?;
        let text = fs::read_to_string(path).ok()?;
        let r = SimResult::from_json(&Json::parse(&text).ok()?)?;
        self.memory.insert(key.clone(), r.clone());
        Some(r)
    }

    fn persist(&self, key: &ExpKey, r: &SimResult) {
        if let (Some(dir), Some(path)) = (&self.dir, self.disk_path(key)) {
            // Cache write failures are non-fatal: the result is still valid.
            let _ = fs::create_dir_all(dir);
            let _ = fs::write(path, r.to_json().dump());
        }
    }

    /// Returns the cached result for `key` without running anything.
    ///
    /// Counts a hit when found (in memory or on disk); counts nothing when
    /// absent.
    pub fn lookup(&mut self, key: &ExpKey) -> Option<SimResult> {
        if let Some(r) = self.memory.get(key) {
            self.hits += 1;
            return Some(r.clone());
        }
        let r = self.load_from_disk(key)?;
        self.hits += 1;
        Some(r)
    }

    /// Records a freshly simulated result, counting it as a miss.
    ///
    /// This is the merge half of the parallel engine: workers simulate
    /// cache-missing jobs off-thread and the engine inserts the results in
    /// canonical job order, leaving the store exactly as if `get_or_run` had
    /// simulated each one in place.
    pub fn insert(&mut self, key: &ExpKey, r: SimResult) {
        self.misses += 1;
        self.persist(key, &r);
        self.memory.insert(key.clone(), r);
    }

    /// Returns the cached result for `key`, or computes, caches, and
    /// returns it.
    pub fn get_or_run(&mut self, key: &ExpKey, run: impl FnOnce() -> SimResult) -> SimResult {
        if let Some(r) = self.lookup(key) {
            return r;
        }
        let r = run();
        self.insert(key, r.clone());
        r
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. simulations actually run).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use walksteal_multitenant::PolicyPreset;
    use walksteal_workloads::{AppId, WorkloadPair};

    fn key(seed: u64) -> ExpKey {
        let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
        ExpKey::pair(PolicyPreset::Dws, pair, "quick", seed)
    }

    fn dummy(cycles: u64) -> SimResult {
        SimResult {
            tenants: vec![],
            cycles,
            events: 0,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn memoizes() {
        let mut s = Store::in_memory();
        let a = s.get_or_run(&key(1), || dummy(7));
        let b = s.get_or_run(&key(1), || panic!("must not re-run"));
        assert_eq!(a, b);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn distinct_keys_rerun() {
        let mut s = Store::in_memory();
        s.get_or_run(&key(1), || dummy(1));
        let b = s.get_or_run(&key(2), || dummy(2));
        assert_eq!(b.cycles, 2);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn insert_behaves_like_a_computed_run() {
        let mut s = Store::in_memory();
        s.insert(&key(1), dummy(9));
        let r = s.get_or_run(&key(1), || panic!("must not re-run"));
        assert_eq!(r.cycles, 9);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn lookup_misses_count_nothing() {
        let mut s = Store::in_memory();
        assert!(s.lookup(&key(1)).is_none());
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 0);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("walksteal-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut s = Store::on_disk(&dir);
            s.get_or_run(&key(42), || dummy(42));
        }
        {
            let mut s = Store::on_disk(&dir);
            let r = s.get_or_run(&key(42), || panic!("should load from disk"));
            assert_eq!(r.cycles, 42);
            assert_eq!(s.hits(), 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_distinguish_similar_keys() {
        // Sanitization maps both '|' and '/' to '_' — the hash suffix keeps
        // the file names distinct.
        assert_ne!(Store::file_name("a|b"), Store::file_name("a/b"));
    }
}
