//! One function per paper table/figure. See the crate docs for the index.

use std::collections::HashSet;

use walksteal_multitenant::{
    fairness, weighted_ipc, ChurnReport, GpuConfig, PolicyPreset, RunBudget, ScenarioSpec,
    SimResult, SimulationBuilder, TenantChurn, TenantResult,
};
use walksteal_sim_core::gmean;
use walksteal_vm::PageSize;
use walksteal_workloads::{
    mixes_for, named_pairs, paper_mixes3, paper_mixes4, paper_pairs, AppId, MpmiClass,
    WorkloadMix, WorkloadPair,
};

use crate::fault::FaultSpec;
use crate::key::ExpKey;
use crate::parallel::{self, Job, JobFailure, RunOptions};
use crate::report::Table;
use crate::scale::Scale;
use crate::store::Store;

/// Workload classes in presentation order.
pub const CLASSES: [&str; 6] = ["LL", "ML", "MM", "HL", "HM", "HH"];

/// The virtual-memory-sensitive classes (the paper's "32 of 45").
pub const VM_SENSITIVE: [&str; 3] = ["HL", "HM", "HH"];

/// Shared state for running experiments: the scale, the result cache, the
/// base random seed, and the degree of parallelism.
pub struct ExpContext {
    /// Simulation scale.
    pub scale: Scale,
    /// Result cache.
    pub store: Store,
    /// Base seed for workload randomness.
    pub seed: u64,
    /// When true, prints a progress line per fresh simulation.
    pub verbose: bool,
    /// Worker threads for [`ExpContext::run`] (1 = fully serial).
    pub jobs: usize,
    /// Watchdog budget applied to every simulation attempt run through the
    /// engine (unlimited by default).
    pub budget: RunBudget,
    /// Deterministic fault injection (`repro --inject-faults`); counters
    /// are consumed as faults fire.
    pub faults: Option<FaultSpec>,
    /// When set (`repro --policy`), policy sweeps are restricted to this
    /// preset plus each sweep's first preset (kept as the normalization
    /// base). Fixed-policy tables (e.g. Table III) are unaffected.
    pub policy: Option<PolicyPreset>,
    /// Every job failure recorded so far (recovered and dead).
    failures: Vec<JobFailure>,
    /// Keys whose job died (failed both attempts): answered with a
    /// placeholder instead of being re-simulated, so one dead cell cannot
    /// take down the suite or later experiments that share the key.
    dead: HashSet<ExpKey>,
    /// `Some` while a plan pass is collecting jobs (see [`ExpContext::run`]).
    plan: Option<Plan>,
}

/// Jobs collected during a plan pass.
#[derive(Default)]
struct Plan {
    seen: HashSet<ExpKey>,
    jobs: Vec<Job>,
}

/// What [`ExpContext`] answers during a plan pass: structurally valid (one
/// tenant per app, strictly positive rates so every downstream metric is
/// well-defined) but never observed — the replay pass recomputes every
/// table from real results.
fn placeholder(apps: &[AppId]) -> SimResult {
    SimResult {
        tenants: apps
            .iter()
            .map(|&app| TenantResult {
                app,
                ipc: 1.0,
                instructions: 1,
                completed_executions: 1,
                mpmi: 1.0,
                l2_tlb_misses: 0,
                mean_walk_latency: 1.0,
                mean_interleave: 0.0,
                stolen_fraction: 0.0,
                pw_share: 0.5,
                tlb_share: 0.5,
            })
            .collect(),
        cycles: 1,
        events: 0,
        timeline: Vec::new(),
        churn: None,
    }
}

/// The scenario-run placeholder: [`placeholder`] plus a structurally valid
/// churn report (every tenant resident for the whole 1-cycle run), so churn
/// tables can read `SimResult::churn` unconditionally during a plan pass.
fn placeholder_churn(apps: &[AppId]) -> SimResult {
    let mut r = placeholder(apps);
    r.churn = Some(ChurnReport {
        tenants: apps
            .iter()
            .map(|_| TenantChurn {
                arrived: Some(0),
                departed: None,
                evicted: false,
                slo_target: None,
                slo_checks: 0,
                slo_met: 0,
                throttled_checks: 0,
                cancelled_walks: 0,
                lifetime_instructions: 1,
                lifetime_cycles: 1,
            })
            .collect(),
        evictions: 0,
        repartitions: 0,
        throttles: 0,
    });
    r
}

impl ExpContext {
    /// Creates a (serial) context.
    #[must_use]
    pub fn new(scale: Scale, store: Store) -> Self {
        ExpContext {
            scale,
            store,
            seed: 42,
            verbose: false,
            jobs: 1,
            budget: RunBudget::unlimited(),
            faults: None,
            policy: None,
            failures: Vec::new(),
            dead: HashSet::new(),
            plan: None,
        }
    }

    /// Every job failure recorded so far (recovered and dead), in the order
    /// the engine observed them.
    #[must_use]
    pub fn failures(&self) -> &[JobFailure] {
        &self.failures
    }

    /// Whether any job died (failed both attempts) with a blown budget.
    #[must_use]
    pub fn any_budget_death(&self) -> bool {
        self.failures
            .iter()
            .any(|f| !f.recovered && matches!(f.error, parallel::JobError::Budget(_)))
    }

    /// Whether the engine must take the planned (plan/execute/replay) path:
    /// always with parallelism, and whenever failure isolation is in play —
    /// the planned path is where `catch_unwind`, budgets, retries, and
    /// injected faults live.
    fn planned(&self) -> bool {
        self.jobs > 1 || self.faults.is_some() || !self.budget.is_unlimited()
    }

    /// Runs `f` with the configured parallelism.
    ///
    /// Plain serial contexts run `f(self)` directly. Otherwise `f` is first
    /// replayed in *plan* mode — every cache-missing simulation is recorded
    /// as a [`Job`] and answered with a placeholder — the collected jobs run
    /// on the work-stealing pool (see [`parallel::run_jobs`]), and `f` runs
    /// once more against the now-warm cache. Everything `f` returns comes
    /// from that second pass, so the output is bit-identical to a serial
    /// run. `f` must request the same simulations on both passes; it can
    /// read the placeholder results, just not branch the *job set* on them
    /// (no experiment does — the evaluation matrix is fixed up front).
    ///
    /// Job failures survive the pass: a failing job is retried once, a job
    /// dead after the retry is recorded in [`failures`](Self::failures) and
    /// its key answered with a placeholder on the replay, so the suite
    /// completes with the failures itemized instead of dying.
    pub fn run<T>(&mut self, f: impl Fn(&mut ExpContext) -> T) -> T {
        if self.planned() {
            self.plan = Some(Plan::default());
            let _ = f(self);
            let plan = self.plan.take().expect("plan mode set above");
            // A fully cached plan has nothing to execute: answer it from
            // the store without touching the pool or the fault plan.
            if !plan.jobs.is_empty() {
                let opts = RunOptions {
                    verbose: self.verbose,
                    budget: self.budget,
                    faults: self
                        .faults
                        .as_mut()
                        .map(|s| s.take_plan(plan.jobs.len()))
                        .unwrap_or_default(),
                };
                let report = parallel::run_jobs(&mut self.store, &plan.jobs, self.jobs, &opts);
                for failure in report.failures {
                    if !failure.recovered {
                        self.dead.insert(failure.key.clone());
                    }
                    self.failures.push(failure);
                }
            }
        }
        f(self)
    }

    fn run_apps(&mut self, key: ExpKey, cfg: GpuConfig, apps: &[AppId]) -> SimResult {
        if self.dead.contains(&key) {
            // The job failed both attempts; a placeholder keeps the table
            // well-formed (the failure summary marks the affected rows).
            return placeholder(apps);
        }
        if self.plan.is_some() {
            if let Some(r) = self.store.lookup(&key) {
                return r;
            }
            let plan = self.plan.as_mut().expect("checked above");
            if plan.seen.insert(key.clone()) {
                plan.jobs.push(Job {
                    key,
                    cfg,
                    apps: apps.to_vec(),
                    seed: self.seed,
                    scenario: None,
                });
            }
            return placeholder(apps);
        }
        let seed = self.seed;
        let verbose = self.verbose;
        self.store.get_or_run(&key, || {
            if verbose {
                eprintln!("  sim: {key}");
            }
            SimulationBuilder::new()
                .config(cfg)
                .tenants(apps.iter().copied())
                .seed(seed)
                .build()
                .run()
        })
    }

    /// Runs (or recalls) a churn scenario under `cfg`. The key's apps must
    /// list the scenario's arrivals in arrival order. `seed` is explicit
    /// (rather than `self.seed`) because churn rows sweep the plan seed,
    /// and the simulation seed must match the plan that generated the
    /// timeline.
    pub fn scenario_run(
        &mut self,
        key: ExpKey,
        cfg: GpuConfig,
        spec: &ScenarioSpec,
        seed: u64,
    ) -> SimResult {
        if self.dead.contains(&key) {
            return placeholder_churn(&key.apps());
        }
        if self.plan.is_some() {
            if let Some(r) = self.store.lookup(&key) {
                return r;
            }
            let plan = self.plan.as_mut().expect("checked above");
            if plan.seen.insert(key.clone()) {
                plan.jobs.push(Job {
                    apps: key.apps(),
                    key: key.clone(),
                    cfg,
                    seed,
                    scenario: Some(spec.clone()),
                });
            }
            return placeholder_churn(&key.apps());
        }
        let verbose = self.verbose;
        let spec = spec.clone();
        self.store.get_or_run(&key, || {
            if verbose {
                eprintln!("  sim: {key}");
            }
            SimulationBuilder::new()
                .config(cfg)
                .scenario(spec)
                .seed(seed)
                .build()
                .run()
        })
    }

    /// Runs (or recalls) `pair` under `preset` at this scale.
    pub fn pair(&mut self, preset: PolicyPreset, pair: WorkloadPair) -> SimResult {
        let cfg = self.scale.base_config().for_tenants(2).with_preset(preset);
        let key = ExpKey::pair(preset, pair, self.scale.label(), self.seed);
        self.run_apps(key, cfg, &pair.apps())
    }

    /// Runs `pair` under a custom configuration (`label` must uniquely
    /// describe the tweaks relative to [`ExpContext::pair`]).
    pub fn pair_with(&mut self, label: &str, cfg: GpuConfig, pair: WorkloadPair) -> SimResult {
        let key = ExpKey::custom(label, pair, self.scale.label(), self.seed);
        self.run_apps(key, cfg, &pair.apps())
    }

    /// Stand-alone run of `app` on the baseline, with the SM share it would
    /// get among `share_of` tenants and the whole memory system to itself
    /// (§IV's IPC^SA).
    ///
    /// The stand-alone execution budget is tripled: a co-running tenant's
    /// IPC is averaged over many (warm) relaunched executions, so the solo
    /// reference must amortize its one-time compulsory misses the same way
    /// or slowdowns come out below 1.
    pub fn standalone(&mut self, app: AppId, share_of: usize) -> SimResult {
        let sms = self.scale.sms_per_tenant(share_of);
        let base = self.scale.base_config();
        let budget = base.instructions_per_warp * 3;
        let cfg = base
            .with_n_sms(sms)
            .with_instructions_per_warp(budget)
            .for_tenants(1)
            .with_preset(PolicyPreset::Baseline);
        let key = ExpKey::solo(app, sms, self.scale.label(), self.seed);
        self.run_apps(key, cfg, &[app])
    }

    /// The presets a policy sweep should run: `defaults` as-is, or — when
    /// a [`policy`](Self::policy) filter is set — the sweep's first preset
    /// (the normalization base) plus the filtered policy, in sweep order.
    /// A filter naming a preset the sweep does not compare leaves just the
    /// base, so the table stays well-formed.
    #[must_use]
    pub fn presets(&self, defaults: &[PolicyPreset]) -> Vec<PolicyPreset> {
        let Some(filter) = self.policy else {
            return defaults.to_vec();
        };
        defaults
            .iter()
            .enumerate()
            .filter(|&(i, &p)| i == 0 || p == filter)
            .map(|(_, &p)| p)
            .collect()
    }

    /// Stand-alone IPCs for both constituents of `pair`.
    pub fn standalone_ipcs(&mut self, pair: WorkloadPair) -> [f64; 2] {
        [
            self.standalone(pair.a, 2).tenants[0].ipc,
            self.standalone(pair.b, 2).tenants[0].ipc,
        ]
    }

    /// Stand-alone IPC of every constituent of `apps`, each on the SM share
    /// it would get among `apps.len()` tenants — the N-tenant
    /// generalization of [`standalone_ipcs`](Self::standalone_ipcs).
    pub fn standalone_ipcs_for(&mut self, apps: &[AppId]) -> Vec<f64> {
        let n = apps.len();
        apps.iter()
            .map(|&app| self.standalone(app, n).tenants[0].ipc)
            .collect()
    }

    /// The canonical `n`-tenant scenario configuration under `preset` (the
    /// machine Fig. 13 runs): every tenant gets its even SM share, and the
    /// walker count is Table I's 16 rounded up to split evenly.
    #[must_use]
    pub fn tenant_config(&self, n: usize, preset: PolicyPreset) -> GpuConfig {
        self.scale
            .base_config()
            .with_n_sms(self.scale.sms_per_tenant(n) * n)
            .with_walkers(walkers_for_tenants(n))
            .for_tenants(n)
            .with_preset(preset)
    }

    /// Runs (or recalls) `mix` under `preset` at the canonical
    /// [`tenant_config`](Self::tenant_config). Two-tenant mixes route
    /// through [`pair`](Self::pair) (same config, same cache keys); larger
    /// mixes share their cache entries with Fig. 13.
    pub fn mix(&mut self, preset: PolicyPreset, mix: &WorkloadMix) -> SimResult {
        if let Some(pair) = mix.as_pair() {
            return self.pair(preset, pair);
        }
        let cfg = self.tenant_config(mix.n_tenants(), preset);
        let key = ExpKey::multi(preset, mix.apps(), self.scale.label(), self.seed);
        self.run_apps(key, cfg, mix.apps())
    }

    /// Runs `mix` under a custom configuration (`label` must uniquely
    /// describe the tweaks) — the N-tenant generalization of
    /// [`pair_with`](Self::pair_with).
    pub fn mix_with(&mut self, label: &str, cfg: GpuConfig, mix: &WorkloadMix) -> SimResult {
        let key = ExpKey::custom_mix(label, mix.apps(), self.scale.label(), self.seed);
        self.run_apps(key, cfg, mix.apps())
    }
}

/// Walker count for an `n`-tenant run: Table I's 16 walkers, rounded up to
/// the nearest multiple of `n` so a partitioned policy splits them evenly
/// (18 for three tenants — paper §VII.F).
#[must_use]
pub fn walkers_for_tenants(n: usize) -> usize {
    16usize.div_ceil(n) * n
}

/// Validates a CLI-requested tenant count against the scenario engine:
/// curated mixes exist for it, and the canonical configuration splits
/// cleanly under every compared preset. Errors are diagnostics for the
/// `repro --tenants` flag.
pub fn validate_tenants(scale: Scale, n: usize) -> Result<(), String> {
    if mixes_for(n).is_empty() {
        return Err(format!(
            "no curated workload mixes for {n} tenants (supported: 2, 3, 4)"
        ));
    }
    for preset in SCENARIO_PRESETS {
        scale
            .base_config()
            .with_n_sms(scale.sms_per_tenant(n) * n)
            .with_walkers(walkers_for_tenants(n))
            .try_for_tenants(n)
            .map_err(|e| e.to_string())?
            .try_with_preset(preset)
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The presets every scenario-engine table compares (the paper's headline
/// trio).
pub const SCENARIO_PRESETS: [PolicyPreset; 3] = [
    PolicyPreset::Baseline,
    PolicyPreset::Dws,
    PolicyPreset::DwsPlusPlus,
];

/// Appends per-class and overall gmean summary rows to a per-pair metric
/// table. `values[pair][column]`.
fn summarize(table: &mut Table, pairs: &[WorkloadPair], values: &[Vec<f64>]) {
    let n_cols = values.first().map_or(0, Vec::len);
    for class in CLASSES {
        let rows: Vec<&Vec<f64>> = pairs
            .iter()
            .zip(values)
            .filter(|(p, _)| p.class() == class)
            .map(|(_, v)| v)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let means: Vec<f64> = (0..n_cols)
            .map(|c| gmean(&rows.iter().map(|v| v[c]).collect::<Vec<_>>()))
            .collect();
        table.row(&format!("gmean {class}"), &means);
    }
    let all: Vec<f64> = (0..n_cols)
        .map(|c| gmean(&values.iter().map(|v| v[c]).collect::<Vec<_>>()))
        .collect();
    table.row("gmean ALL", &all);
    let vm: Vec<&Vec<f64>> = pairs
        .iter()
        .zip(values)
        .filter(|(p, _)| p.is_vm_sensitive())
        .map(|(_, v)| v)
        .collect();
    let vm_means: Vec<f64> = (0..n_cols)
        .map(|c| gmean(&vm.iter().map(|v| v[c]).collect::<Vec<_>>()))
        .collect();
    table.row("gmean HL+HM+HH", &vm_means);
}

/// Generic per-pair sweep: runs every paper pair under `presets` and
/// tabulates `metric(run, standalone_ipcs)` normalized (or not) per pair.
fn sweep(
    ctx: &mut ExpContext,
    title: &str,
    presets: &[PolicyPreset],
    normalize_to_first: bool,
    metric: impl Fn(&SimResult, &[f64; 2]) -> f64,
) -> Table {
    let presets = &ctx.presets(presets)[..];
    let pairs = paper_pairs();
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut table = Table::new(title, &columns);
    let mut all_values = Vec::with_capacity(pairs.len());
    for &pair in &pairs {
        let sa = ctx.standalone_ipcs(pair);
        let mut vals: Vec<f64> = presets
            .iter()
            .map(|&preset| metric(&ctx.pair(preset, pair), &sa))
            .collect();
        if normalize_to_first {
            let base = vals[0];
            for v in &mut vals {
                *v /= base;
            }
        }
        table.row(&format!("{pair} [{}]", pair.class()), &vals);
        all_values.push(vals);
    }
    summarize(&mut table, &pairs, &all_values);
    table
}

/// Fig. 2: total IPC of Baseline, S-TLB, and S-(TLB+PTW), normalized to the
/// baseline.
pub fn fig2(ctx: &mut ExpContext) -> Table {
    sweep(
        ctx,
        "Fig. 2: Total IPC (normalized to Baseline)",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::STlb,
            PolicyPreset::STlbPtw,
        ],
        true,
        |run, _| run.total_ipc(),
    )
}

/// Fig. 3: weighted IPC of Baseline, S-TLB, and S-(TLB+PTW) (absolute;
/// range 0..2).
pub fn fig3(ctx: &mut ExpContext) -> Table {
    sweep(
        ctx,
        "Fig. 3: Weighted IPC",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::STlb,
            PolicyPreset::STlbPtw,
        ],
        false,
        |run, sa| weighted_ipc(run, sa),
    )
}

/// Table III: baseline interleaving — walks of the other tenant that one
/// tenant's walk waits for, for the named representative pairs and per-class
/// means.
pub fn tab3(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Table III: Interleaving of page walks (Baseline)",
        &["Tenant 1", "Tenant 2", "Average"],
    );
    for (class, pair) in named_pairs() {
        let r = ctx.pair(PolicyPreset::Baseline, pair);
        let t1 = r.tenants[0].mean_interleave;
        let t2 = r.tenants[1].mean_interleave;
        table.row(&format!("{class} {pair}"), &[t1, t2, (t1 + t2) / 2.0]);
    }
    // Class means over the full 45-pair set.
    for class in CLASSES {
        let mut t1s = Vec::new();
        let mut t2s = Vec::new();
        for pair in paper_pairs().into_iter().filter(|p| p.class() == class) {
            let r = ctx.pair(PolicyPreset::Baseline, pair);
            t1s.push(r.tenants[0].mean_interleave);
            t2s.push(r.tenants[1].mean_interleave);
        }
        let (m1, m2) = (
            t1s.iter().sum::<f64>() / t1s.len() as f64,
            t2s.iter().sum::<f64>() / t2s.len() as f64,
        );
        table.row(&format!("mean {class}"), &[m1, m2, (m1 + m2) / 2.0]);
    }
    table
}

/// §IV: doubled baseline resources (2048-entry TLB + 32 walkers) vs
/// S-(TLB+PTW) — interference, not capacity, is the limiter.
pub fn doubling(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "SecIV: 2x resources vs S-(TLB+PTW) (total IPC normalized to Baseline)",
        &["Baseline", "Baseline-2x", "S-(TLB+PTW)"],
    );
    let pairs = paper_pairs();
    let mut all = Vec::new();
    for &pair in &pairs {
        let base = ctx.pair(PolicyPreset::Baseline, pair).total_ipc();
        let twox = ctx.pair(PolicyPreset::DoubledBaseline, pair).total_ipc();
        let ideal = ctx.pair(PolicyPreset::STlbPtw, pair).total_ipc();
        all.push(vec![1.0, twox / base, ideal / base]);
    }
    summarize(&mut table, &pairs, &all);
    table
}

/// Fig. 5: throughput (total IPC) of Baseline, DWS, and DWS++, normalized.
pub fn fig5(ctx: &mut ExpContext) -> Table {
    sweep(
        ctx,
        "Fig. 5: Throughput (total IPC, normalized to Baseline)",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::Dws,
            PolicyPreset::DwsPlusPlus,
        ],
        true,
        |run, _| run.total_ipc(),
    )
}

/// Fig. 6: fairness (min slowdown / max slowdown) of Baseline, DWS, DWS++.
pub fn fig6(ctx: &mut ExpContext) -> Table {
    sweep(
        ctx,
        "Fig. 6: Fairness (higher is better)",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::Dws,
            PolicyPreset::DwsPlusPlus,
        ],
        false,
        |run, sa| fairness(run, sa),
    )
}

/// Fig. 7: weighted IPC of Baseline, DWS, and DWS++.
pub fn fig7(ctx: &mut ExpContext) -> Table {
    sweep(
        ctx,
        "Fig. 7: Weighted IPC",
        &[
            PolicyPreset::Baseline,
            PolicyPreset::Dws,
            PolicyPreset::DwsPlusPlus,
        ],
        false,
        |run, sa| weighted_ipc(run, sa),
    )
}

/// Table V: interleaving under Baseline, DWS, and DWS++ for the named pairs.
pub fn tab5(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Table V: Interleaving in Baseline, DWS, and DWS++",
        &[
            "Base T1", "Base T2", "DWS T1", "DWS T2", "DWS++ T1", "DWS++ T2",
        ],
    );
    for (class, pair) in named_pairs() {
        let b = ctx.pair(PolicyPreset::Baseline, pair);
        let d = ctx.pair(PolicyPreset::Dws, pair);
        let p = ctx.pair(PolicyPreset::DwsPlusPlus, pair);
        table.row(
            &format!("{class} {pair}"),
            &[
                b.tenants[0].mean_interleave,
                b.tenants[1].mean_interleave,
                d.tenants[0].mean_interleave,
                d.tenants[1].mean_interleave,
                p.tenants[0].mean_interleave,
                p.tenants[1].mean_interleave,
            ],
        );
    }
    table
}

/// Table VI: percentage of each tenant's walks serviced by stealing.
pub fn tab6(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Table VI: % of walks serviced by stealing",
        &["DWS T1", "DWS T2", "DWS++ T1", "DWS++ T2"],
    );
    for (class, pair) in named_pairs() {
        let d = ctx.pair(PolicyPreset::Dws, pair);
        let p = ctx.pair(PolicyPreset::DwsPlusPlus, pair);
        table.row(
            &format!("{class} {pair}"),
            &[
                d.tenants[0].stolen_fraction * 100.0,
                d.tenants[1].stolen_fraction * 100.0,
                p.tenants[0].stolen_fraction * 100.0,
                p.tenants[1].stolen_fraction * 100.0,
            ],
        );
    }
    table
}

/// Fig. 8: per-class gmean of each tenant's walk latency normalized to its
/// stand-alone walk latency, under Baseline / DWS / DWS++.
pub fn fig8(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Fig. 8: Walk latency (normalized to standalone)",
        &[
            "Base T1", "Base T2", "DWS T1", "DWS T2", "DWS++ T1", "DWS++ T2",
        ],
    );
    let presets = [
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ];
    for class in CLASSES {
        let pairs: Vec<WorkloadPair> = paper_pairs()
            .into_iter()
            .filter(|p| p.class() == class)
            .collect();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for &pair in &pairs {
            let sa = [
                ctx.standalone(pair.a, 2).tenants[0].mean_walk_latency,
                ctx.standalone(pair.b, 2).tenants[0].mean_walk_latency,
            ];
            for (pi, &preset) in presets.iter().enumerate() {
                let r = ctx.pair(preset, pair);
                for t in 0..2 {
                    if sa[t] > 0.0 && r.tenants[t].mean_walk_latency > 0.0 {
                        cols[pi * 2 + t].push(r.tenants[t].mean_walk_latency / sa[t]);
                    }
                }
            }
        }
        let row: Vec<f64> = cols.iter().map(|c| gmean(c)).collect();
        table.row(class, &row);
    }
    table
}

/// Fig. 9: page-walker share and TLB share per tenant, Baseline vs DWS, for
/// the paper's two representative pairs (3DS & BLK; SAD & MM).
pub fn fig9(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Fig. 9: PW share vs TLB share (Baseline -> DWS)",
        &["PW base", "PW DWS", "TLB base", "TLB DWS"],
    );
    for pair in [
        WorkloadPair::new(AppId::Blk, AppId::Tds),
        WorkloadPair::new(AppId::Sad, AppId::Mm),
    ] {
        let b = ctx.pair(PolicyPreset::Baseline, pair);
        let d = ctx.pair(PolicyPreset::Dws, pair);
        for t in 0..2 {
            let app = pair.apps()[t];
            table.row(
                &format!("{pair}:{app}"),
                &[
                    b.tenants[t].pw_share,
                    d.tenants[t].pw_share,
                    b.tenants[t].tlb_share,
                    d.tenants[t].tlb_share,
                ],
            );
        }
    }
    table
}

/// Fig. 10: the DWS++ aggressiveness knob — per-class gmean fairness (a)
/// and throughput (b) for conservative / default / aggressive parameters.
pub fn fig10(ctx: &mut ExpContext) -> Vec<Table> {
    let presets = ctx.presets(&[
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlusConservative,
        PolicyPreset::DwsPlusPlus,
        PolicyPreset::DwsPlusPlusAggressive,
    ]);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut fair_t = Table::new("Fig. 10a: Fairness by class", &columns);
    let mut thr_t = Table::new(
        "Fig. 10b: Throughput by class (normalized to Baseline)",
        &columns,
    );
    let mut all_fair: Vec<Vec<f64>> = Vec::new();
    let mut all_thr: Vec<Vec<f64>> = Vec::new();
    let pairs = paper_pairs();
    for &pair in &pairs {
        let sa = ctx.standalone_ipcs(pair);
        let runs: Vec<SimResult> = presets.iter().map(|&p| ctx.pair(p, pair)).collect();
        all_fair.push(runs.iter().map(|r| fairness(r, &sa)).collect());
        let base = runs[0].total_ipc();
        all_thr.push(runs.iter().map(|r| r.total_ipc() / base).collect());
    }
    for class in CLASSES.iter().chain(["All"].iter()) {
        let idx: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| *class == "All" || p.class() == *class)
            .map(|(i, _)| i)
            .collect();
        let fair_row: Vec<f64> = (0..presets.len())
            .map(|c| gmean(&idx.iter().map(|&i| all_fair[i][c]).collect::<Vec<_>>()))
            .collect();
        let thr_row: Vec<f64> = (0..presets.len())
            .map(|c| gmean(&idx.iter().map(|&i| all_thr[i][c]).collect::<Vec<_>>()))
            .collect();
        fair_t.row(class, &fair_row);
        thr_t.row(class, &thr_row);
    }
    vec![fair_t, thr_t]
}

/// Fig. 11: per-class throughput of Baseline, Static partitioning, MASK,
/// DWS, and MASK+DWS.
pub fn fig11(ctx: &mut ExpContext) -> Table {
    let presets = ctx.presets(&[
        PolicyPreset::Baseline,
        PolicyPreset::StaticPartition,
        PolicyPreset::Mask,
        PolicyPreset::Dws,
        PolicyPreset::MaskDws,
    ]);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Fig. 11: Comparison with alternatives (total IPC, normalized)",
        &columns,
    );
    let pairs = paper_pairs();
    let mut per_pair: Vec<Vec<f64>> = Vec::new();
    for &pair in &pairs {
        let runs: Vec<f64> = presets
            .iter()
            .map(|&p| ctx.pair(p, pair).total_ipc())
            .collect();
        per_pair.push(runs.iter().map(|&v| v / runs[0]).collect());
    }
    for class in CLASSES.iter().chain(["All"].iter()) {
        let idx: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| *class == "All" || p.class() == *class)
            .map(|(i, _)| i)
            .collect();
        let row: Vec<f64> = (0..presets.len())
            .map(|c| gmean(&idx.iter().map(|&i| per_pair[i][c]).collect::<Vec<_>>()))
            .collect();
        table.row(class, &row);
    }
    table
}

/// Fig. 12: DWS's improvement over a baseline with the *same* resources,
/// sweeping the L2 TLB size and the number of walkers (named pairs).
pub fn fig12(ctx: &mut ExpContext) -> Table {
    // (label, l2 entries, walkers)
    let configs: [(&str, usize, usize); 6] = [
        ("512e", 512, 16),
        ("1024e/16w", 1024, 16),
        ("2048e", 2048, 16),
        ("12w", 1024, 12),
        ("24w", 1024, 24),
        ("2048e+24w", 2048, 24),
    ];
    let columns: Vec<&str> = configs.iter().map(|(l, _, _)| *l).collect();
    let mut table = Table::new("Fig. 12: DWS speedup vs same-resource baseline", &columns);
    let pairs: Vec<(&str, WorkloadPair)> = named_pairs();
    let mut per_pair: Vec<Vec<f64>> = Vec::new();
    for &(_, pair) in &pairs {
        let mut row = Vec::new();
        for &(label, entries, walkers) in &configs {
            let make = |preset: PolicyPreset, ctx: &mut ExpContext| {
                let cfg = ctx
                    .scale
                    .base_config()
                    .with_l2_tlb_entries(entries)
                    .with_walkers(walkers)
                    .for_tenants(2)
                    .with_preset(preset);
                ctx.pair_with(&format!("f12|{label}|{}", preset.label()), cfg, pair)
            };
            let base = make(PolicyPreset::Baseline, ctx).total_ipc();
            let dws = make(PolicyPreset::Dws, ctx).total_ipc();
            row.push(dws / base);
        }
        per_pair.push(row);
    }
    for class in CLASSES.iter().chain(["All"].iter()) {
        let idx: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *class == "All" || c == class)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let row: Vec<f64> = (0..configs.len())
            .map(|c| gmean(&idx.iter().map(|&i| per_pair[i][c]).collect::<Vec<_>>()))
            .collect();
        table.row(class, &row);
    }
    table
}

/// The 14 three- and four-tenant combinations of Fig. 13 (the curated
/// [`paper_mixes3`] set followed by [`paper_mixes4`]).
#[must_use]
pub fn fig13_combos() -> Vec<Vec<AppId>> {
    paper_mixes3()
        .iter()
        .chain(paper_mixes4().iter())
        .map(|m| m.apps().to_vec())
        .collect()
}

/// Fig. 13: throughput with three and four tenants, normalized to baseline.
/// Walkers are adjusted to divide evenly (18 for three tenants, paper §VII.F).
pub fn fig13(ctx: &mut ExpContext) -> Table {
    let presets = ctx.presets(&SCENARIO_PRESETS);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut table = Table::new(
        "Fig. 13: Three and four tenants (total IPC, normalized)",
        &columns,
    );
    let mut all: Vec<Vec<f64>> = Vec::new();
    for mix in paper_mixes3().iter().chain(paper_mixes4().iter()) {
        let vals: Vec<f64> = presets
            .iter()
            .map(|&preset| ctx.mix(preset, mix).total_ipc())
            .collect();
        let base = vals[0];
        let row: Vec<f64> = vals.iter().map(|v| v / base).collect();
        table.row(&mix.to_string(), &row);
        all.push(row);
    }
    let g: Vec<f64> = (0..presets.len())
        .map(|c| gmean(&all.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    table.row("gmean", &g);
    table
}

/// Scenario table (`tenants3` / `tenants4`): every curated `n`-tenant mix
/// under the headline presets — total IPC normalized to Baseline plus
/// fairness against the mix's stand-alone references — with gmean rows over
/// all mixes and the VM-sensitive subset.
pub fn tenants_n(ctx: &mut ExpContext, n: usize) -> Table {
    let presets = ctx.presets(&SCENARIO_PRESETS);
    let columns: Vec<String> = presets
        .iter()
        .map(|p| format!("IPC {}", p.label()))
        .chain(presets.iter().map(|p| format!("Fair {}", p.label())))
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Scenario: {n} tenants (total IPC normalized to Baseline; fairness)"),
        &column_refs,
    );
    let mixes = mixes_for(n);
    let mut all: Vec<Vec<f64>> = Vec::new();
    for mix in &mixes {
        let sa = ctx.standalone_ipcs_for(mix.apps());
        let runs: Vec<SimResult> = presets.iter().map(|&p| ctx.mix(p, mix)).collect();
        let base = runs[0].total_ipc();
        let vals: Vec<f64> = runs
            .iter()
            .map(|r| r.total_ipc() / base)
            .chain(runs.iter().map(|r| fairness(r, &sa)))
            .collect();
        table.row(&format!("{mix} [{}]", mix.class()), &vals);
        all.push(vals);
    }
    let gmean_over = |rows: &[&Vec<f64>]| -> Vec<f64> {
        (0..columns.len())
            .map(|c| gmean(&rows.iter().map(|v| v[c]).collect::<Vec<_>>()))
            .collect()
    };
    table.row("gmean ALL", &gmean_over(&all.iter().collect::<Vec<_>>()));
    let vm: Vec<&Vec<f64>> = mixes
        .iter()
        .zip(&all)
        .filter(|(m, _)| m.is_vm_sensitive())
        .map(|(_, v)| v)
        .collect();
    if !vm.is_empty() {
        table.row("gmean VM-sensitive", &gmean_over(&vm));
    }
    table
}

/// The three-tenant scenario table.
pub fn tenants3(ctx: &mut ExpContext) -> Table {
    tenants_n(ctx, 3)
}

/// The four-tenant scenario table.
pub fn tenants4(ctx: &mut ExpContext) -> Table {
    tenants_n(ctx, 4)
}

/// Fig. 14: 64 KB large pages — DWS still helps.
pub fn fig14(ctx: &mut ExpContext) -> Table {
    let presets = ctx.presets(&[
        PolicyPreset::Baseline,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
    ]);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let mut table = Table::new("Fig. 14: Throughput with 64KB pages (normalized)", &columns);
    let pairs: Vec<WorkloadPair> = named_pairs()
        .into_iter()
        .filter(|(c, _)| VM_SENSITIVE.contains(c))
        .map(|(_, p)| p)
        .collect();
    let mut all: Vec<Vec<f64>> = Vec::new();
    for pair in pairs {
        let mut vals = Vec::new();
        for &preset in &presets {
            let cfg = ctx
                .scale
                .base_config()
                .with_page_size(PageSize::Large64K)
                .for_tenants(2)
                .with_preset(preset);
            let r = ctx.pair_with(&format!("f14|{}", preset.label()), cfg, pair);
            vals.push(r.total_ipc());
        }
        let base = vals[0];
        let row: Vec<f64> = vals.iter().map(|v| v / base).collect();
        table.row(&pair.to_string(), &row);
        all.push(row);
    }
    let g: Vec<f64> = (0..3)
        .map(|c| gmean(&all.iter().map(|r| r[c]).collect::<Vec<_>>()))
        .collect();
    table.row("gmean", &g);
    table
}

/// Ablation (DESIGN.md SS3.5b): the DWS steal-eligibility test. The paper's
/// literal `PEND_WALKS == 0` (counts in-service walks; our default) vs the
/// relaxed queued-walks-only reading. The relaxed test steals far more,
/// recovering utilization but erasing the walker/TLB share shift of Fig. 9.
pub fn ablation_pend_check(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Ablation: strict vs relaxed DWS steal test",
        &[
            "thr strict",
            "thr relaxed",
            "steal% strict",
            "steal% relaxed",
            "T1 pw strict",
            "T1 pw relaxed",
        ],
    );
    for (class, pair) in named_pairs() {
        if !VM_SENSITIVE.contains(&class) {
            continue;
        }
        let base = ctx.pair(PolicyPreset::Baseline, pair).total_ipc();
        let strict = ctx.pair(PolicyPreset::Dws, pair);
        let mut cfg = ctx
            .scale
            .base_config()
            .for_tenants(2)
            .with_preset(PolicyPreset::Dws);
        cfg.walk.strict_pend_check = false;
        let relaxed = ctx.pair_with("ablate-relaxed", cfg, pair);
        let steal_pct = |r: &SimResult| {
            100.0 * r.tenants.iter().map(|t| t.stolen_fraction).sum::<f64>()
                / r.tenants.len() as f64
        };
        table.row(
            &format!("{class} {pair}"),
            &[
                strict.total_ipc() / base,
                relaxed.total_ipc() / base,
                steal_pct(&strict),
                steal_pct(&relaxed),
                strict.tenants[0].pw_share,
                relaxed.tenants[0].pw_share,
            ],
        );
    }
    table
}

/// Table II calibration: stand-alone MPMI of every modeled application,
/// with its class bounds.
pub fn calibration(ctx: &mut ExpContext) -> Table {
    let mut table = Table::new(
        "Table II calibration: standalone L2-TLB MPMI",
        &["MPMI", "band lo", "band hi"],
    );
    for app in AppId::ALL {
        let r = ctx.standalone(app, 2);
        let (lo, hi) = match app.class() {
            MpmiClass::Light => (0.0, 25.0),
            MpmiClass::Medium => (25.0, 80.0),
            MpmiClass::Heavy => (80.0, f64::INFINITY),
        };
        table.row(
            &format!("{} ({})", app, app.class()),
            &[r.tenants[0].mpmi, lo, hi],
        );
    }
    table
}

/// Every experiment, in paper order.
pub fn all(ctx: &mut ExpContext) -> Vec<Table> {
    let mut out = vec![
        calibration(ctx),
        fig2(ctx),
        fig3(ctx),
        tab3(ctx),
        doubling(ctx),
    ];
    out.push(fig5(ctx));
    out.push(fig6(ctx));
    out.push(fig7(ctx));
    out.push(tab5(ctx));
    out.push(tab6(ctx));
    out.push(fig8(ctx));
    out.push(fig9(ctx));
    out.extend(fig10(ctx));
    out.push(fig11(ctx));
    out.push(fig12(ctx));
    out.push(fig13(ctx));
    out.push(fig14(ctx));
    out.push(ablation_pend_check(ctx));
    out
}

/// Every simulation the full suite would run at `scale` with `seed`, as
/// [`Job`]s, without running any of them: a plan pass of [`all`] against an
/// empty in-memory store records each cache miss — which, with an empty
/// store, is every simulation. This is the suite's ground-truth job list
/// for cache auditing (`repro --verify-cache`).
#[must_use]
pub fn planned_jobs(scale: Scale, seed: u64) -> Vec<Job> {
    let mut ctx = ExpContext::new(scale, Store::in_memory());
    ctx.seed = seed;
    ctx.plan = Some(Plan::default());
    let _ = all(&mut ctx);
    ctx.plan.take().expect("plan mode set above").jobs
}

/// What [`verify_cache`] found.
#[derive(Debug, Default)]
pub struct CacheAudit {
    /// Simulations the full suite plans at this scale.
    pub planned: usize,
    /// Planned keys present in the cache.
    pub cached: usize,
    /// Cached entries re-simulated and compared.
    pub checked: usize,
    /// Planned keys absent from the cache (not an error: the cache may be
    /// partial).
    pub absent: usize,
    /// Cached entries whose re-simulation no longer matches byte-for-byte —
    /// stale results from an older simulator or a corrupted store.
    pub stale: Vec<ExpKey>,
}

/// Audits an on-disk result cache against the current simulator:
/// re-simulates a seeded random sample of up to `sample` cached suite
/// results at `scale` and compares each against its cached value
/// byte-for-byte (via the JSON serialization, the cache's own format).
/// `sample_seed` picks which entries are sampled — the same seed always
/// audits the same entries.
#[must_use]
pub fn verify_cache(
    scale: Scale,
    cache_dir: &std::path::Path,
    sample: usize,
    sample_seed: u64,
    verbose: bool,
) -> CacheAudit {
    let jobs = planned_jobs(scale, 42);
    let mut audit = CacheAudit {
        planned: jobs.len(),
        ..CacheAudit::default()
    };
    let mut store = Store::on_disk(cache_dir);
    audit.cached = jobs.iter().filter(|j| store.lookup(&j.key).is_some()).count();

    // Fisher–Yates shuffle of the job indices, so the sample is uniform
    // and deterministic in `sample_seed`.
    let mut rng = walksteal_sim_core::SimRng::new(sample_seed).split(0xCAC4E);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }

    for idx in order {
        if audit.checked >= sample {
            break;
        }
        let job = &jobs[idx];
        let Some(cached) = store.lookup(&job.key) else {
            audit.absent += 1;
            continue;
        };
        if verbose {
            eprintln!("  verify: {}", job.key);
        }
        let fresh = job.simulate();
        audit.checked += 1;
        if fresh.to_json().dump() != cached.to_json().dump() {
            audit.stale.push(job.key.clone());
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, Store::in_memory())
    }

    #[test]
    fn fig9_has_four_tenant_rows() {
        let mut ctx = quick_ctx();
        let t = fig9(&mut ctx);
        assert_eq!(t.rows.len(), 4);
        // Shares are fractions.
        for (_, vals) in &t.rows {
            for &v in vals {
                assert!((0.0..=1.0).contains(&v), "{vals:?}");
            }
        }
    }

    #[test]
    fn calibration_covers_all_apps() {
        let mut ctx = quick_ctx();
        let t = calibration(&mut ctx);
        assert_eq!(t.rows.len(), 13);
    }

    #[test]
    fn fig13_combos_are_three_or_four_tenants() {
        for combo in fig13_combos() {
            assert!(combo.len() == 3 || combo.len() == 4);
        }
        assert_eq!(fig13_combos().len(), 14);
    }

    #[test]
    fn walkers_round_up_to_tenant_multiples() {
        assert_eq!(walkers_for_tenants(2), 16);
        assert_eq!(walkers_for_tenants(3), 18);
        assert_eq!(walkers_for_tenants(4), 16);
        assert_eq!(walkers_for_tenants(5), 20);
    }

    #[test]
    fn two_tenant_mix_aliases_the_pair_path() {
        // The canonical 2-tenant scenario config is exactly the pair config,
        // so mixes route through the pair cache keys.
        let mut ctx = quick_ctx();
        assert_eq!(
            ctx.tenant_config(2, PolicyPreset::Dws),
            ctx.scale
                .base_config()
                .for_tenants(2)
                .with_preset(PolicyPreset::Dws)
        );
        let pair = WorkloadPair::new(AppId::Gups, AppId::Mm);
        let via_pair = ctx.pair(PolicyPreset::Dws, pair);
        let misses = ctx.store.misses();
        let via_mix = ctx.mix(PolicyPreset::Dws, &WorkloadMix::from(pair));
        assert_eq!(via_pair, via_mix);
        assert_eq!(ctx.store.misses(), misses, "mix must reuse the pair entry");
    }

    #[test]
    fn mix_shares_cache_entries_with_fig13() {
        let mut ctx = quick_ctx();
        let mix = paper_mixes3().remove(0);
        let first = ctx.mix(PolicyPreset::Dws, &mix);
        let misses = ctx.store.misses();
        let again = ctx.mix(PolicyPreset::Dws, &mix);
        assert_eq!(first, again);
        assert_eq!(ctx.store.misses(), misses);
        assert_eq!(first.tenants.len(), 3);
    }

    #[test]
    fn tenants3_table_normalizes_to_baseline() {
        let mut ctx = quick_ctx();
        let t = tenants_n(&mut ctx, 3);
        // 7 mixes + gmean ALL + gmean VM-sensitive.
        assert_eq!(t.rows.len(), 9);
        let (label, vals) = &t.rows[7];
        assert_eq!(label, "gmean ALL");
        assert!((vals[0] - 1.0).abs() < 1e-12, "Baseline IPC column is 1.0");
        assert!(vals.iter().all(|v| v.is_finite() && *v > 0.0), "{vals:?}");
    }

    #[test]
    fn validate_tenants_accepts_supported_counts() {
        for n in [2, 3, 4] {
            assert_eq!(validate_tenants(Scale::Quick, n), Ok(()), "n={n}");
            assert_eq!(validate_tenants(Scale::Paper, n), Ok(()), "n={n}");
        }
        assert!(validate_tenants(Scale::Quick, 1).is_err());
        assert!(validate_tenants(Scale::Quick, 5).is_err());
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let mut serial = quick_ctx();
        let expected = fig9(&mut serial);
        let mut parallel = quick_ctx();
        parallel.jobs = 4;
        let got = parallel.run(fig9);
        assert_eq!(expected.to_string(), got.to_string());
        assert_eq!(serial.store.misses(), parallel.store.misses());
    }

    #[test]
    fn store_shares_runs_between_experiments() {
        let mut ctx = quick_ctx();
        let _ = tab5(&mut ctx);
        let misses_after_tab5 = ctx.store.misses();
        // tab6 consumes the same DWS/DWS++ runs.
        let _ = tab6(&mut ctx);
        assert_eq!(ctx.store.misses(), misses_after_tab5);
    }
}
