//! Declarative hardware-sensitivity sweeps over the curated N-tenant mixes.
//!
//! The paper's scalability argument (§VII.E–F) is that DWS/DWS++ keep their
//! advantage as the machine's walk provisioning and the tenant count change.
//! A [`SweepAxis`] names one knob and its evaluation points; [`sens`]
//! expands an axis into cached experiment keys — reusing the canonical
//! pair / Fig. 13 cache entries wherever a point coincides with the
//! canonical configuration — and renders one gmean-over-mixes table of
//! total IPC under Baseline / DWS / DWS++, each point normalized to its own
//! same-resource Baseline.

use std::fmt;
use std::str::FromStr;

use walksteal_multitenant::{GpuConfig, PolicyPreset, SimResult};
use walksteal_sim_core::gmean;
use walksteal_workloads::{mixes_for, WorkloadMix};

use crate::report::Table;
use crate::suite::{walkers_for_tenants, ExpContext, SCENARIO_PRESETS};

/// One hardware (or concurrency) knob the sensitivity study sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepAxis {
    /// Number of page-table walkers (per-walker queue depth held at the
    /// Table I ratio). Points are rounded up to split evenly among the
    /// tenants, mirroring the canonical configuration.
    Walkers,
    /// Total walk-queue entries across all walkers.
    Queue,
    /// Shared L2 TLB capacity in entries (16-way).
    L2Tlb,
    /// Co-running tenant count (each point runs its own curated mix set).
    Tenants,
    /// Churn intensity: the mean inter-arrival gap of seeded churn
    /// timelines (residency scales in proportion). Points are gap values
    /// in cycles, densest churn last; the table reports weighted speedup
    /// over lifetime (see [`churn::sens_churn`](crate::churn::sens_churn)).
    Churn,
}

impl SweepAxis {
    /// Every axis, in presentation order.
    pub const ALL: [SweepAxis; 5] = [
        SweepAxis::Walkers,
        SweepAxis::Queue,
        SweepAxis::L2Tlb,
        SweepAxis::Tenants,
        SweepAxis::Churn,
    ];

    /// The CLI name (`repro --sweep <name>`, experiment `sens_<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SweepAxis::Walkers => "walkers",
            SweepAxis::Queue => "queue",
            SweepAxis::L2Tlb => "l2tlb",
            SweepAxis::Tenants => "tenants",
            SweepAxis::Churn => "churn",
        }
    }

    /// The evaluation points along this axis.
    #[must_use]
    pub fn points(self) -> &'static [usize] {
        match self {
            SweepAxis::Walkers => &[8, 16, 32],
            SweepAxis::Queue => &[96, 192, 384],
            SweepAxis::L2Tlb => &[512, 1024, 2048],
            SweepAxis::Tenants => &[2, 3, 4],
            SweepAxis::Churn => &crate::churn::CHURN_GAPS,
        }
    }

    fn describe(self) -> &'static str {
        match self {
            SweepAxis::Walkers => "page-table walkers",
            SweepAxis::Queue => "walk-queue entries",
            SweepAxis::L2Tlb => "L2 TLB entries",
            SweepAxis::Tenants => "tenant count",
            SweepAxis::Churn => "churn intensity",
        }
    }
}

impl fmt::Display for SweepAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SweepAxis {
    type Err = String;

    /// Parses an axis from its [`name`](SweepAxis::name) or a CLI-friendly
    /// alias; round-trips with `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "walkers" | "ptw" | "ptws" | "n_walkers" => Ok(SweepAxis::Walkers),
            "queue" | "queues" | "queue_entries" => Ok(SweepAxis::Queue),
            "l2tlb" | "l2-tlb" | "tlb" | "l2_tlb" => Ok(SweepAxis::L2Tlb),
            "tenants" | "n_tenants" => Ok(SweepAxis::Tenants),
            "churn" => Ok(SweepAxis::Churn),
            _ => Err(format!(
                "unknown sweep axis {s:?} (expected one of: {})",
                SweepAxis::ALL.map(SweepAxis::name).join(", ")
            )),
        }
    }
}

/// The configuration for one sweep point at tenant count `n`, plus the
/// point's effective value (walkers round up to split evenly, so e.g. the
/// 8-walker point becomes 9 at three tenants).
fn point_config(
    ctx: &ExpContext,
    axis: SweepAxis,
    point: usize,
    n: usize,
    preset: PolicyPreset,
) -> (GpuConfig, usize) {
    let base = ctx
        .scale
        .base_config()
        .with_n_sms(ctx.scale.sms_per_tenant(n) * n);
    let (cfg, effective) = match axis {
        SweepAxis::Walkers => {
            let walkers = point.div_ceil(n) * n;
            (base.with_walkers(walkers), walkers)
        }
        SweepAxis::Queue => {
            let mut cfg = base.with_walkers(walkers_for_tenants(n));
            cfg.walk.queue_entries = point;
            (cfg, point)
        }
        SweepAxis::L2Tlb => (
            base.with_walkers(walkers_for_tenants(n))
                .with_l2_tlb_entries(point),
            point,
        ),
        SweepAxis::Tenants => (base.with_walkers(walkers_for_tenants(n)), n),
        // Churn sweeps the timeline, not the machine: every point runs the
        // canonical n-tenant hardware (sens() delegates the table itself).
        SweepAxis::Churn => (base.with_walkers(walkers_for_tenants(n)), point),
    };
    (cfg.for_tenants(n).with_preset(preset), effective)
}

/// Runs `mix` at one sweep point, reusing the canonical cache entry when
/// the point's configuration coincides with [`ExpContext::tenant_config`]
/// (e.g. the 16-walker, 192-entry, and 1024-entry points at two tenants are
/// exactly the published pair runs).
fn run_point(
    ctx: &mut ExpContext,
    axis: SweepAxis,
    point: usize,
    n: usize,
    preset: PolicyPreset,
    mix: &WorkloadMix,
) -> (SimResult, usize) {
    let (cfg, effective) = point_config(ctx, axis, point, n, preset);
    let result = if cfg == ctx.tenant_config(n, preset) {
        ctx.mix(preset, mix)
    } else {
        let label = format!("sens|{}{}|{}", axis.name(), effective, preset.label());
        ctx.mix_with(&label, cfg, mix)
    };
    (result, effective)
}

fn point_label(axis: SweepAxis, effective: usize) -> String {
    match axis {
        SweepAxis::Walkers => format!("{effective} walkers"),
        SweepAxis::Queue => format!("{effective}-entry queue"),
        SweepAxis::L2Tlb => format!("{effective}-entry L2 TLB"),
        SweepAxis::Tenants => format!("{effective} tenants"),
        SweepAxis::Churn => format!("{effective}-cycle mean gap"),
    }
}

/// The sensitivity table for `axis`: one row per evaluation point, one
/// column per compared preset, each cell the gmean over the curated mixes
/// of total IPC normalized to the *same point's* Baseline. `n_tenants`
/// fixes the mix set for the hardware axes and is ignored by
/// [`SweepAxis::Tenants`], which sweeps it.
pub fn sens(ctx: &mut ExpContext, axis: SweepAxis, n_tenants: usize) -> Table {
    if axis == SweepAxis::Churn {
        // Churn runs scenarios, not static mixes; its table lives with the
        // rest of the churn machinery.
        return crate::churn::sens_churn(ctx);
    }
    let presets = ctx.presets(&SCENARIO_PRESETS);
    let columns: Vec<&str> = presets.iter().map(|p| p.label()).collect();
    let title = match axis {
        SweepAxis::Tenants => format!(
            "Sensitivity: {} (total IPC, normalized per point)",
            axis.describe()
        ),
        _ => format!(
            "Sensitivity: {} at {n_tenants} tenants (total IPC, normalized per point)",
            axis.describe()
        ),
    };
    let mut table = Table::new(&title, &columns);
    for &point in axis.points() {
        let n = if axis == SweepAxis::Tenants {
            point
        } else {
            n_tenants
        };
        let mixes = mixes_for(n);
        let mut effective = point;
        let mut per_mix: Vec<Vec<f64>> = Vec::with_capacity(mixes.len());
        for mix in &mixes {
            let ipcs: Vec<f64> = presets
                .iter()
                .map(|&preset| {
                    let (r, eff) = run_point(ctx, axis, point, n, preset, mix);
                    effective = eff;
                    r.total_ipc()
                })
                .collect();
            per_mix.push(ipcs.iter().map(|&v| v / ipcs[0]).collect());
        }
        let row: Vec<f64> = (0..presets.len())
            .map(|c| gmean(&per_mix.iter().map(|v| v[c]).collect::<Vec<_>>()))
            .collect();
        table.row(&point_label(axis, effective), &row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::store::Store;

    fn quick_ctx() -> ExpContext {
        ExpContext::new(Scale::Quick, Store::in_memory())
    }

    #[test]
    fn axis_names_round_trip_and_aliases_parse() {
        for axis in SweepAxis::ALL {
            assert_eq!(axis.to_string().parse::<SweepAxis>(), Ok(axis), "{axis}");
        }
        assert_eq!("ptw".parse::<SweepAxis>(), Ok(SweepAxis::Walkers));
        assert_eq!("tlb".parse::<SweepAxis>(), Ok(SweepAxis::L2Tlb));
        assert_eq!("n_tenants".parse::<SweepAxis>(), Ok(SweepAxis::Tenants));
        assert!("bogus".parse::<SweepAxis>().is_err());
    }

    #[test]
    fn every_point_splits_cleanly_at_every_tenant_count() {
        // point_config must never hit the divide-evenly panics for any
        // (axis, point, tenants, preset) combination the engine can request.
        let ctx = quick_ctx();
        for axis in SweepAxis::ALL {
            for &point in axis.points() {
                let tenant_counts: &[usize] = if axis == SweepAxis::Tenants {
                    &[point]
                } else {
                    &[2, 3, 4]
                };
                for &n in tenant_counts {
                    for preset in SCENARIO_PRESETS {
                        let (cfg, effective) = point_config(&ctx, axis, point, n, preset);
                        assert_eq!(cfg.walk.n_tenants, n);
                        assert!(effective >= point, "{axis} {point} at {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn walker_points_round_up_per_tenant_count() {
        let ctx = quick_ctx();
        let (cfg, eff) = point_config(&ctx, SweepAxis::Walkers, 8, 3, PolicyPreset::Dws);
        assert_eq!((cfg.walk.n_walkers, eff), (9, 9));
        let (cfg, eff) = point_config(&ctx, SweepAxis::Walkers, 16, 2, PolicyPreset::Dws);
        assert_eq!((cfg.walk.n_walkers, eff), (16, 16));
    }

    #[test]
    fn canonical_points_reuse_published_cache_entries() {
        // At two tenants the 16-walker point IS the canonical pair config,
        // so the sweep must not re-simulate (or re-key) those cells.
        let mut ctx = quick_ctx();
        for preset in SCENARIO_PRESETS {
            let (cfg, _) = point_config(&ctx, SweepAxis::Walkers, 16, 2, preset);
            assert_eq!(cfg, ctx.tenant_config(2, preset), "{preset}");
            let (cfg, _) = point_config(&ctx, SweepAxis::Queue, 192, 2, preset);
            assert_eq!(cfg, ctx.tenant_config(2, preset), "{preset}");
            let (cfg, _) = point_config(&ctx, SweepAxis::L2Tlb, 1024, 2, preset);
            assert_eq!(cfg, ctx.tenant_config(2, preset), "{preset}");
        }
        // And the tenants axis is canonical at every point.
        for &n in SweepAxis::Tenants.points() {
            let (cfg, _) = point_config(&ctx, SweepAxis::Tenants, n, n, PolicyPreset::Dws);
            assert_eq!(cfg, ctx.tenant_config(n, PolicyPreset::Dws), "{n} tenants");
        }
        // Off-canonical points get distinct custom keys instead.
        let mix = walksteal_workloads::WorkloadMix::new([
            walksteal_workloads::AppId::Gups,
            walksteal_workloads::AppId::Mm,
        ]);
        let (a, _) = run_point(
            &mut ctx,
            SweepAxis::Walkers,
            8,
            2,
            PolicyPreset::Dws,
            &mix,
        );
        let (b, _) = run_point(
            &mut ctx,
            SweepAxis::Walkers,
            32,
            2,
            PolicyPreset::Dws,
            &mix,
        );
        assert_ne!(a, b, "different walker counts must be distinct runs");
    }

    #[test]
    fn sens_walkers_emits_one_row_per_point() {
        let mut ctx = quick_ctx();
        let t = sens(&mut ctx, SweepAxis::Walkers, 2);
        assert_eq!(t.rows.len(), 3);
        for (label, vals) in &t.rows {
            assert_eq!(vals.len(), 3, "{label}");
            assert!(
                (vals[0] - 1.0).abs() < 1e-12,
                "{label}: Baseline column is the per-point normalization base"
            );
            assert!(vals.iter().all(|v| v.is_finite() && *v > 0.0), "{label}");
        }
        assert_eq!(t.rows[1].0, "16 walkers");
    }
}
