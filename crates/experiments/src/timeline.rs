//! Reconstructs walk-scheduler behavior from a JSONL trace.
//!
//! [`TraceReplay`] re-derives, from the walk-lifecycle events alone, the
//! same per-tenant statistics the simulator reports in its
//! [`TenantResult`](walksteal_multitenant::TenantResult)s — *PW share*
//! (the paper's Fig. 9 walker-occupancy fraction), the stolen-walk
//! fraction (Table VI), and mean cross-tenant interleaving (Table III).
//! The replay mirrors the walk subsystem's busy-integral accumulation
//! bit-for-bit, so on a trace recorded with the `walk` kind enabled the
//! reconstructed `pw_share` values compare equal (`f64::to_bits`) to the
//! simulator's own.
//!
//! [`render`] turns a replay into the terminal timeline `repro --trace`
//! prints: a per-tenant sparkline of walker occupancy over time (the
//! pw-share curve) plus an interleave/steal breakdown table.

use walksteal_sim_core::trace::TraceEvent;
use walksteal_sim_core::Json;

/// Per-tenant statistics reconstructed from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReplay {
    /// Time-averaged fraction of all walkers busy for this tenant over
    /// `[0, end]` — the paper's *PW share* (Fig. 9).
    pub pw_share: f64,
    /// Completed walks.
    pub completed: u64,
    /// Completed walks that were serviced by a stolen walker.
    pub stolen: u64,
    /// Fraction of completed walks serviced by stealing (Table VI).
    pub stolen_fraction: f64,
    /// Mean number of other-tenant walks interleaved ahead at dispatch
    /// (Table III).
    pub mean_interleave: f64,
    /// Mean arrival-to-completion walk latency in cycles.
    pub mean_latency: f64,
    /// Walks rejected at enqueue for lack of queue space.
    pub rejected: u64,
}

/// Everything [`replay`] reconstructs from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplay {
    /// Tenant count from the `run_start` header.
    pub n_tenants: usize,
    /// Walker count from the `run_start` header.
    pub n_walkers: usize,
    /// Workload seed from the `run_start` header.
    pub seed: u64,
    /// Final cycle from the `run_end` footer.
    pub end_cycle: u64,
    /// Events the simulator processed (from `run_end`).
    pub sim_events: u64,
    /// Trace events replayed.
    pub trace_events: u64,
    /// Steal dispatches observed (`steal` events).
    pub steals_observed: u64,
    /// DWS++ epoch rollovers observed (`epoch_update` events).
    pub epoch_updates: u64,
    /// Per-tenant reconstruction.
    pub tenants: Vec<TenantReplay>,
    /// Per-tenant walker occupancy per time bucket, `buckets[tenant][i]`
    /// in `0.0..=1.0` of the whole walker pool — the pw-share curve.
    pub occupancy: Vec<Vec<f64>>,
}

/// Time buckets the occupancy curve is rendered into (terminal columns).
const CURVE_COLS: usize = 72;

/// Sparkline glyphs, lowest to highest.
const BARS: [char; 8] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇'];

/// Parses one JSONL trace (one event per line, as written by
/// [`JsonlTracer`](walksteal_sim_core::JsonlTracer)).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_trace(jsonl: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let ev = TraceEvent::from_json(&json).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Mirror of the walk subsystem's busy-time integral: same accumulation
/// order (advance all tenants against one shared `last`, then apply the
/// count change), so the floating-point result is bit-identical.
struct BusyIntegral {
    count: Vec<u64>,
    integral: Vec<f64>,
    last: u64,
}

impl BusyIntegral {
    fn new(n: usize) -> Self {
        BusyIntegral {
            count: vec![0; n],
            integral: vec![0.0; n],
            last: 0,
        }
    }

    fn advance(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last) as f64;
        if dt > 0.0 {
            for (acc, &c) in self.integral.iter_mut().zip(&self.count) {
                *acc += c as f64 * dt;
            }
        }
        self.last = self.last.max(now);
    }

    fn share_at(&self, tenant: usize, end: u64, n_walkers: usize) -> f64 {
        let mut integral = self.integral[tenant];
        let dt = end.saturating_sub(self.last) as f64;
        integral += self.count[tenant] as f64 * dt;
        let denom = end as f64 * n_walkers as f64;
        if denom == 0.0 {
            0.0
        } else {
            integral / denom
        }
    }
}

/// Replays `events` (in file order) into per-tenant statistics and the
/// occupancy curve.
///
/// Requires the `meta` events (`run_start` / `run_end`), which every
/// [`TraceFilter`](walksteal_sim_core::TraceFilter) retains; exact
/// `pw_share` reconstruction additionally needs the `walk` kind to have
/// been enabled when the trace was recorded.
///
/// # Errors
///
/// Returns a message if the header or footer is missing, or an event
/// references a tenant/cycle outside the declared run.
pub fn replay(events: &[TraceEvent]) -> Result<TraceReplay, String> {
    let Some(TraceEvent::RunStart {
        n_tenants,
        n_walkers,
        seed,
        ..
    }) = events.first()
    else {
        return Err("trace does not begin with a run_start event".into());
    };
    let (n_tenants, n_walkers, seed) = (*n_tenants as usize, *n_walkers as usize, *seed);
    let Some(TraceEvent::RunEnd {
        cycle: end_cycle,
        events: sim_events,
    }) = events.last()
    else {
        return Err("trace does not end with a run_end event (aborted run?)".into());
    };
    let (end_cycle, sim_events) = (*end_cycle, *sim_events);

    let mut busy = BusyIntegral::new(n_tenants);
    let mut completed = vec![0u64; n_tenants];
    let mut stolen = vec![0u64; n_tenants];
    let mut interleave_sum = vec![0u64; n_tenants];
    let mut latency_sum = vec![0u64; n_tenants];
    let mut rejected = vec![0u64; n_tenants];
    let mut steals_observed = 0u64;
    let mut epoch_updates = 0u64;

    // The occupancy curve: integrate busy counts into fixed-width buckets.
    let cols = CURVE_COLS.min(end_cycle.max(1) as usize);
    let bucket_width = end_cycle.max(1).div_ceil(cols as u64).max(1);
    let mut curve = vec![vec![0.0f64; cols]; n_tenants];
    let mut curve_count = vec![0u64; n_tenants];
    let mut curve_last = 0u64;
    let mut integrate = |count: &mut Vec<u64>, last: &mut u64, now: u64| {
        // Spread each tenant's busy time across the buckets it spans.
        let (mut from, to) = (*last, now.min(end_cycle));
        while from < to {
            let bucket = (from / bucket_width) as usize;
            let bucket_end = ((bucket as u64 + 1) * bucket_width).min(to);
            let span = (bucket_end - from) as f64;
            if let Some(row) = curve.first().map(|r| r.len()) {
                for (t, &c) in count.iter().enumerate() {
                    if bucket < row && c > 0 {
                        curve[t][bucket] += c as f64 * span;
                    }
                }
            }
            from = bucket_end;
        }
        *last = (*last).max(now);
    };

    let check = |t: u8| -> Result<usize, String> {
        let t = t as usize;
        if t >= n_tenants {
            return Err(format!("event references tenant {t} of {n_tenants}"));
        }
        Ok(t)
    };

    for ev in events {
        match ev {
            TraceEvent::WalkAssign {
                cycle,
                tenant,
                interleaved,
                ..
            } => {
                let t = check(*tenant)?;
                busy.advance(*cycle);
                integrate(&mut curve_count, &mut curve_last, *cycle);
                busy.count[t] += 1;
                curve_count[t] += 1;
                interleave_sum[t] += interleaved;
            }
            TraceEvent::WalkComplete {
                cycle,
                tenant,
                stolen: was_stolen,
                latency,
                ..
            } => {
                let t = check(*tenant)?;
                busy.advance(*cycle);
                integrate(&mut curve_count, &mut curve_last, *cycle);
                if busy.count[t] == 0 {
                    return Err(format!(
                        "walk_complete for tenant {t} at cycle {cycle} with no walk in flight"
                    ));
                }
                busy.count[t] -= 1;
                curve_count[t] -= 1;
                completed[t] += 1;
                latency_sum[t] += latency;
                if *was_stolen {
                    stolen[t] += 1;
                }
            }
            TraceEvent::WalkReject { tenant, .. } => {
                rejected[check(*tenant)?] += 1;
            }
            TraceEvent::Steal { tenant, .. } => {
                let _ = check(*tenant)?;
                steals_observed += 1;
            }
            TraceEvent::EpochUpdate { .. } => epoch_updates += 1,
            _ => {}
        }
    }
    integrate(&mut curve_count, &mut curve_last, end_cycle);

    let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
    let tenants = (0..n_tenants)
        .map(|t| TenantReplay {
            pw_share: busy.share_at(t, end_cycle, n_walkers),
            completed: completed[t],
            stolen: stolen[t],
            stolen_fraction: ratio(stolen[t], completed[t]),
            mean_interleave: ratio(interleave_sum[t], completed[t]),
            mean_latency: ratio(latency_sum[t], completed[t]),
            rejected: rejected[t],
        })
        .collect();

    // Normalize bucket integrals to a fraction of the whole walker pool.
    for row in &mut curve {
        for (i, v) in row.iter_mut().enumerate() {
            let start = i as u64 * bucket_width;
            let width = bucket_width.min(end_cycle.saturating_sub(start)).max(1);
            *v /= width as f64 * n_walkers as f64;
        }
    }

    Ok(TraceReplay {
        n_tenants,
        n_walkers,
        seed,
        end_cycle,
        sim_events,
        trace_events: events.len() as u64,
        steals_observed,
        epoch_updates,
        tenants,
        occupancy: curve,
    })
}

fn sparkline(values: &[f64], max: f64) -> String {
    values
        .iter()
        .map(|&v| {
            let idx = if max > 0.0 {
                ((v / max) * (BARS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Renders the replay as the terminal timeline `repro --trace` prints:
/// header, per-tenant pw-share sparklines (Fig. 9's curve), and the
/// Table III/VI-style interleave and steal breakdown.
#[must_use]
pub fn render(replay: &TraceReplay, tenant_names: &[String]) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} tenants, {} walkers, seed {}, {} cycles, {} sim events, {} trace events",
        replay.n_tenants,
        replay.n_walkers,
        replay.seed,
        replay.end_cycle,
        replay.sim_events,
        replay.trace_events,
    );
    let peak = replay
        .occupancy
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "\nwalker occupancy over time (peak {:.0}% of pool):",
        peak * 100.0
    );
    let name_of = |t: usize| -> String {
        tenant_names
            .get(t)
            .cloned()
            .unwrap_or_else(|| format!("T{t}"))
    };
    for (t, row) in replay.occupancy.iter().enumerate() {
        let _ = writeln!(out, "  {:<6} {}", name_of(t), sparkline(row, peak));
    }
    let _ = writeln!(
        out,
        "\n{:<6} {:>9} {:>8} {:>9} {:>11} {:>10} {:>9}",
        "tenant", "completed", "stolen%", "pw share", "interleave", "mean lat", "rejected"
    );
    for (t, r) in replay.tenants.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>7.1}% {:>9.4} {:>11.2} {:>10.0} {:>9}",
            name_of(t),
            r.completed,
            r.stolen_fraction * 100.0,
            r.pw_share,
            r.mean_interleave,
            r.mean_latency,
            r.rejected,
        );
    }
    if replay.epoch_updates > 0 {
        let _ = writeln!(
            out,
            "\n{} steal dispatches, {} DWS++ epoch rollovers",
            replay.steals_observed, replay.epoch_updates
        );
    } else if replay.steals_observed > 0 {
        let _ = writeln!(out, "\n{} steal dispatches", replay.steals_observed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use walksteal_multitenant::{PolicyPreset, RingTracer, SimulationBuilder};
    use walksteal_workloads::AppId;

    fn traced_run(preset: PolicyPreset) -> (Vec<TraceEvent>, walksteal_multitenant::SimResult) {
        let trace = RingTracer::unbounded();
        let result = SimulationBuilder::new()
            .n_sms(4)
            .warps_per_sm(4)
            .instructions_per_warp(400)
            .preset(preset)
            .tenants([AppId::Gups, AppId::Mm])
            .seed(9)
            .tracer(trace.clone())
            .build()
            .run();
        (trace.events(), result)
    }

    #[test]
    fn replay_reconstructs_pw_share_exactly() {
        for preset in [PolicyPreset::Baseline, PolicyPreset::Dws] {
            let (events, result) = traced_run(preset);
            let replay = replay(&events).expect("trace replays");
            assert_eq!(replay.end_cycle, result.cycles);
            assert_eq!(replay.sim_events, result.events);
            for (t, tenant) in result.tenants.iter().enumerate() {
                assert_eq!(
                    replay.tenants[t].pw_share.to_bits(),
                    tenant.pw_share.to_bits(),
                    "{preset:?} tenant {t}: replayed {} vs simulated {}",
                    replay.tenants[t].pw_share,
                    tenant.pw_share
                );
                assert_eq!(
                    replay.tenants[t].stolen_fraction.to_bits(),
                    tenant.stolen_fraction.to_bits(),
                    "{preset:?} tenant {t} stolen fraction"
                );
                assert_eq!(
                    replay.tenants[t].mean_interleave.to_bits(),
                    tenant.mean_interleave.to_bits(),
                    "{preset:?} tenant {t} interleave"
                );
                assert_eq!(
                    replay.tenants[t].mean_latency.to_bits(),
                    tenant.mean_walk_latency.to_bits(),
                    "{preset:?} tenant {t} latency"
                );
            }
        }
    }

    #[test]
    fn replay_round_trips_through_jsonl() {
        let (events, _) = traced_run(PolicyPreset::Dws);
        let jsonl: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json().dump()))
            .collect();
        let parsed = parse_trace(&jsonl).expect("parses");
        assert_eq!(parsed, events);
        assert_eq!(replay(&parsed).unwrap(), replay(&events).unwrap());
    }

    #[test]
    fn steals_only_under_stealing_policies() {
        let (baseline, _) = traced_run(PolicyPreset::Baseline);
        let (dws, _) = traced_run(PolicyPreset::Dws);
        assert_eq!(replay(&baseline).unwrap().steals_observed, 0);
        let r = replay(&dws).unwrap();
        assert!(r.steals_observed > 0, "DWS run should steal");
        let stolen: u64 = r.tenants.iter().map(|t| t.stolen).sum();
        assert_eq!(stolen, r.steals_observed, "every steal completes once");
    }

    #[test]
    fn render_is_total() {
        let (events, result) = traced_run(PolicyPreset::Dws);
        let replay = replay(&events).unwrap();
        let names: Vec<String> = result
            .tenants
            .iter()
            .map(|t| t.app.name().to_string())
            .collect();
        let text = render(&replay, &names);
        assert!(text.contains("walker occupancy"));
        assert!(text.contains("GUPS"));
        assert!(text.contains("pw share"));
    }

    #[test]
    fn truncated_trace_is_an_error() {
        let (mut events, _) = traced_run(PolicyPreset::Baseline);
        events.pop();
        assert!(replay(&events).unwrap_err().contains("run_end"));
        assert!(replay(&events[1..]).unwrap_err().contains("run_start"));
    }
}
