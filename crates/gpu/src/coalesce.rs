//! The memory-access coalescer.
//!
//! A SIMD memory instruction issues up to 32 lane accesses. The hardware
//! coalescer merges lanes that fall on the same cache line into one access
//! (and, for address translation, lanes on the same page into one
//! translation request) before the L1 TLB is looked up (paper §II). Regular
//! workloads coalesce to a single page per instruction; divergent ones (the
//! paper's GUPS, SAD) fan out to several pages — which multiplies their
//! translation demand.

use walksteal_sim_core::Vpn;

/// One coalesced access: a (page, line-within-page) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemRef {
    /// The virtual page accessed.
    pub vpn: Vpn,
    /// The cache line within the page.
    pub line_in_page: u32,
}

/// Merges raw per-lane references into the set of distinct accesses, in
/// first-appearance order (deterministic).
///
/// # Examples
///
/// ```
/// use walksteal_gpu::{coalesce, MemRef};
/// use walksteal_sim_core::Vpn;
///
/// let lanes = [
///     MemRef { vpn: Vpn(1), line_in_page: 0 },
///     MemRef { vpn: Vpn(1), line_in_page: 0 }, // duplicate lane
///     MemRef { vpn: Vpn(1), line_in_page: 1 },
///     MemRef { vpn: Vpn(2), line_in_page: 0 },
/// ];
/// let merged = coalesce(&lanes);
/// assert_eq!(merged.len(), 3);
/// assert_eq!(merged[0], MemRef { vpn: Vpn(1), line_in_page: 0 });
/// ```
#[must_use]
pub fn coalesce(lanes: &[MemRef]) -> Vec<MemRef> {
    let mut out: Vec<MemRef> = Vec::with_capacity(lanes.len().min(8));
    for &lane in lanes {
        if !out.contains(&lane) {
            out.push(lane);
        }
    }
    out
}

/// The number of distinct pages touched by a set of coalesced references —
/// the instruction's translation demand.
#[must_use]
pub fn distinct_pages(refs: &[MemRef]) -> usize {
    let mut pages: Vec<Vpn> = Vec::with_capacity(refs.len());
    for r in refs {
        if !pages.contains(&r.vpn) {
            pages.push(r.vpn);
        }
    }
    pages.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vpn: u64, line: u32) -> MemRef {
        MemRef {
            vpn: Vpn(vpn),
            line_in_page: line,
        }
    }

    #[test]
    fn fully_coalesced_instruction_is_one_access() {
        let lanes = vec![r(5, 3); 32];
        assert_eq!(coalesce(&lanes), vec![r(5, 3)]);
    }

    #[test]
    fn preserves_first_appearance_order() {
        let lanes = [r(2, 0), r(1, 0), r(2, 0), r(1, 1)];
        assert_eq!(coalesce(&lanes), vec![r(2, 0), r(1, 0), r(1, 1)]);
    }

    #[test]
    fn divergent_instruction_fans_out() {
        let lanes: Vec<MemRef> = (0..8).map(|i| r(i, 0)).collect();
        assert_eq!(coalesce(&lanes).len(), 8);
        assert_eq!(distinct_pages(&coalesce(&lanes)), 8);
    }

    #[test]
    fn same_page_different_lines_is_one_translation() {
        let lanes = [r(9, 0), r(9, 1), r(9, 2)];
        let merged = coalesce(&lanes);
        assert_eq!(merged.len(), 3);
        assert_eq!(distinct_pages(&merged), 1);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[]).is_empty());
        assert_eq!(distinct_pages(&[]), 0);
    }
}
