//! The SM instruction-issue timeline.
//!
//! Each SM issues at most one (warp) instruction per cycle across all of its
//! resident warps. [`IssueServer`] models that bandwidth as a reservation
//! timeline: a warp wanting to execute a burst of `n` instructions starting
//! no earlier than `now` occupies the next `n` free issue slots. Memory
//! latency hiding emerges naturally — while one warp waits on memory, other
//! warps' bursts fill the timeline.

use walksteal_sim_core::Cycle;

/// A single-resource reservation timeline issuing one instruction per cycle.
///
/// # Examples
///
/// ```
/// use walksteal_gpu::IssueServer;
/// use walksteal_sim_core::Cycle;
///
/// let mut issue = IssueServer::new();
/// // Warp A issues 10 instructions at cycle 0 -> finishes at cycle 10.
/// assert_eq!(issue.reserve(Cycle(0), 10), Cycle(10));
/// // Warp B arrives at cycle 4 but must wait for the pipeline: 10 + 5.
/// assert_eq!(issue.reserve(Cycle(4), 5), Cycle(15));
/// // After a long idle gap there is no queuing.
/// assert_eq!(issue.reserve(Cycle(100), 1), Cycle(101));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueServer {
    next_free: Cycle,
    issued: u64,
    busy_cycles: u64,
}

impl IssueServer {
    /// Creates an idle issue server.
    #[must_use]
    pub fn new() -> Self {
        IssueServer::default()
    }

    /// Reserves `n_instructions` consecutive issue slots starting no earlier
    /// than `now`; returns the cycle at which the burst completes.
    pub fn reserve(&mut self, now: Cycle, n_instructions: u64) -> Cycle {
        let start = self.next_free.max(now);
        let end = start + n_instructions;
        self.next_free = end;
        self.issued += n_instructions;
        self.busy_cycles += n_instructions;
        end
    }

    /// Total instructions issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cycles the issue port was busy.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The first cycle at which a new burst could start.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_bursts() {
        let mut s = IssueServer::new();
        assert_eq!(s.reserve(Cycle(0), 3), Cycle(3));
        assert_eq!(s.reserve(Cycle(0), 3), Cycle(6));
        assert_eq!(s.reserve(Cycle(0), 3), Cycle(9));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut s = IssueServer::new();
        s.reserve(Cycle(0), 2);
        assert_eq!(s.reserve(Cycle(50), 2), Cycle(52));
        assert_eq!(s.busy_cycles(), 4);
    }

    #[test]
    fn counts_instructions() {
        let mut s = IssueServer::new();
        s.reserve(Cycle(0), 7);
        s.reserve(Cycle(0), 5);
        assert_eq!(s.issued(), 12);
    }

    #[test]
    fn zero_length_burst_is_free() {
        let mut s = IssueServer::new();
        assert_eq!(s.reserve(Cycle(5), 0), Cycle(5));
        assert_eq!(s.issued(), 0);
    }

    #[test]
    fn next_free_tracks_tail() {
        let mut s = IssueServer::new();
        s.reserve(Cycle(10), 4);
        assert_eq!(s.next_free(), Cycle(14));
    }
}
