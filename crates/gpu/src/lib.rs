//! GPU compute model: streaming multiprocessors, warps, and coalescing.
//!
//! The simulator executes warps at memory-operation granularity: a warp
//! alternates between compute bursts (k instructions, issued through its
//! SM's shared [`IssueServer`] at one instruction per cycle) and memory
//! instructions whose lane accesses are merged by the [`coalesce()`] function
//! before address translation — mirroring the hardware coalescer that sits
//! in front of the L1 TLB (paper §II).
//!
//! Per-SM state lives in [`SmState`]: the private L1 TLB, the private L1
//! data cache, the issue timeline, and the L1-TLB MSHR occupancy limit that
//! back-pressures translation-intensive warps.
//!
//! The warp *scheduling policy* (GTO — greedy-then-oldest) is approximated
//! by the deterministic FIFO ordering of ready events at the issue server: a
//! warp keeps issuing until it blocks on memory (greedy), and blocked warps
//! resume in the order their operands return (oldest-first among
//! simultaneously-ready warps). This preserves the property the paper leans
//! on for the BLK observation — co-scheduled warps with disjoint working
//! sets thrash the TLB — because warp interleaving is driven by memory
//! completions.

pub mod coalesce;
pub mod issue;
pub mod sm;

pub use coalesce::{coalesce, MemRef};
pub use issue::IssueServer;
pub use sm::{SmConfig, SmState};
