//! Per-SM state: private L1 TLB, private L1 data cache, issue timeline, and
//! the L1-TLB MSHR occupancy limit.

use walksteal_mem::{Cache, CacheConfig};
use walksteal_sim_core::{Cycle, LineAddr, Ppn, TenantId, Vpn};
use walksteal_vm::{Replacement, Tlb, TlbConfig};

use crate::issue::IssueServer;

/// Configuration of one SM's private resources (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Private L1 TLB geometry (baseline: 32 entries).
    pub l1_tlb: TlbConfig,
    /// Outstanding L1-TLB misses allowed (baseline: 12 MSHR entries).
    pub l1_tlb_mshrs: usize,
    /// Private L1 data cache geometry (baseline: 16 KB, 128-byte lines).
    pub l1_cache: CacheConfig,
    /// L1 data cache hit latency.
    pub l1_hit_latency: u64,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            l1_tlb: TlbConfig {
                sets: 8,
                ways: 4,
                replacement: Replacement::Lru,
            },
            l1_tlb_mshrs: 12,
            // 16 KB / 128 B = 128 lines: 32 sets x 4 ways.
            l1_cache: CacheConfig { sets: 32, ways: 4 },
            l1_hit_latency: 25,
        }
    }
}

/// One streaming multiprocessor's private state.
///
/// # Examples
///
/// ```
/// use walksteal_gpu::{SmConfig, SmState};
/// use walksteal_sim_core::{Cycle, Ppn, TenantId, Vpn};
///
/// let mut sm = SmState::new(SmConfig::default(), TenantId(0));
/// assert_eq!(sm.probe_l1_tlb(Vpn(3)), None);
/// sm.fill_l1_tlb(Vpn(3), Ppn(8), Cycle(10));
/// assert_eq!(sm.probe_l1_tlb(Vpn(3)), Some(Ppn(8)));
/// ```
#[derive(Debug)]
pub struct SmState {
    cfg: SmConfig,
    tenant: TenantId,
    issue: IssueServer,
    l1_tlb: Tlb,
    l1_cache: Cache,
    outstanding_tlb_misses: usize,
    instructions_retired: u64,
}

impl SmState {
    /// Creates an SM assigned to `tenant`.
    #[must_use]
    pub fn new(cfg: SmConfig, tenant: TenantId) -> Self {
        SmState {
            tenant,
            issue: IssueServer::new(),
            // An SM belongs to exactly one tenant under spatial
            // multi-tenancy, but the TLB type tracks per-tenant occupancy,
            // so size the tracking array by tenant id.
            l1_tlb: Tlb::new(cfg.l1_tlb, tenant.index() + 1),
            l1_cache: Cache::new(cfg.l1_cache),
            outstanding_tlb_misses: 0,
            instructions_retired: 0,
            cfg,
        }
    }

    /// The tenant this SM is assigned to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Reserves `n` issue slots starting at `now`; returns the completion
    /// cycle and counts the instructions as retired.
    pub fn issue_burst(&mut self, now: Cycle, n: u64) -> Cycle {
        self.instructions_retired += n;
        self.issue.reserve(now, n)
    }

    /// Instructions retired by this SM.
    #[must_use]
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Probes the private L1 TLB.
    pub fn probe_l1_tlb(&mut self, vpn: Vpn) -> Option<Ppn> {
        self.l1_tlb.probe(self.tenant, vpn)
    }

    /// Resolves a run of same-cycle L1 TLB probes in one pass, stopping
    /// after the first miss; returns how many probes were consumed (see
    /// [`Tlb::probe_run`]).
    pub fn probe_l1_tlb_run(&mut self, vpns: &[Vpn], out: &mut Vec<Option<Ppn>>) -> usize {
        self.l1_tlb.probe_run(self.tenant, vpns, out)
    }

    /// Fills the private L1 TLB with a completed translation.
    pub fn fill_l1_tlb(&mut self, vpn: Vpn, ppn: Ppn, now: Cycle) {
        self.l1_tlb.fill(self.tenant, vpn, ppn, now);
    }

    /// Invalidates every L1 TLB entry (the tenant's shootdown when it
    /// departs mid-run); returns how many entries were dropped.
    pub fn flush_l1_tlb(&mut self, now: Cycle) -> usize {
        self.l1_tlb.invalidate_tenant(self.tenant, now)
    }

    /// Attempts to allocate an L1-TLB MSHR slot for a miss going downstream.
    /// Returns `false` when the SM must stall (all 12 in flight).
    pub fn try_take_tlb_mshr(&mut self) -> bool {
        if self.outstanding_tlb_misses >= self.cfg.l1_tlb_mshrs {
            return false;
        }
        self.outstanding_tlb_misses += 1;
        true
    }

    /// Releases an L1-TLB MSHR slot once the translation returned.
    ///
    /// # Panics
    ///
    /// Panics if no miss was outstanding.
    pub fn release_tlb_mshr(&mut self) {
        assert!(self.outstanding_tlb_misses > 0, "no TLB miss outstanding");
        self.outstanding_tlb_misses -= 1;
    }

    /// Outstanding L1-TLB misses.
    #[must_use]
    pub fn outstanding_tlb_misses(&self) -> usize {
        self.outstanding_tlb_misses
    }

    /// Probes the private L1 data cache, filling on miss; returns whether it
    /// hit, so the caller can decide to go to the shared L2.
    pub fn access_l1_cache(&mut self, line: LineAddr) -> bool {
        if self.l1_cache.probe(line) {
            true
        } else {
            self.l1_cache.fill(line);
            false
        }
    }

    /// L1 data cache hit latency.
    #[must_use]
    pub fn l1_hit_latency(&self) -> u64 {
        self.cfg.l1_hit_latency
    }

    /// L1 TLB statistics: (hits, misses).
    #[must_use]
    pub fn l1_tlb_stats(&self) -> (u64, u64) {
        (self.l1_tlb.hits(), self.l1_tlb.misses())
    }

    /// L1 data-cache statistics: (hits, misses).
    #[must_use]
    pub fn l1_cache_stats(&self) -> (u64, u64) {
        (self.l1_cache.hits(), self.l1_cache.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> SmState {
        SmState::new(SmConfig::default(), TenantId(1))
    }

    #[test]
    fn tlb_miss_then_fill_then_hit() {
        let mut s = sm();
        assert_eq!(s.probe_l1_tlb(Vpn(9)), None);
        s.fill_l1_tlb(Vpn(9), Ppn(4), Cycle(5));
        assert_eq!(s.probe_l1_tlb(Vpn(9)), Some(Ppn(4)));
        let (h, m) = s.l1_tlb_stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn mshr_limit_backpressures() {
        let mut s = sm();
        for _ in 0..12 {
            assert!(s.try_take_tlb_mshr());
        }
        assert!(!s.try_take_tlb_mshr());
        s.release_tlb_mshr();
        assert!(s.try_take_tlb_mshr());
        assert_eq!(s.outstanding_tlb_misses(), 12);
    }

    #[test]
    #[should_panic(expected = "no TLB miss outstanding")]
    fn release_without_take_panics() {
        sm().release_tlb_mshr();
    }

    #[test]
    fn flush_drops_all_entries() {
        let mut s = sm();
        s.fill_l1_tlb(Vpn(1), Ppn(2), Cycle(1));
        s.fill_l1_tlb(Vpn(9), Ppn(4), Cycle(2));
        assert_eq!(s.flush_l1_tlb(Cycle(5)), 2);
        assert_eq!(s.probe_l1_tlb(Vpn(1)), None);
        assert_eq!(s.probe_l1_tlb(Vpn(9)), None);
        assert_eq!(s.flush_l1_tlb(Cycle(6)), 0, "idempotent");
    }

    #[test]
    fn issue_accumulates_instructions() {
        let mut s = sm();
        let end = s.issue_burst(Cycle(0), 10);
        assert_eq!(end, Cycle(10));
        s.issue_burst(Cycle(0), 5);
        assert_eq!(s.instructions_retired(), 15);
    }

    #[test]
    fn l1_cache_fills_on_miss() {
        let mut s = sm();
        assert!(!s.access_l1_cache(LineAddr(77)));
        assert!(s.access_l1_cache(LineAddr(77)));
        let (h, m) = s.l1_cache_stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn tenant_is_recorded() {
        assert_eq!(sm().tenant(), TenantId(1));
    }
}
