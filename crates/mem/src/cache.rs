//! A set-associative, LRU-replacement cache model.
//!
//! The same structure serves as a private per-SM L1 data cache and as one
//! bank of the shared L2. It models *state* (which lines are resident) and
//! leaves *timing* to its caller ([`crate::MemSystem`] or the SM model):
//! callers probe, and on a miss decide whether to fill.

use walksteal_sim_core::LineAddr;

/// Geometry of a [`Cache`].
///
/// # Examples
///
/// ```
/// use walksteal_mem::CacheConfig;
///
/// // A 16 KB L1: 32 sets x 4 ways x 128-byte lines.
/// let cfg = CacheConfig { sets: 32, ways: 4 };
/// assert_eq!(cfg.lines(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Total line capacity of the cache.
    #[must_use]
    pub fn lines(self) -> usize {
        self.sets * self.ways
    }
}


/// Tag stored in never-filled ways. No modeled address reaches it (line
/// addresses derive from frame numbers far below 2^59), so a probe can
/// test residency with a single tag compare per way.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative cache with true-LRU replacement, indexed by
/// [`LineAddr`].
///
/// Physical address spaces of co-running tenants are disjoint in this
/// simulator, so a plain line address is a sufficient tag even when tenants
/// share the cache.
///
/// # Examples
///
/// ```
/// use walksteal_mem::{Cache, CacheConfig};
/// use walksteal_sim_core::LineAddr;
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 2 });
/// assert!(!c.probe(LineAddr(7)));
/// c.fill(LineAddr(7));
/// assert!(c.probe(LineAddr(7)));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Resident line tags, struct-of-arrays: a set probe compares `ways`
    /// contiguous words. Validity is implicit — `last_use[i] > 0` — since
    /// the tick counter starts at 1 and every fill/touch stamps it.
    tags: Vec<u64>,
    last_use: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be positive");
        Cache {
            cfg,
            tags: vec![INVALID_TAG; cfg.sets * cfg.ways],
            last_use: vec![0; cfg.sets * cfg.ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.0 as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Index of `line` within its set, if resident.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        debug_assert!(line.0 != INVALID_TAG, "line address aliases INVALID_TAG");
        let range = self.set_range(line);
        let start = range.start;
        // One tag compare per way: invalid ways hold `INVALID_TAG`, which
        // no probed line can equal, so `last_use` stays untouched here.
        self.tags[range]
            .iter()
            .position(|&t| t == line.0)
            .map(|i| start + i)
    }

    /// Looks up `line`, updating LRU state and hit/miss statistics.
    /// Returns `true` on a hit.
    pub fn probe(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        if let Some(i) = self.find(line) {
            self.last_use[i] = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        false
    }

    /// Checks residency without disturbing LRU state or statistics.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Resolves a run of accesses with fill-on-miss semantics in one pass,
    /// appending one flag per line to `hits` (`true` = resident before the
    /// access). Bit-identical to calling [`Cache::probe`] and, on a miss,
    /// [`Cache::fill`] per element in order — including the tick sequence
    /// (hits advance the LRU clock by one, misses by two) and first-minimum
    /// victim choice — but each miss does a single fused set scan instead of
    /// the probe's tag scan plus the fill's tag + recency scans.
    pub fn probe_fill_batch(&mut self, lines: &[LineAddr], hits: &mut Vec<bool>) {
        hits.reserve(lines.len());
        for &line in lines {
            debug_assert!(line.0 != INVALID_TAG, "line address aliases INVALID_TAG");
            self.tick += 1;
            let range = self.set_range(line);
            let mut found = None;
            let mut victim = range.start;
            let mut best = u64::MAX;
            for i in range {
                if self.tags[i] == line.0 {
                    found = Some(i);
                    break;
                }
                // Strict `<` from a MAX sentinel picks the first minimum,
                // exactly as `fill`'s victim scan does.
                if self.last_use[i] < best {
                    victim = i;
                    best = self.last_use[i];
                }
            }
            if let Some(i) = found {
                self.last_use[i] = self.tick;
                self.hits += 1;
                hits.push(true);
            } else {
                self.misses += 1;
                self.tick += 1; // the fill's own tick, as in scalar probe-then-fill
                self.tags[victim] = line.0;
                self.last_use[victim] = self.tick;
                hits.push(false);
            }
        }
    }

    /// Inserts `line`, evicting the LRU way of its set if necessary.
    /// Returns the evicted line, if any. Filling an already-resident line
    /// just refreshes its LRU position.
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.tick += 1;
        let tick = self.tick;

        // Already resident (e.g. two outstanding misses merged upstream):
        // refresh recency, nothing evicted.
        if let Some(i) = self.find(line) {
            self.last_use[i] = tick;
            return None;
        }

        // First minimum of last_use; invalid ways carry 0, so they win
        // exactly as the old `min_by_key` with an explicit valid check did.
        let range = self.set_range(line);
        let mut victim = range.start;
        let mut best = self.last_use[victim];
        for i in range.start + 1..range.end {
            if self.last_use[i] < best {
                victim = i;
                best = self.last_use[i];
            }
        }
        let evicted = (self.last_use[victim] > 0).then(|| LineAddr(self.tags[victim]));
        self.tags[victim] = line.0;
        self.last_use[victim] = tick;
        evicted
    }

    /// Invalidates every line. Statistics are preserved.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.last_use.fill(0);
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.last_use.iter().filter(|&&u| u > 0).count()
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig { sets: 2, ways: 2 })
    }

    #[test]
    fn cold_probe_misses() {
        let mut c = tiny();
        assert!(!c.probe(LineAddr(0)));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        c.fill(LineAddr(4));
        assert!(c.probe(LineAddr(4)));
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addresses, 2 sets).
        c.fill(LineAddr(0));
        c.fill(LineAddr(2));
        assert!(c.probe(LineAddr(0))); // 0 is now MRU; 2 is LRU
        let evicted = c.fill(LineAddr(4));
        assert_eq!(evicted, Some(LineAddr(2)));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn fill_resident_line_is_idempotent() {
        let mut c = tiny();
        c.fill(LineAddr(0));
        assert_eq!(c.fill(LineAddr(0)), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Odd lines map to set 1; filling set 1 must not evict set 0.
        c.fill(LineAddr(0));
        c.fill(LineAddr(1));
        c.fill(LineAddr(3));
        c.fill(LineAddr(5));
        assert!(c.contains(LineAddr(0)));
    }

    #[test]
    fn contains_does_not_touch_lru() {
        let mut c = tiny();
        c.fill(LineAddr(0));
        c.fill(LineAddr(2));
        // `contains` on 0 must NOT promote it...
        assert!(c.contains(LineAddr(0)));
        // ...so 0 is still LRU and gets evicted.
        assert_eq!(c.fill(LineAddr(4)), Some(LineAddr(0)));
    }

    #[test]
    fn flush_clears_lines_but_not_stats() {
        let mut c = tiny();
        c.fill(LineAddr(1));
        c.probe(LineAddr(1));
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(LineAddr(1)));
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn occupancy_counts_valid_ways() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.fill(LineAddr(0));
        c.fill(LineAddr(1));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1 });
    }

    #[test]
    fn config_lines() {
        assert_eq!(CacheConfig { sets: 64, ways: 16 }.lines(), 1024);
    }

    /// The batched entry point must be indistinguishable from the scalar
    /// probe/fill pair — same outcomes, same stats, and the same internal
    /// LRU clock, so any *future* access sequence behaves identically too.
    #[test]
    fn probe_fill_batch_matches_scalar() {
        let mut batched = Cache::new(CacheConfig { sets: 4, ways: 2 });
        let mut scalar = Cache::new(CacheConfig { sets: 4, ways: 2 });
        // A fixed LCG keeps the test deterministic; small address space
        // forces plenty of conflict evictions.
        let mut state = 0x2545F491_4F6C_DD1Du64;
        let mut lines = Vec::new();
        let mut hits = Vec::new();
        for _ in 0..200 {
            lines.clear();
            let batch = 1 + (state >> 60) as usize % 6;
            for _ in 0..batch {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lines.push(LineAddr(state >> 56));
            }
            hits.clear();
            batched.probe_fill_batch(&lines, &mut hits);
            for (i, &line) in lines.iter().enumerate() {
                let hit = scalar.probe(line);
                if !hit {
                    scalar.fill(line);
                }
                assert_eq!(hits[i], hit, "outcome diverged at line {line:?}");
            }
            assert_eq!(batched.tick, scalar.tick, "LRU clock diverged");
            assert_eq!(batched.tags, scalar.tags);
            assert_eq!(batched.last_use, scalar.last_use);
        }
        assert_eq!(batched.hits(), scalar.hits());
        assert_eq!(batched.misses(), scalar.misses());
        assert!(batched.hits() > 0 && batched.misses() > 0, "vacuous traffic");
    }
}
