//! Multi-channel device-memory (GDDR/HBM) timing model.
//!
//! Each channel is a bandwidth-limited server: an access occupies its channel
//! for `occupancy_cycles` (bandwidth) and completes after `access_latency`
//! from the moment the channel accepts it (latency). Lines interleave across
//! channels by address, as in the paper's 16-channel baseline.

use walksteal_sim_core::{Cycle, LineAddr};

/// Timing/geometry parameters of the [`Dram`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels; must be a power of two.
    pub channels: usize,
    /// Core cycles from channel acceptance to data return.
    pub access_latency: u64,
    /// Core cycles a single line transfer occupies its channel
    /// (the bandwidth term).
    pub occupancy_cycles: u64,
}

impl Default for DramConfig {
    /// The paper's baseline: 16 channels; ~220-cycle access; a 128-byte line
    /// occupies a channel for ~7 core cycles at 345.6 GB/s aggregate.
    fn default() -> Self {
        DramConfig {
            channels: 16,
            access_latency: 220,
            occupancy_cycles: 7,
        }
    }
}

/// A bandwidth- and latency-constrained multi-channel DRAM.
///
/// # Examples
///
/// ```
/// use walksteal_mem::{Dram, DramConfig};
/// use walksteal_sim_core::{Cycle, LineAddr};
///
/// let mut dram = Dram::new(DramConfig { channels: 1, access_latency: 100, occupancy_cycles: 10 });
/// // Back-to-back same-channel accesses queue behind each other.
/// assert_eq!(dram.access(LineAddr(0), Cycle(0)), 100);
/// assert_eq!(dram.access(LineAddr(0), Cycle(0)), 110);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    next_free: Vec<Cycle>,
    accesses: u64,
    total_queue_wait: u64,
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is not a power of two or `occupancy_cycles` is 0.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.channels.is_power_of_two(),
            "channel count must be a power of two"
        );
        assert!(cfg.occupancy_cycles > 0, "occupancy must be positive");
        Dram {
            cfg,
            next_free: vec![Cycle::ZERO; cfg.channels],
            accesses: 0,
            total_queue_wait: 0,
        }
    }

    /// The channel servicing `line` (address-interleaved).
    #[must_use]
    pub fn channel_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.cfg.channels - 1)
    }

    /// Issues an access to `line` at cycle `now`; returns the total latency
    /// (queue wait + access latency) until data returns.
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> u64 {
        let ch = self.channel_of(line);
        let start = self.next_free[ch].max(now);
        let wait = start - now;
        self.next_free[ch] = start + self.cfg.occupancy_cycles;
        self.accesses += 1;
        self.total_queue_wait += wait;
        wait + self.cfg.access_latency
    }

    /// Issues a batch of accesses, appending each one's total latency to
    /// `out`. `reqs` must be in issue order: channel state (`next_free`) is
    /// per-channel and requests to different channels commute, so replaying
    /// the element order is bit-identical to calling [`Dram::access`] per
    /// request — the batch just keeps the SoA `next_free` cursors and the
    /// accumulated statistics in registers across the pass.
    pub fn access_batch(&mut self, reqs: &[(LineAddr, Cycle)], out: &mut Vec<u64>) {
        out.reserve(reqs.len());
        let mask = self.cfg.channels - 1;
        let occ = self.cfg.occupancy_cycles;
        let lat = self.cfg.access_latency;
        let mut total_wait = self.total_queue_wait;
        for &(line, now) in reqs {
            let ch = (line.0 as usize) & mask;
            let start = self.next_free[ch].max(now);
            let wait = start - now;
            self.next_free[ch] = start + occ;
            total_wait += wait;
            out.push(wait + lat);
        }
        self.accesses += reqs.len() as u64;
        self.total_queue_wait = total_wait;
    }

    /// Number of accesses served.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Per-channel next-free cycles, for inspection by differential tests.
    #[must_use]
    pub fn next_free(&self) -> &[Cycle] {
        &self.next_free
    }

    /// Mean cycles an access waited for its channel.
    #[must_use]
    pub fn mean_queue_wait(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_queue_wait as f64 / self.accesses as f64
        }
    }

    /// The configured parameters.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_channel() -> Dram {
        Dram::new(DramConfig {
            channels: 1,
            access_latency: 100,
            occupancy_cycles: 10,
        })
    }

    #[test]
    fn idle_access_pays_base_latency() {
        let mut d = one_channel();
        assert_eq!(d.access(LineAddr(3), Cycle(50)), 100);
    }

    #[test]
    fn contended_channel_queues() {
        let mut d = one_channel();
        assert_eq!(d.access(LineAddr(0), Cycle(0)), 100);
        assert_eq!(d.access(LineAddr(0), Cycle(0)), 110);
        assert_eq!(d.access(LineAddr(0), Cycle(0)), 120);
    }

    #[test]
    fn channel_frees_over_time() {
        let mut d = one_channel();
        d.access(LineAddr(0), Cycle(0));
        // By cycle 10 the channel is free again: no queue wait.
        assert_eq!(d.access(LineAddr(0), Cycle(10)), 100);
    }

    #[test]
    fn lines_interleave_across_channels() {
        let mut d = Dram::new(DramConfig {
            channels: 4,
            access_latency: 100,
            occupancy_cycles: 10,
        });
        assert_eq!(d.channel_of(LineAddr(0)), 0);
        assert_eq!(d.channel_of(LineAddr(1)), 1);
        assert_eq!(d.channel_of(LineAddr(5)), 1);
        // Different channels don't contend.
        assert_eq!(d.access(LineAddr(0), Cycle(0)), 100);
        assert_eq!(d.access(LineAddr(1), Cycle(0)), 100);
    }

    #[test]
    fn stats_track_waits() {
        let mut d = one_channel();
        d.access(LineAddr(0), Cycle(0));
        d.access(LineAddr(0), Cycle(0));
        assert_eq!(d.accesses(), 2);
        assert!((d.mean_queue_wait() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_scalar_including_cross_channel_conflicts() {
        let cfg = DramConfig {
            channels: 2,
            access_latency: 100,
            occupancy_cycles: 10,
        };
        let mut batched = Dram::new(cfg);
        let mut scalar = Dram::new(cfg);
        // Lines 1, 3, 5 all land on channel 1; 0 and 2 on channel 0. The
        // non-monotone `now` values exercise both queued and idle paths.
        let reqs = [
            (LineAddr(1), Cycle(0)),
            (LineAddr(3), Cycle(0)),
            (LineAddr(0), Cycle(5)),
            (LineAddr(5), Cycle(2)),
            (LineAddr(2), Cycle(0)),
        ];
        let mut out = Vec::new();
        batched.access_batch(&reqs, &mut out);
        let expect: Vec<u64> = reqs.iter().map(|&(l, n)| scalar.access(l, n)).collect();
        assert_eq!(out, expect);
        assert_eq!(batched.next_free, scalar.next_free);
        assert_eq!(batched.accesses(), scalar.accesses());
        assert!(
            (batched.mean_queue_wait() - scalar.mean_queue_wait()).abs() < 1e-12
                && batched.mean_queue_wait() > 0.0,
            "channel conflicts must be non-vacuous"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_channel_count_panics() {
        let _ = Dram::new(DramConfig {
            channels: 3,
            access_latency: 1,
            occupancy_cycles: 1,
        });
    }
}
