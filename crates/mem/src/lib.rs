//! Memory-hierarchy substrate for the `walksteal` GPU simulator.
//!
//! Provides the timing and state model for everything below the SMs:
//!
//! * [`cache::Cache`] — a set-associative, LRU cache usable as a private L1
//!   data cache or as one bank of the shared L2.
//! * [`mshr::Mshr`] — a bounded miss-status-holding-register table that
//!   merges requests to the same key and enforces a hardware occupancy limit.
//! * [`dram::Dram`] — a multi-channel device-memory model with fixed access
//!   latency and bandwidth-limited channel occupancy.
//! * [`system::MemSystem`] — the shared L2 + DRAM composition every access
//!   below the SM goes through, including page-table walks (the paper's
//!   baseline caches page-table entries in the L2).
//!
//! Each layer also exposes a batched entry point pinned bit-identical to its
//! scalar counterpart — [`system::MemSystem::access_batch`] (same-cycle
//! coalesced requests, grouped per bank/channel),
//! [`system::MemSystem::access_chain`] (serial PTE chains),
//! [`cache::Cache::probe_fill_batch`], [`dram::Dram::access_batch`], and
//! [`mshr::Mshr::allocate_batch`] — so the simulator's hot loop crosses the
//! memory system once per cycle instead of once per request.
//!
//! # Examples
//!
//! ```
//! use walksteal_mem::{MemSystem, MemSystemConfig, AccessKind};
//! use walksteal_sim_core::{Cycle, LineAddr};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::default());
//! // A cold access misses the L2 and pays DRAM latency...
//! let miss = mem.access(LineAddr(42), Cycle(0), AccessKind::Data);
//! // ...and a subsequent access to the same line hits the L2.
//! let hit = mem.access(LineAddr(42), Cycle(1_000), AccessKind::Data);
//! assert!(hit.latency < miss.latency);
//! ```

pub mod cache;
pub mod dram;
pub mod mshr;
pub mod system;

pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use mshr::{Mshr, MshrError};
pub use system::{Access, AccessKind, HitLevel, MemStats, MemSystem, MemSystemConfig};
