//! A bounded miss-status-holding-register (MSHR) table.
//!
//! MSHRs track outstanding misses so that concurrent requests to the same
//! key (cache line, or virtual page for TLB misses) merge into a single
//! downstream request, and so that the hardware limit on outstanding misses
//! back-pressures the pipeline when exhausted.

use std::collections::HashMap;
use std::hash::Hash;

/// Error returned by [`Mshr::allocate`] when no new entry can be created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// All MSHR entries are in use; the requester must stall and retry.
    Full,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrError::Full => write!(f, "all MSHR entries are in use"),
        }
    }
}

impl std::error::Error for MshrError {}

/// Outcome of [`Mshr::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// A new entry was created; the caller must issue the downstream request.
    Primary,
    /// Merged into an existing entry for the same key; no downstream request
    /// is needed — the waiter is released when the primary completes.
    Merged,
}

/// A bounded table of outstanding misses, keyed by `K`, holding waiters `W`.
///
/// # Examples
///
/// ```
/// use walksteal_mem::{Mshr, MshrError};
///
/// let mut mshr: Mshr<u64, &str> = Mshr::new(2);
/// assert!(mshr.allocate(10, "warp-a").unwrap().is_primary());
/// // Second miss on the same line merges instead of allocating.
/// assert!(!mshr.allocate(10, "warp-b").unwrap().is_primary());
/// assert!(mshr.allocate(20, "warp-c").unwrap().is_primary());
/// // Table is now full for *new* keys.
/// assert_eq!(mshr.allocate(30, "warp-d"), Err(MshrError::Full));
/// // Completion releases every merged waiter.
/// assert_eq!(mshr.complete(10), vec!["warp-a", "warp-b"]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<K, W> {
    entries: HashMap<K, Vec<W>>,
    capacity: usize,
}

impl<K: Eq + Hash + Copy, W> Mshr<K, W> {
    /// Creates an MSHR table with room for `capacity` distinct keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Mshr {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Registers a miss on `key` with an associated `waiter`.
    ///
    /// Merges into an existing entry when one is outstanding for `key`;
    /// otherwise allocates a new entry.
    ///
    /// # Errors
    ///
    /// Returns [`MshrError::Full`] if a new entry is needed but the table is
    /// at capacity.
    pub fn allocate(&mut self, key: K, waiter: W) -> Result<Allocation, MshrError> {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(waiter);
            return Ok(Allocation::Merged);
        }
        if self.entries.len() >= self.capacity {
            return Err(MshrError::Full);
        }
        self.entries.insert(key, vec![waiter]);
        Ok(Allocation::Primary)
    }

    /// Registers a batch of misses in element order, appending one outcome
    /// per request to `out`. Identical to calling [`Mshr::allocate`] per
    /// element — a batch is *not* transactional: earlier primaries consume
    /// capacity that later requests in the same batch then contend for, so
    /// a batch can mix `Primary`, `Merged`, and `Full` outcomes.
    pub fn allocate_batch(
        &mut self,
        reqs: impl IntoIterator<Item = (K, W)>,
        out: &mut Vec<Result<Allocation, MshrError>>,
    ) {
        for (key, waiter) in reqs {
            out.push(self.allocate(key, waiter));
        }
    }

    /// Completes the outstanding miss on `key`, freeing its entry and
    /// returning all waiters in registration order. Returns an empty vector
    /// if no entry was outstanding.
    pub fn complete(&mut self, key: K) -> Vec<W> {
        self.entries.remove(&key).unwrap_or_default()
    }

    /// Whether a miss on `key` is currently outstanding.
    #[must_use]
    pub fn is_outstanding(&self, key: K) -> bool {
        self.entries.contains_key(&key)
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no free entry for a *new* key.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Allocation {
    /// `true` for [`Allocation::Primary`], i.e. the caller owns the
    /// downstream request.
    #[must_use]
    pub fn is_primary(self) -> bool {
        matches!(self, Allocation::Primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m: Mshr<u32, u32> = Mshr::new(4);
        assert_eq!(m.allocate(1, 100), Ok(Allocation::Primary));
        assert_eq!(m.allocate(1, 101), Ok(Allocation::Merged));
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn full_rejects_new_keys_only() {
        let mut m: Mshr<u32, ()> = Mshr::new(1);
        m.allocate(1, ()).unwrap();
        assert_eq!(m.allocate(2, ()), Err(MshrError::Full));
        // Merging into the existing key still works at capacity.
        assert_eq!(m.allocate(1, ()), Ok(Allocation::Merged));
    }

    #[test]
    fn complete_returns_waiters_in_order() {
        let mut m: Mshr<u32, u32> = Mshr::new(2);
        m.allocate(5, 1).unwrap();
        m.allocate(5, 2).unwrap();
        m.allocate(5, 3).unwrap();
        assert_eq!(m.complete(5), vec![1, 2, 3]);
        assert_eq!(m.occupancy(), 0);
        assert!(!m.is_outstanding(5));
    }

    #[test]
    fn batch_mixes_primary_merge_and_full() {
        let mut m: Mshr<u32, u32> = Mshr::new(2);
        let mut out = Vec::new();
        m.allocate_batch([(1, 10), (1, 11), (2, 20), (3, 30)], &mut out);
        assert_eq!(
            out,
            vec![
                Ok(Allocation::Primary),
                Ok(Allocation::Merged),
                Ok(Allocation::Primary),
                Err(MshrError::Full),
            ]
        );
        assert_eq!(m.complete(1), vec![10, 11]);
    }

    #[test]
    fn complete_unknown_key_is_empty() {
        let mut m: Mshr<u32, u32> = Mshr::new(2);
        assert!(m.complete(9).is_empty());
    }

    #[test]
    fn frees_capacity_after_complete() {
        let mut m: Mshr<u32, ()> = Mshr::new(1);
        m.allocate(1, ()).unwrap();
        assert!(m.is_full());
        m.complete(1);
        assert!(!m.is_full());
        assert_eq!(m.allocate(2, ()), Ok(Allocation::Primary));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Mshr<u32, ()> = Mshr::new(0);
    }

    #[test]
    fn error_display() {
        assert_eq!(MshrError::Full.to_string(), "all MSHR entries are in use");
    }
}
