//! The shared memory system below the SMs: banked L2 cache + DRAM.
//!
//! Every request that misses a private L1 — data accesses and page-table
//! walk accesses alike — goes through [`MemSystem::access`]. Page-table
//! entries are cacheable in the L2 (as in the paper's baseline), and the
//! MASK-style policy can selectively bypass the L2 for them.

use walksteal_sim_core::{Cycle, LineAddr};

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};

/// What kind of request is accessing the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// An ordinary data access on behalf of a warp.
    Data,
    /// A page-table access on behalf of a walker.
    PageTable,
    /// A page-table access that must bypass the L2 (MASK's PTE bypassing).
    PageTableBypass,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the shared L2 cache.
    L2,
    /// Served by device memory.
    Dram,
}

/// Result of one [`MemSystem::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycles from issue until data returns.
    pub latency: u64,
    /// Which level served the request.
    pub level: HitLevel,
}

/// Configuration of the shared L2 + DRAM composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Number of L2 banks; must be a power of two. Lines interleave across
    /// banks by address.
    pub l2_banks: usize,
    /// Geometry of each L2 bank.
    pub l2_bank: CacheConfig,
    /// Latency of an L2 hit (interconnect traversal + bank access).
    pub l2_hit_latency: u64,
    /// Cycles one access occupies its L2 bank.
    pub l2_bank_occupancy: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl Default for MemSystemConfig {
    /// The paper's baseline: 2 MB, 16-way, 16-bank L2 (128-byte lines) over
    /// 16 DRAM channels.
    fn default() -> Self {
        MemSystemConfig {
            l2_banks: 16,
            // 2 MB / 128 B = 16384 lines; /16 banks = 1024 lines; 16-way => 64 sets.
            l2_bank: CacheConfig { sets: 64, ways: 16 },
            l2_hit_latency: 130,
            l2_bank_occupancy: 2,
            dram: DramConfig::default(),
        }
    }
}

/// Statistics collected by the [`MemSystem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data accesses that hit in the L2.
    pub data_l2_hits: u64,
    /// Data accesses served by DRAM.
    pub data_dram: u64,
    /// Page-table accesses that hit in the L2.
    pub pt_l2_hits: u64,
    /// Page-table accesses served by DRAM (including bypasses).
    pub pt_dram: u64,
}

/// The shared L2 cache (banked) plus DRAM.
///
/// # Examples
///
/// ```
/// use walksteal_mem::{MemSystem, MemSystemConfig, AccessKind, HitLevel};
/// use walksteal_sim_core::{Cycle, LineAddr};
///
/// let mut mem = MemSystem::new(MemSystemConfig::default());
/// let a = mem.access(LineAddr(1), Cycle(0), AccessKind::PageTable);
/// assert_eq!(a.level, HitLevel::Dram);
/// let b = mem.access(LineAddr(1), Cycle(500), AccessKind::PageTable);
/// assert_eq!(b.level, HitLevel::L2); // PTEs are cacheable in L2
/// ```
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    banks: Vec<Cache>,
    bank_free: Vec<Cycle>,
    dram: Dram,
    stats: MemStats,
}

impl MemSystem {
    /// Creates an idle, empty memory system.
    ///
    /// # Panics
    ///
    /// Panics if `l2_banks` is not a power of two.
    #[must_use]
    pub fn new(cfg: MemSystemConfig) -> Self {
        assert!(
            cfg.l2_banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        MemSystem {
            cfg,
            banks: (0..cfg.l2_banks).map(|_| Cache::new(cfg.l2_bank)).collect(),
            bank_free: vec![Cycle::ZERO; cfg.l2_banks],
            dram: Dram::new(cfg.dram),
            stats: MemStats::default(),
        }
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.cfg.l2_banks - 1)
    }

    /// Index of the L2 set/bank residue used by the bank to cache `line`.
    /// Banked caches index on the address above the bank bits so that
    /// consecutive lines spread across banks without aliasing within one.
    fn bank_line(&self, line: LineAddr) -> LineAddr {
        LineAddr(line.0 >> self.cfg.l2_banks.trailing_zeros())
    }

    /// Issues an access to `line` at cycle `now`.
    ///
    /// Models L2 bank contention, L2 lookup, DRAM on a miss, and the L2 fill.
    /// [`AccessKind::PageTableBypass`] skips the L2 entirely (MASK-style PTE
    /// bypassing).
    pub fn access(&mut self, line: LineAddr, now: Cycle, kind: AccessKind) -> Access {
        let bank = self.bank_of(line);
        let start = self.bank_free[bank].max(now);
        let bank_wait = start - now;
        self.bank_free[bank] = start + self.cfg.l2_bank_occupancy;

        if kind == AccessKind::PageTableBypass {
            let dram_latency = self.dram.access(line, start + self.cfg.l2_hit_latency);
            self.stats.pt_dram += 1;
            return Access {
                latency: bank_wait + self.cfg.l2_hit_latency + dram_latency,
                level: HitLevel::Dram,
            };
        }

        let bline = self.bank_line(line);
        if self.banks[bank].probe(bline) {
            match kind {
                AccessKind::Data => self.stats.data_l2_hits += 1,
                AccessKind::PageTable => self.stats.pt_l2_hits += 1,
                AccessKind::PageTableBypass => unreachable!("handled above"),
            }
            return Access {
                latency: bank_wait + self.cfg.l2_hit_latency,
                level: HitLevel::L2,
            };
        }

        let dram_latency = self.dram.access(line, start + self.cfg.l2_hit_latency);
        self.banks[bank].fill(bline);
        match kind {
            AccessKind::Data => self.stats.data_dram += 1,
            AccessKind::PageTable => self.stats.pt_dram += 1,
            AccessKind::PageTableBypass => unreachable!("handled above"),
        }
        Access {
            latency: bank_wait + self.cfg.l2_hit_latency + dram_latency,
            level: HitLevel::Dram,
        }
    }

    /// Whether `line` is currently resident in the L2.
    #[must_use]
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        let bank = self.bank_of(line);
        self.banks[bank].contains(self.bank_line(line))
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> MemSystemConfig {
        self.cfg
    }

    /// Mean DRAM channel queue wait (cycles per access).
    #[must_use]
    pub fn dram_mean_queue_wait(&self) -> f64 {
        self.dram.mean_queue_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemSystem {
        MemSystem::new(MemSystemConfig {
            l2_banks: 2,
            l2_bank: CacheConfig { sets: 2, ways: 2 },
            l2_hit_latency: 10,
            l2_bank_occupancy: 2,
            dram: DramConfig {
                channels: 2,
                access_latency: 100,
                occupancy_cycles: 5,
            },
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut m = small();
        let a = m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        assert_eq!(a.level, HitLevel::Dram);
        assert_eq!(a.latency, 110);
        let b = m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        assert_eq!(b.level, HitLevel::L2);
        assert_eq!(b.latency, 10);
    }

    #[test]
    fn bank_contention_adds_wait() {
        let mut m = small();
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        // Immediately after, the bank is busy for occupancy cycles.
        let c = m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        assert_eq!(c.latency, 2 + 10);
    }

    #[test]
    fn pte_bypass_always_goes_to_dram() {
        let mut m = small();
        m.access(LineAddr(4), Cycle(0), AccessKind::PageTable);
        assert!(m.l2_contains(LineAddr(4)));
        let a = m.access(LineAddr(4), Cycle(1000), AccessKind::PageTableBypass);
        assert_eq!(a.level, HitLevel::Dram);
        // Bypass must not have disturbed residency either way.
        assert!(m.l2_contains(LineAddr(4)));
    }

    #[test]
    fn pt_accesses_cacheable() {
        let mut m = small();
        let a = m.access(LineAddr(8), Cycle(0), AccessKind::PageTable);
        assert_eq!(a.level, HitLevel::Dram);
        let b = m.access(LineAddr(8), Cycle(1000), AccessKind::PageTable);
        assert_eq!(b.level, HitLevel::L2);
        assert_eq!(m.stats().pt_l2_hits, 1);
        assert_eq!(m.stats().pt_dram, 1);
    }

    #[test]
    fn banks_index_above_bank_bits() {
        let mut m = small();
        // Lines 0 and 2 both live in bank 0 but must occupy *different* sets
        // (bank-internal index is line >> bank_bits: 0 -> set 0, 2 -> set 1).
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(2), Cycle(0), AccessKind::Data);
        assert!(m.l2_contains(LineAddr(0)));
        assert!(m.l2_contains(LineAddr(2)));
    }

    #[test]
    fn stats_split_data_and_pt() {
        let mut m = small();
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(0), Cycle(500), AccessKind::Data);
        m.access(LineAddr(1), Cycle(0), AccessKind::PageTable);
        let s = m.stats();
        assert_eq!(s.data_dram, 1);
        assert_eq!(s.data_l2_hits, 1);
        assert_eq!(s.pt_dram, 1);
        assert_eq!(s.pt_l2_hits, 0);
    }
}
