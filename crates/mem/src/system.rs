//! The shared memory system below the SMs: banked L2 cache + DRAM.
//!
//! Every request that misses a private L1 — data accesses and page-table
//! walk accesses alike — goes through [`MemSystem::access`]. Page-table
//! entries are cacheable in the L2 (as in the paper's baseline), and the
//! MASK-style policy can selectively bypass the L2 for them.
//!
//! A cycle's worth of coalesced requests can instead resolve in one pass
//! through [`MemSystem::access_batch`], which groups requests per L2 bank
//! and replays the scalar arbitration order bit-identically (see its docs
//! for the equivalence argument); serial page-walk PTE chains go through
//! [`MemSystem::access_chain`].

use walksteal_sim_core::{Cycle, LineAddr};

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};

/// What kind of request is accessing the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// An ordinary data access on behalf of a warp.
    Data,
    /// A page-table access on behalf of a walker.
    PageTable,
    /// A page-table access that must bypass the L2 (MASK's PTE bypassing).
    PageTableBypass,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the shared L2 cache.
    L2,
    /// Served by device memory.
    Dram,
}

/// Result of one [`MemSystem::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycles from issue until data returns.
    pub latency: u64,
    /// Which level served the request.
    pub level: HitLevel,
}

/// Configuration of the shared L2 + DRAM composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// Number of L2 banks; must be a power of two. Lines interleave across
    /// banks by address.
    pub l2_banks: usize,
    /// Geometry of each L2 bank.
    pub l2_bank: CacheConfig,
    /// Latency of an L2 hit (interconnect traversal + bank access).
    pub l2_hit_latency: u64,
    /// Cycles one access occupies its L2 bank.
    pub l2_bank_occupancy: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl Default for MemSystemConfig {
    /// The paper's baseline: 2 MB, 16-way, 16-bank L2 (128-byte lines) over
    /// 16 DRAM channels.
    fn default() -> Self {
        MemSystemConfig {
            l2_banks: 16,
            // 2 MB / 128 B = 16384 lines; /16 banks = 1024 lines; 16-way => 64 sets.
            l2_bank: CacheConfig { sets: 64, ways: 16 },
            l2_hit_latency: 130,
            l2_bank_occupancy: 2,
            dram: DramConfig::default(),
        }
    }
}

/// Statistics collected by the [`MemSystem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data accesses that hit in the L2.
    pub data_l2_hits: u64,
    /// Data accesses served by DRAM.
    pub data_dram: u64,
    /// Page-table accesses that hit in the L2.
    pub pt_l2_hits: u64,
    /// Page-table accesses served by DRAM (including bypasses).
    pub pt_dram: u64,
}

/// The shared L2 cache (banked) plus DRAM.
///
/// # Examples
///
/// ```
/// use walksteal_mem::{MemSystem, MemSystemConfig, AccessKind, HitLevel};
/// use walksteal_sim_core::{Cycle, LineAddr};
///
/// let mut mem = MemSystem::new(MemSystemConfig::default());
/// let a = mem.access(LineAddr(1), Cycle(0), AccessKind::PageTable);
/// assert_eq!(a.level, HitLevel::Dram);
/// let b = mem.access(LineAddr(1), Cycle(500), AccessKind::PageTable);
/// assert_eq!(b.level, HitLevel::L2); // PTEs are cacheable in L2
/// ```
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    banks: Vec<Cache>,
    bank_free: Vec<Cycle>,
    dram: Dram,
    stats: MemStats,
    scratch: BatchScratch,
}

/// Reusable buffers for [`MemSystem::access_batch`], so the steady-state
/// batched path allocates nothing.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Requests per bank this batch.
    counts: Vec<u32>,
    /// Start offset of each bank's run in `grouped`.
    offsets: Vec<u32>,
    /// Requests already placed per bank while grouping.
    seen: Vec<u32>,
    /// Request indices, grouped by bank, original order within a bank.
    grouped: Vec<u32>,
    /// Per-bank arbitration base cycle (`bank_free.max(now)`).
    base: Vec<Cycle>,
    /// Per-request bank-arbitrated start cycle.
    start: Vec<Cycle>,
    /// Per-request L2 outcome.
    hit: Vec<bool>,
    /// One bank's in-bank line indices.
    blines: Vec<LineAddr>,
    /// One bank's probe results.
    bhits: Vec<bool>,
    /// The DRAM-bound subset, original request order.
    dram: Vec<(LineAddr, Cycle)>,
    /// DRAM latencies for that subset.
    dram_lat: Vec<u64>,
}

impl MemSystem {
    /// Creates an idle, empty memory system.
    ///
    /// # Panics
    ///
    /// Panics if `l2_banks` is not a power of two.
    #[must_use]
    pub fn new(cfg: MemSystemConfig) -> Self {
        assert!(
            cfg.l2_banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        MemSystem {
            cfg,
            banks: (0..cfg.l2_banks).map(|_| Cache::new(cfg.l2_bank)).collect(),
            bank_free: vec![Cycle::ZERO; cfg.l2_banks],
            dram: Dram::new(cfg.dram),
            stats: MemStats::default(),
            scratch: BatchScratch::default(),
        }
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.cfg.l2_banks - 1)
    }

    /// Index of the L2 set/bank residue used by the bank to cache `line`.
    /// Banked caches index on the address above the bank bits so that
    /// consecutive lines spread across banks without aliasing within one.
    fn bank_line(&self, line: LineAddr) -> LineAddr {
        LineAddr(line.0 >> self.cfg.l2_banks.trailing_zeros())
    }

    /// Issues an access to `line` at cycle `now`.
    ///
    /// Models L2 bank contention, L2 lookup, DRAM on a miss, and the L2 fill.
    /// [`AccessKind::PageTableBypass`] skips the L2 entirely (MASK-style PTE
    /// bypassing).
    pub fn access(&mut self, line: LineAddr, now: Cycle, kind: AccessKind) -> Access {
        let bank = self.bank_of(line);
        let start = self.bank_free[bank].max(now);
        let bank_wait = start - now;
        self.bank_free[bank] = start + self.cfg.l2_bank_occupancy;

        if kind == AccessKind::PageTableBypass {
            let dram_latency = self.dram.access(line, start + self.cfg.l2_hit_latency);
            self.stats.pt_dram += 1;
            return Access {
                latency: bank_wait + self.cfg.l2_hit_latency + dram_latency,
                level: HitLevel::Dram,
            };
        }

        let bline = self.bank_line(line);
        if self.banks[bank].probe(bline) {
            match kind {
                AccessKind::Data => self.stats.data_l2_hits += 1,
                AccessKind::PageTable => self.stats.pt_l2_hits += 1,
                AccessKind::PageTableBypass => unreachable!("handled above"),
            }
            return Access {
                latency: bank_wait + self.cfg.l2_hit_latency,
                level: HitLevel::L2,
            };
        }

        let dram_latency = self.dram.access(line, start + self.cfg.l2_hit_latency);
        self.banks[bank].fill(bline);
        match kind {
            AccessKind::Data => self.stats.data_dram += 1,
            AccessKind::PageTable => self.stats.pt_dram += 1,
            AccessKind::PageTableBypass => unreachable!("handled above"),
        }
        Access {
            latency: bank_wait + self.cfg.l2_hit_latency + dram_latency,
            level: HitLevel::Dram,
        }
    }

    /// Narrowest batch the grouped per-bank/per-channel pass is used for;
    /// below it [`MemSystem::access_batch`] replays the scalar path, which
    /// measures faster (both produce bit-identical results). Exposed so the
    /// differential suites can straddle the crossover on purpose.
    pub const GROUPED_MIN: usize = 32;

    /// Resolves a same-cycle batch of accesses in one pass, appending one
    /// [`Access`] per line to `out`, in element order. Bit-identical to
    /// calling [`MemSystem::access`] per element in order:
    ///
    /// * **Bank arbitration.** Bank state is per-bank and `now` is uniform,
    ///   so each bank's requests start at `base, base + occupancy, …` with
    ///   `base = bank_free.max(now)` — the closed form of the scalar
    ///   per-request `max`, computed once per bank against the SoA
    ///   `bank_free` state.
    /// * **L2 probes/fills.** Cache state is per-bank, so requests are
    ///   replayed grouped by bank, preserving original order *within* each
    ///   bank (a fill from request *i* may change request *j*'s probe on the
    ///   same line); [`Cache::probe_fill_batch`] keeps the tick/LRU sequence
    ///   exact.
    /// * **DRAM.** The channel mask differs from the bank mask, so requests
    ///   in different banks can contend on one channel; the DRAM-bound
    ///   subset is issued in original request order, which
    ///   [`Dram::access_batch`] replays exactly.
    ///
    /// Statistics are order-independent sums and match the scalar path.
    ///
    /// Narrow batches replay the scalar path directly: its per-access work
    /// (a masked bank index, one `max`, one set probe) is too cheap for the
    /// grouping pass to amortize, so the counting sort only pays once a
    /// burst is wide enough to keep each bank's sub-batch dense (measured
    /// crossover on the dev host: well above a warp's worth of lines).
    pub fn access_batch(
        &mut self,
        lines: &[LineAddr],
        now: Cycle,
        kind: AccessKind,
        out: &mut Vec<Access>,
    ) {
        if lines.len() < Self::GROUPED_MIN {
            out.reserve(lines.len());
            for &line in lines {
                let a = self.access(line, now, kind);
                out.push(a);
            }
            return;
        }
        let n = lines.len();
        let nb = self.cfg.l2_banks;
        let occ = self.cfg.l2_bank_occupancy;
        let hit_lat = self.cfg.l2_hit_latency;
        let bank_bits = self.cfg.l2_banks.trailing_zeros();
        let mut s = std::mem::take(&mut self.scratch);

        // Stage A: group by bank (order-preserving counting sort) and
        // arbitrate each bank's run in closed form.
        s.counts.clear();
        s.counts.resize(nb, 0);
        for &line in lines {
            s.counts[self.bank_of(line)] += 1;
        }
        s.offsets.clear();
        s.base.clear();
        let mut acc = 0u32;
        for b in 0..nb {
            s.offsets.push(acc);
            acc += s.counts[b];
            let base = self.bank_free[b].max(now);
            if s.counts[b] > 0 {
                self.bank_free[b] = base + u64::from(s.counts[b]) * occ;
            }
            s.base.push(base);
        }
        s.seen.clear();
        s.seen.resize(nb, 0);
        s.grouped.clear();
        s.grouped.resize(n, 0);
        s.start.clear();
        for (i, &line) in lines.iter().enumerate() {
            let b = self.bank_of(line);
            let k = s.seen[b];
            s.seen[b] = k + 1;
            s.grouped[(s.offsets[b] + k) as usize] = i as u32;
            s.start.push(s.base[b] + u64::from(k) * occ);
        }

        // Stage B: per-bank L2 probe/fill replay (bypasses skip the L2).
        if kind == AccessKind::PageTableBypass {
            self.stats.pt_dram += n as u64;
        } else {
            s.hit.clear();
            s.hit.resize(n, false);
            let mut hits_total = 0u64;
            for b in 0..nb {
                let lo = s.offsets[b] as usize;
                let hi = lo + s.counts[b] as usize;
                if lo == hi {
                    continue;
                }
                s.blines.clear();
                for &i in &s.grouped[lo..hi] {
                    s.blines.push(LineAddr(lines[i as usize].0 >> bank_bits));
                }
                s.bhits.clear();
                self.banks[b].probe_fill_batch(&s.blines, &mut s.bhits);
                for (j, &i) in s.grouped[lo..hi].iter().enumerate() {
                    if s.bhits[j] {
                        s.hit[i as usize] = true;
                        hits_total += 1;
                    }
                }
            }
            let miss_total = n as u64 - hits_total;
            match kind {
                AccessKind::Data => {
                    self.stats.data_l2_hits += hits_total;
                    self.stats.data_dram += miss_total;
                }
                AccessKind::PageTable => {
                    self.stats.pt_l2_hits += hits_total;
                    self.stats.pt_dram += miss_total;
                }
                AccessKind::PageTableBypass => unreachable!("handled above"),
            }
        }

        // Stage C: the DRAM-bound subset, in original request order.
        s.dram.clear();
        for (i, &line) in lines.iter().enumerate() {
            if kind == AccessKind::PageTableBypass || !s.hit[i] {
                s.dram.push((line, s.start[i] + hit_lat));
            }
        }
        s.dram_lat.clear();
        self.dram.access_batch(&s.dram, &mut s.dram_lat);

        // Stage D: assemble results in element order.
        out.reserve(n);
        let mut d = 0usize;
        for i in 0..n {
            let bank_wait = s.start[i] - now;
            if kind != AccessKind::PageTableBypass && s.hit[i] {
                out.push(Access {
                    latency: bank_wait + hit_lat,
                    level: HitLevel::L2,
                });
            } else {
                out.push(Access {
                    latency: bank_wait + hit_lat + s.dram_lat[d],
                    level: HitLevel::Dram,
                });
                d += 1;
            }
        }
        self.scratch = s;
    }

    /// Issues a serial chain of dependent accesses — access `i + 1` starts
    /// the cycle access `i`'s data returns — appending each [`Access`] to
    /// `out` and returning the chain's completion cycle. Equivalent to
    /// calling [`MemSystem::access`] per line with `at += latency`; this is
    /// the page-table walker's PTE fetch pattern, batched so the walker
    /// dispatch loop crosses into the memory system once per walk.
    pub fn access_chain(
        &mut self,
        lines: &[LineAddr],
        start: Cycle,
        kind: AccessKind,
        out: &mut Vec<Access>,
    ) -> Cycle {
        let mut at = start;
        out.reserve(lines.len());
        for &line in lines {
            let a = self.access(line, at, kind);
            at += a.latency;
            out.push(a);
        }
        at
    }

    /// Whether `line` is currently resident in the L2.
    #[must_use]
    pub fn l2_contains(&self, line: LineAddr) -> bool {
        let bank = self.bank_of(line);
        self.banks[bank].contains(self.bank_line(line))
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> MemSystemConfig {
        self.cfg
    }

    /// Mean DRAM channel queue wait (cycles per access).
    #[must_use]
    pub fn dram_mean_queue_wait(&self) -> f64 {
        self.dram.mean_queue_wait()
    }

    /// The DRAM model, for inspection (differential tests compare channel
    /// occupancy and queue-wait state between scalar and batched paths).
    #[must_use]
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Per-bank next-free cycles, for inspection by differential tests.
    #[must_use]
    pub fn bank_free(&self) -> &[Cycle] {
        &self.bank_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemSystem {
        MemSystem::new(MemSystemConfig {
            l2_banks: 2,
            l2_bank: CacheConfig { sets: 2, ways: 2 },
            l2_hit_latency: 10,
            l2_bank_occupancy: 2,
            dram: DramConfig {
                channels: 2,
                access_latency: 100,
                occupancy_cycles: 5,
            },
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut m = small();
        let a = m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        assert_eq!(a.level, HitLevel::Dram);
        assert_eq!(a.latency, 110);
        let b = m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        assert_eq!(b.level, HitLevel::L2);
        assert_eq!(b.latency, 10);
    }

    #[test]
    fn bank_contention_adds_wait() {
        let mut m = small();
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        // Immediately after, the bank is busy for occupancy cycles.
        let c = m.access(LineAddr(0), Cycle(1000), AccessKind::Data);
        assert_eq!(c.latency, 2 + 10);
    }

    #[test]
    fn pte_bypass_always_goes_to_dram() {
        let mut m = small();
        m.access(LineAddr(4), Cycle(0), AccessKind::PageTable);
        assert!(m.l2_contains(LineAddr(4)));
        let a = m.access(LineAddr(4), Cycle(1000), AccessKind::PageTableBypass);
        assert_eq!(a.level, HitLevel::Dram);
        // Bypass must not have disturbed residency either way.
        assert!(m.l2_contains(LineAddr(4)));
    }

    #[test]
    fn pt_accesses_cacheable() {
        let mut m = small();
        let a = m.access(LineAddr(8), Cycle(0), AccessKind::PageTable);
        assert_eq!(a.level, HitLevel::Dram);
        let b = m.access(LineAddr(8), Cycle(1000), AccessKind::PageTable);
        assert_eq!(b.level, HitLevel::L2);
        assert_eq!(m.stats().pt_l2_hits, 1);
        assert_eq!(m.stats().pt_dram, 1);
    }

    #[test]
    fn banks_index_above_bank_bits() {
        let mut m = small();
        // Lines 0 and 2 both live in bank 0 but must occupy *different* sets
        // (bank-internal index is line >> bank_bits: 0 -> set 0, 2 -> set 1).
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(2), Cycle(0), AccessKind::Data);
        assert!(m.l2_contains(LineAddr(0)));
        assert!(m.l2_contains(LineAddr(2)));
    }

    #[test]
    fn stats_split_data_and_pt() {
        let mut m = small();
        m.access(LineAddr(0), Cycle(0), AccessKind::Data);
        m.access(LineAddr(0), Cycle(500), AccessKind::Data);
        m.access(LineAddr(1), Cycle(0), AccessKind::PageTable);
        let s = m.stats();
        assert_eq!(s.data_dram, 1);
        assert_eq!(s.data_l2_hits, 1);
        assert_eq!(s.pt_dram, 1);
        assert_eq!(s.pt_l2_hits, 0);
    }

    /// Asserts every piece of externally observable state agrees between
    /// two systems: stats, bank timing, DRAM channel timing and counters.
    fn assert_state_eq(a: &MemSystem, b: &MemSystem) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.bank_free(), b.bank_free());
        assert_eq!(a.dram().next_free(), b.dram().next_free());
        assert_eq!(a.dram().accesses(), b.dram().accesses());
        assert!((a.dram_mean_queue_wait() - b.dram_mean_queue_wait()).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_scalar_per_step() {
        // 4 banks over 2 DRAM channels: banks 1 and 3 share channel 1, so
        // cross-bank channel contention is exercised (asserted below).
        let cfg = MemSystemConfig {
            l2_banks: 4,
            l2_bank: CacheConfig { sets: 2, ways: 2 },
            l2_hit_latency: 10,
            l2_bank_occupancy: 2,
            dram: DramConfig {
                channels: 2,
                access_latency: 100,
                occupancy_cycles: 5,
            },
        };
        let mut batched = MemSystem::new(cfg);
        let mut scalar = MemSystem::new(cfg);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut out = Vec::new();
        let mut now = Cycle::ZERO;
        for step in 0..150 {
            now += 3;
            // Every third step issues a burst wider than GROUPED_MIN so
            // both the scalar-replay fast path and the grouped pass run.
            let batch = if step % 3 == 0 {
                MemSystem::GROUPED_MIN + 2 + (state >> 61) as usize
            } else {
                2 + (state >> 61) as usize
            };
            let kind = match state >> 59 & 3 {
                0 => AccessKind::PageTable,
                1 => AccessKind::PageTableBypass,
                _ => AccessKind::Data,
            };
            let mut lines = Vec::new();
            for _ in 0..batch {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                lines.push(LineAddr(state >> 58));
            }
            out.clear();
            batched.access_batch(&lines, now, kind, &mut out);
            for (i, &line) in lines.iter().enumerate() {
                let want = scalar.access(line, now, kind);
                assert_eq!(out[i], want, "result diverged at step {step} index {i}");
            }
            assert_state_eq(&batched, &scalar);
            for &line in &lines {
                assert_eq!(batched.l2_contains(line), scalar.l2_contains(line));
            }
        }
        assert!(batched.dram_mean_queue_wait() > 0.0, "no channel conflicts exercised");
        let s = batched.stats();
        assert!(s.data_l2_hits > 0 && s.data_dram > 0 && s.pt_dram > 0, "vacuous mix");
    }

    #[test]
    fn batch_of_one_and_empty_are_scalar() {
        let mut batched = small();
        let mut scalar = small();
        let mut out = Vec::new();
        batched.access_batch(&[], Cycle(0), AccessKind::Data, &mut out);
        assert!(out.is_empty());
        batched.access_batch(&[LineAddr(3)], Cycle(0), AccessKind::Data, &mut out);
        assert_eq!(out, vec![scalar.access(LineAddr(3), Cycle(0), AccessKind::Data)]);
        assert_state_eq(&batched, &scalar);
    }

    #[test]
    fn chain_matches_sequential_dependent_accesses() {
        let mut chained = small();
        let mut scalar = small();
        let lines = [LineAddr(0), LineAddr(5), LineAddr(2), LineAddr(7)];
        let mut out = Vec::new();
        let end = chained.access_chain(&lines, Cycle(40), AccessKind::PageTable, &mut out);
        let mut at = Cycle(40);
        for (i, &line) in lines.iter().enumerate() {
            let want = scalar.access(line, at, AccessKind::PageTable);
            at += want.latency;
            assert_eq!(out[i], want);
        }
        assert_eq!(end, at);
        assert_state_eq(&chained, &scalar);
    }
}
