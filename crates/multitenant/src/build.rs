//! Fluent construction of a [`Simulation`]: tenants, policy preset, config
//! knobs, run budgets, and observability sinks in one place.
//!
//! [`SimulationBuilder`] is the single public construction path for
//! simulations. It applies configuration in the canonical order the
//! experiment suite uses — `for_tenants(n)` first, then the policy preset —
//! and every run is a [`ScenarioSpec`] underneath: a static tenant list is
//! the degenerate all-arrive-at-cycle-0 timeline, and
//! [`scenario`](SimulationBuilder::scenario) attaches a dynamic one.
//!
//! # Examples
//!
//! ```
//! use walksteal_multitenant::{PolicyPreset, SimulationBuilder};
//! use walksteal_workloads::AppId;
//!
//! let result = SimulationBuilder::new()
//!     .tenants([AppId::Gups, AppId::Mm])
//!     .preset(PolicyPreset::DwsPlusPlus)
//!     .n_sms(4)
//!     .warps_per_sm(4)
//!     .instructions_per_warp(400)
//!     .seed(1)
//!     .build()
//!     .run();
//! assert_eq!(result.tenants.len(), 2);
//! ```

use walksteal_sim_core::metrics::SharedMetrics;
use walksteal_sim_core::trace::{Observer, Tracer};
use walksteal_sim_core::{ConfigError, RunBudget, SimError};
use walksteal_vm::PageSize;
use walksteal_workloads::{AppId, AppProfile};

use crate::config::{GpuConfig, PolicyPreset};
use crate::metrics::SimResult;
use crate::pipeline::StreamPipelining;
use crate::scenario::ScenarioSpec;
use crate::sim::Simulation;

/// One tenant in a [`SimulationBuilder`]: which application it runs, or —
/// for fuzzer-generated tenants — an arbitrary behavioral profile.
///
/// Exists as its own type so per-tenant knobs have a home; it wraps an
/// [`AppId`] (and converts from one) or carries a full synthetic
/// [`AppProfile`] overriding the calibrated one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    app: AppId,
    profile: Option<AppProfile>,
}

impl TenantSpec {
    /// A tenant running `app` with its calibrated profile.
    #[must_use]
    pub fn new(app: AppId) -> Self {
        TenantSpec { app, profile: None }
    }

    /// A tenant running an arbitrary behavioral profile (the scenario
    /// fuzzer's synthetic tenants). The profile's `id` labels the tenant
    /// in results; behavior comes entirely from the profile's knobs.
    #[must_use]
    pub fn synthetic(profile: AppProfile) -> Self {
        TenantSpec {
            app: profile.id,
            profile: Some(profile),
        }
    }

    /// The application this tenant runs (the label, for synthetic tenants).
    #[must_use]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The behavioral profile this tenant simulates: the synthetic
    /// override if present, the app's calibrated profile otherwise.
    #[must_use]
    pub fn profile(&self) -> AppProfile {
        self.profile.unwrap_or_else(|| self.app.profile())
    }

    /// The synthetic profile override, if this spec carries one (the
    /// scenario JSON codec serializes it; calibrated specs serialize as
    /// their app name alone).
    pub(crate) fn profile_override(&self) -> Option<AppProfile> {
        self.profile
    }
}

impl From<AppId> for TenantSpec {
    fn from(app: AppId) -> Self {
        TenantSpec::new(app)
    }
}

/// Fluent builder for a [`Simulation`]. See the [module docs](self).
pub struct SimulationBuilder {
    cfg: GpuConfig,
    tenants: Vec<TenantSpec>,
    scenario: Option<ScenarioSpec>,
    preset: Option<PolicyPreset>,
    seed: u64,
    budget: RunBudget,
    obs: Observer,
    pipelining: StreamPipelining,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// A builder with the paper's Table I baseline configuration, no
    /// tenants, seed 42, an unlimited budget, and observability off.
    #[must_use]
    pub fn new() -> Self {
        SimulationBuilder {
            cfg: GpuConfig::default(),
            tenants: Vec::new(),
            scenario: None,
            preset: None,
            seed: 42,
            budget: RunBudget::unlimited(),
            obs: Observer::off(),
            pipelining: StreamPipelining::Auto,
        }
    }

    /// Replaces the base configuration (tenant count and preset are still
    /// applied on top at [`build`](Self::build) time).
    #[must_use]
    pub fn config(mut self, cfg: GpuConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Adds one tenant.
    #[must_use]
    pub fn tenant(mut self, spec: impl Into<TenantSpec>) -> Self {
        self.tenants.push(spec.into());
        self
    }

    /// Adds several tenants, in order.
    #[must_use]
    pub fn tenants<I>(mut self, specs: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<TenantSpec>,
    {
        self.tenants.extend(specs.into_iter().map(Into::into));
        self
    }

    /// Attaches a dynamic-tenancy scenario: the timeline supplies the
    /// tenants (mutually exclusive with [`tenant`](Self::tenant) /
    /// [`tenants`](Self::tenants)) and is validated at
    /// [`build`](Self::build) time. When the scenario declares SLO targets
    /// and no metrics registry was attached, one is attached automatically
    /// (the QoS controller reads walk latencies from it).
    #[must_use]
    pub fn scenario(mut self, spec: ScenarioSpec) -> Self {
        self.scenario = Some(spec);
        self
    }

    /// Applies a policy preset (after tenant-count specialization, matching
    /// the experiment suite's canonical order).
    #[must_use]
    pub fn preset(mut self, preset: PolicyPreset) -> Self {
        self.preset = Some(preset);
        self
    }

    /// Seeds all workload randomness (default: 42).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the run; [`run`](Self::run) fails with
    /// [`SimError::BudgetExceeded`] when blown (default: unlimited).
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a trace sink receiving walk-lifecycle events.
    #[must_use]
    pub fn tracer(mut self, tracer: impl Tracer + 'static) -> Self {
        self.obs.tracer = Some(Box::new(tracer));
        self
    }

    /// Attaches a metrics registry handle; keep a clone to read the
    /// collected counters and histograms after the run.
    #[must_use]
    pub fn metrics(mut self, metrics: SharedMetrics) -> Self {
        self.obs.metrics = Some(metrics);
        self
    }

    /// Sets the number of SMs.
    #[must_use]
    pub fn n_sms(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_n_sms(n);
        self
    }

    /// Sets resident warps per SM.
    #[must_use]
    pub fn warps_per_sm(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_warps_per_sm(n);
        self
    }

    /// Sets the base per-warp instruction budget per execution.
    #[must_use]
    pub fn instructions_per_warp(mut self, n: u64) -> Self {
        self.cfg = self.cfg.with_instructions_per_warp(n);
        self
    }

    /// Sets the L2 TLB size in entries (16-way).
    #[must_use]
    pub fn l2_tlb_entries(mut self, entries: usize) -> Self {
        self.cfg = self.cfg.with_l2_tlb_entries(entries);
        self
    }

    /// Sets the number of page-table walkers.
    #[must_use]
    pub fn walkers(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_walkers(n);
        self
    }

    /// Sets the page size.
    #[must_use]
    pub fn page_size(mut self, page_size: PageSize) -> Self {
        self.cfg = self.cfg.with_page_size(page_size);
        self
    }

    /// Enables periodic timeline sampling every `cycles` cycles.
    #[must_use]
    pub fn sample_interval(mut self, cycles: u64) -> Self {
        self.cfg = self.cfg.with_sample_interval(cycles);
        self
    }

    /// Controls epoch-pipelined warp-stream generation (default:
    /// [`StreamPipelining::Auto`]): whether epoch N+1's warp ops are
    /// generated on a second thread while epoch N simulates. Purely a
    /// performance knob — results are byte-identical in every mode — which
    /// is why it lives here and not in [`GpuConfig`] (config feeds
    /// result-cache keys; this must not).
    #[must_use]
    pub fn stream_pipelining(mut self, mode: StreamPipelining) -> Self {
        self.pipelining = mode;
        self
    }

    /// Builds the simulation: specializes the config for the tenant count,
    /// applies the preset, and attaches the observer.
    ///
    /// # Panics
    ///
    /// Panics if no tenants were added, or the configuration cannot host
    /// them (SMs/walkers not evenly divisible); use
    /// [`try_build`](Self::try_build) to get the rejection as a
    /// [`SimError::InvalidConfig`] instead.
    #[must_use]
    pub fn build(self) -> Simulation {
        self.try_build()
            .unwrap_or_else(|e| panic!("SimulationBuilder: {e}"))
    }

    /// Fallible form of [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when no tenants were added or
    /// the configuration cannot host them.
    pub fn try_build(mut self) -> Result<Simulation, SimError> {
        let scenario = match self.scenario.take() {
            Some(spec) => {
                if !self.tenants.is_empty() {
                    return Err(SimError::InvalidConfig(ConfigError::Scenario(
                        "a scenario supplies its own tenants; \
                         do not also add tenants to the builder"
                            .into(),
                    )));
                }
                spec.validate()?;
                self.tenants = spec.tenant_specs();
                if spec.has_slo_targets() && self.obs.metrics.is_none() {
                    self.obs.metrics = Some(SharedMetrics::new());
                }
                Some(spec)
            }
            None => None,
        };
        if self.tenants.is_empty() {
            return Err(SimError::InvalidConfig(ConfigError::NoTenants));
        }
        let profiles: Vec<AppProfile> = self.tenants.iter().map(TenantSpec::profile).collect();
        let mut cfg = self.cfg.try_for_tenants(profiles.len())?;
        if let Some(preset) = self.preset {
            cfg = cfg.try_with_preset(preset)?;
        }
        let mut sim =
            Simulation::with_profiles(cfg, &profiles, self.seed, self.obs, self.pipelining);
        if let Some(spec) = scenario {
            sim.attach_scenario(spec.compile());
        }
        Ok(sim)
    }

    /// Builds and runs under the configured budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration is
    /// rejected, or [`SimError::BudgetExceeded`] when the budget is blown.
    pub fn run(self) -> Result<SimResult, SimError> {
        let budget = self.budget.clone();
        self.try_build()?.run_budgeted(&budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimulationBuilder {
        SimulationBuilder::new()
            .n_sms(4)
            .warps_per_sm(4)
            .instructions_per_warp(400)
    }

    #[test]
    fn builder_matches_direct_construction() {
        // The builder must replay bit-identically to the internal
        // construction path it wraps (config specialized for the tenant
        // count first, then the preset).
        let cfg = GpuConfig::default()
            .with_n_sms(4)
            .with_warps_per_sm(4)
            .with_instructions_per_warp(400)
            .for_tenants(2)
            .with_preset(PolicyPreset::DwsPlusPlus);
        let profiles = [AppId::Gups.profile(), AppId::Mm.profile()];
        let direct =
            Simulation::with_profiles(cfg, &profiles, 7, Observer::off(), StreamPipelining::Off)
                .run();
        let built = small()
            .tenants([AppId::Gups, AppId::Mm])
            .preset(PolicyPreset::DwsPlusPlus)
            .seed(7)
            .stream_pipelining(StreamPipelining::Off)
            .build()
            .run();
        assert_eq!(direct, built);
    }

    #[test]
    fn static_scenario_is_degenerate() {
        // An all-arrive-at-cycle-0 scenario must produce the same per-tenant
        // results, cycle count, and event count as the plain tenant list —
        // the scenario machinery costs a static run nothing but the extra
        // churn report.
        let apps = [AppId::Gups, AppId::Mm];
        let plain = small()
            .tenants(apps)
            .preset(PolicyPreset::Dws)
            .seed(7)
            .build()
            .run();
        let scenario = small()
            .scenario(ScenarioSpec::static_run(apps))
            .preset(PolicyPreset::Dws)
            .seed(7)
            .build()
            .run();
        assert_eq!(plain.tenants, scenario.tenants);
        assert_eq!(plain.cycles, scenario.cycles);
        assert_eq!(plain.events, scenario.events);
        assert!(plain.churn.is_none());
        let churn = scenario.churn.expect("scenario runs report churn");
        assert_eq!(churn.evictions, 0);
        assert_eq!(churn.throttles, 0);
        assert!(churn.tenants.iter().all(|t| t.arrived == Some(0)));
        assert!(churn.tenants.iter().all(|t| t.departed.is_none()));
    }

    #[test]
    fn scenario_and_tenants_are_mutually_exclusive() {
        let err = small()
            .tenant(AppId::Mm)
            .scenario(ScenarioSpec::static_run([AppId::Gups]))
            .try_build()
            .err()
            .unwrap();
        assert!(
            matches!(err, SimError::InvalidConfig(ConfigError::Scenario(_))),
            "{err}"
        );
    }

    #[test]
    fn invalid_scenario_is_rejected_at_build() {
        let err = small()
            .scenario(ScenarioSpec::new().arrive(5, AppId::Mm))
            .try_build()
            .err()
            .unwrap();
        assert!(
            matches!(err, SimError::InvalidConfig(ConfigError::Scenario(_))),
            "{err}"
        );
    }

    #[test]
    fn tenant_specs_convert_from_app_ids() {
        let spec: TenantSpec = AppId::Mm.into();
        assert_eq!(spec.app(), AppId::Mm);
        let r = small().tenant(spec).tenant(AppId::Gups).seed(1).build().run();
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].app, AppId::Mm);
        assert_eq!(r.tenants[1].app, AppId::Gups);
    }

    #[test]
    fn synthetic_tenant_with_calibrated_profile_matches_app_id() {
        // A synthetic spec carrying an app's own calibrated profile must be
        // indistinguishable from the plain AppId path — same construction,
        // same result, bit for bit.
        let run = |spec: TenantSpec| {
            small()
                .tenant(spec)
                .tenant(AppId::Mm)
                .preset(PolicyPreset::Dws)
                .seed(3)
                .build()
                .run()
        };
        let by_id = run(TenantSpec::new(AppId::Gups));
        let by_profile = run(TenantSpec::synthetic(AppId::Gups.profile()));
        assert_eq!(by_id, by_profile);
    }

    #[test]
    fn synthetic_profile_changes_behavior() {
        // A genuinely different profile must actually drive the simulation
        // differently (the override is not ignored).
        let mut profile = AppId::Mm.profile();
        profile.cold_pages = 2048;
        profile.cold_prob = 0.8;
        let baseline = small()
            .tenants([AppId::Mm, AppId::Mm])
            .preset(PolicyPreset::Dws)
            .seed(3)
            .build()
            .run();
        let overridden = small()
            .tenant(TenantSpec::synthetic(profile))
            .tenant(AppId::Mm)
            .preset(PolicyPreset::Dws)
            .seed(3)
            .build()
            .run();
        assert_eq!(overridden.tenants[0].app, AppId::Mm, "label preserved");
        assert_ne!(baseline, overridden, "profile override had no effect");
    }

    #[test]
    fn pipelined_stream_handoff_is_deterministic() {
        // A budget long enough that the light tenant relaunches, so the
        // epoch hand-off (`advance_epoch`) is exercised, not just epoch 0.
        let run = |mode| {
            small()
                .instructions_per_warp(2_000)
                .tenants([AppId::Gups, AppId::Mm])
                .preset(PolicyPreset::DwsPlusPlus)
                .seed(9)
                .stream_pipelining(mode)
                .build()
                .run()
        };
        let inline = run(StreamPipelining::Off);
        let overlapped = run(StreamPipelining::On);
        assert!(inline.tenants[1].completed_executions > 1, "want a relaunch");
        assert_eq!(inline, overlapped);
        assert_eq!(inline, run(StreamPipelining::Auto));
    }

    #[test]
    fn budgeted_run_surfaces_errors() {
        let err = small()
            .tenants([AppId::Gups, AppId::Mm])
            .seed(1)
            .budget(RunBudget::unlimited().with_max_events(100))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn building_without_tenants_panics() {
        let _ = SimulationBuilder::new().build();
    }

    #[test]
    fn try_build_reports_invalid_configs() {
        let err = SimulationBuilder::new().try_build().err().unwrap();
        assert_eq!(err, SimError::InvalidConfig(ConfigError::NoTenants));

        let err = SimulationBuilder::new()
            .n_sms(31)
            .tenants([AppId::Gups, AppId::Mm])
            .try_build()
            .err()
            .unwrap();
        assert!(
            matches!(
                err,
                SimError::InvalidConfig(ConfigError::UnevenSplit { resource: "SMs", .. })
            ),
            "{err}"
        );

        // 16 walkers cannot partition across 3 tenants; the rejection flows
        // through `run` as well, instead of panicking.
        let err = SimulationBuilder::new()
            .n_sms(30)
            .tenants([AppId::Gups, AppId::Mm, AppId::Tds])
            .preset(PolicyPreset::Dws)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::InvalidConfig(ConfigError::UnevenSplit {
                    resource: "walkers",
                    ..
                })
            ),
            "{err}"
        );
    }
}
