//! Simulator configuration: the paper's Table I baseline plus the policy
//! presets its evaluation compares.

use walksteal_gpu::SmConfig;
use walksteal_mem::MemSystemConfig;
use walksteal_sim_core::ConfigError;
use walksteal_vm::{
    ArenaTlbKind, DwsPlusPlusParams, MaskConfig, PageSize, Replacement, StealMode, TlbConfig,
    WalkConfig, WalkPolicyKind,
};

/// The configurations compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyPreset {
    /// Today's design: shared L2 TLB, one shared walk queue (Table I).
    Baseline,
    /// Baseline with doubled virtual-memory resources (2048-entry TLB, 32
    /// walkers) but still uncontrolled sharing (§IV "does increasing ...").
    DoubledBaseline,
    /// Exclusive full-size L2 TLB per tenant; walkers still shared (§IV).
    STlb,
    /// Exclusive L2 TLB *and* walkers per tenant (§IV upper bound).
    STlbPtw,
    /// Walkers statically partitioned, no stealing (Fig. 11 "Static").
    StaticPartition,
    /// Dynamic walk stealing.
    Dws,
    /// DWS++ with the paper's default parameters (Table IV).
    DwsPlusPlus,
    /// DWS++ steal-conservative variant (Table VII).
    DwsPlusPlusConservative,
    /// DWS++ steal-aggressive variant (Table VII).
    DwsPlusPlusAggressive,
    /// MASK-style TLB-fill tokens + PTE bypass over the baseline walkers.
    Mask,
    /// MASK combined with DWS (the two are orthogonal; Fig. 11).
    MaskDws,
    /// Sub-entry-sharing L2 TLB for MIG-style partitioning
    /// (arXiv 2404.18361): statically partitioned walkers, shared L2 TLB
    /// whose entries hold per-tenant sub-entries with sharing-aware
    /// replacement.
    SubEntryTlb,
    /// Mosaic-style transparent large pages (arXiv 1804.11265): a
    /// contiguity-reserving allocator plus a multi-page-size L2 TLB path
    /// that coalesces/splinters at allocation-group boundaries, over DWS
    /// walkers.
    MosaicPages,
    /// Dead-entry TLB-miss prediction (arXiv 2606.00486) layered onto the
    /// shared L2 TLB, over DWS walkers.
    DeadEntryGuard,
}

impl PolicyPreset {
    /// All presets, in evaluation order (paper presets first, then the
    /// policy-arena competitors from related work).
    pub const ALL: [PolicyPreset; 14] = [
        PolicyPreset::Baseline,
        PolicyPreset::DoubledBaseline,
        PolicyPreset::STlb,
        PolicyPreset::STlbPtw,
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
        PolicyPreset::DwsPlusPlusConservative,
        PolicyPreset::DwsPlusPlusAggressive,
        PolicyPreset::Mask,
        PolicyPreset::MaskDws,
        PolicyPreset::SubEntryTlb,
        PolicyPreset::MosaicPages,
        PolicyPreset::DeadEntryGuard,
    ];

    /// The policy-arena competitors (suffix of [`ALL`](Self::ALL)): the
    /// related-work designs raced against DWS/DWS++ in the arena suites.
    pub const ARENA: [PolicyPreset; 3] = [
        PolicyPreset::SubEntryTlb,
        PolicyPreset::MosaicPages,
        PolicyPreset::DeadEntryGuard,
    ];

    /// A short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PolicyPreset::Baseline => "Baseline",
            PolicyPreset::DoubledBaseline => "Baseline-2x",
            PolicyPreset::STlb => "S-TLB",
            PolicyPreset::STlbPtw => "S-(TLB+PTW)",
            PolicyPreset::StaticPartition => "Static",
            PolicyPreset::Dws => "DWS",
            PolicyPreset::DwsPlusPlus => "DWS++",
            PolicyPreset::DwsPlusPlusConservative => "DWS++cons",
            PolicyPreset::DwsPlusPlusAggressive => "DWS++aggr",
            PolicyPreset::Mask => "MASK",
            PolicyPreset::MaskDws => "MASK+DWS",
            PolicyPreset::SubEntryTlb => "SE-TLB",
            PolicyPreset::MosaicPages => "MOSAIC",
            PolicyPreset::DeadEntryGuard => "DE-GUARD",
        }
    }
}

impl std::fmt::Display for PolicyPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl std::str::FromStr for PolicyPreset {
    type Err = String;

    /// Parses a preset from its [`label`](PolicyPreset::label)
    /// (case-insensitive) or a CLI-friendly alias (`stlb`, `stlbptw`,
    /// `dwspp`, `maskdws`, ...). Round-trips with `Display`:
    /// `p.to_string().parse() == Ok(p)` for every preset.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        if let Some(p) = PolicyPreset::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(&norm))
        {
            return Ok(p);
        }
        // Squeeze out separators so "s-(tlb+ptw)", "S-TLB-PTW", and
        // "stlb+ptw" all land on the same key ('+' is kept: it is
        // significant in "dws++").
        let compact: String = norm
            .chars()
            .filter(|c| !matches!(c, ' ' | '-' | '_' | '(' | ')'))
            .collect();
        match compact.as_str() {
            "baseline" => Ok(PolicyPreset::Baseline),
            "baseline2x" | "doubledbaseline" | "doubled" => Ok(PolicyPreset::DoubledBaseline),
            "stlb" => Ok(PolicyPreset::STlb),
            "stlb+ptw" | "stlbptw" => Ok(PolicyPreset::STlbPtw),
            "static" | "staticpartition" => Ok(PolicyPreset::StaticPartition),
            "dws" => Ok(PolicyPreset::Dws),
            "dws++" | "dwspp" => Ok(PolicyPreset::DwsPlusPlus),
            "dws++cons" | "dws++conservative" | "dwsppcons" => {
                Ok(PolicyPreset::DwsPlusPlusConservative)
            }
            "dws++aggr" | "dws++aggressive" | "dwsppaggr" => {
                Ok(PolicyPreset::DwsPlusPlusAggressive)
            }
            "mask" => Ok(PolicyPreset::Mask),
            "mask+dws" | "maskdws" => Ok(PolicyPreset::MaskDws),
            "setlb" | "subentry" | "subentrytlb" => Ok(PolicyPreset::SubEntryTlb),
            "mosaic" | "mosaicpages" => Ok(PolicyPreset::MosaicPages),
            "deguard" | "deadguard" | "deadentryguard" => Ok(PolicyPreset::DeadEntryGuard),
            _ => Err(format!(
                "unknown policy preset {s:?} (expected one of: {})",
                PolicyPreset::ALL.map(PolicyPreset::label).join(", ")
            )),
        }
    }
}

/// Full configuration of one simulated GPU (defaults = paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors (baseline: 30), split evenly among tenants.
    pub n_sms: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Per-SM private resources (L1 TLB, L1 cache, MSHRs).
    pub sm: SmConfig,
    /// Shared L2 TLB geometry (baseline: 1024 entries, 16-way).
    pub l2_tlb: TlbConfig,
    /// L2 TLB lookup latency (interconnect + access).
    pub l2_tlb_latency: u64,
    /// S-TLB mode: each tenant gets an exclusive full-size L2 TLB.
    pub l2_tlb_private: bool,
    /// Page-walk subsystem configuration (policy lives here).
    pub walk: WalkConfig,
    /// Shared L2 cache + DRAM.
    pub mem: MemSystemConfig,
    /// MASK-style token mechanism, when enabled.
    pub mask: Option<MaskConfig>,
    /// Policy-arena L2 TLB organization replacing the shared SoA TLB, when
    /// a related-work preset selects one.
    pub l2_arena: Option<ArenaTlbKind>,
    /// Page size (Fig. 14 uses 64 KB).
    pub page_size: PageSize,
    /// Base warp-instruction budget per execution (scaled per app).
    pub instructions_per_warp: u64,
    /// Outstanding-walk merge entries at the L2 TLB (walk MSHRs). Sized so
    /// the walk queue, not the merge table, is the binding resource (as in
    /// the paper, where the 192-entry walk queue is the named limit).
    pub merge_capacity: usize,
    /// Cycles between retries when back-pressured.
    pub retry_interval: u64,
    /// Safety stop: abort the run at this cycle.
    pub max_cycles: u64,
    /// Take a timeline [`Sample`](crate::metrics::Sample) every this many
    /// cycles (`None` disables sampling).
    pub sample_interval: Option<u64>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            n_sms: 30,
            warps_per_sm: 24,
            sm: SmConfig::default(),
            l2_tlb: TlbConfig {
                sets: 64,
                ways: 16,
                replacement: Replacement::Random,
            },
            l2_tlb_latency: 20,
            l2_tlb_private: false,
            walk: WalkConfig::default(),
            mem: MemSystemConfig::default(),
            mask: None,
            l2_arena: None,
            page_size: PageSize::Small4K,
            instructions_per_warp: 6_000,
            merge_capacity: 512,
            retry_interval: 8,
            max_cycles: 200_000_000,
            sample_interval: None,
        }
    }
}

impl GpuConfig {
    /// Applies a [`PolicyPreset`], adjusting TLB privacy, walker policy, and
    /// resource counts as the paper's corresponding configuration does.
    ///
    /// # Panics
    ///
    /// Panics if the resulting partitioned policy cannot split the walkers
    /// evenly among the already-set tenant count; use
    /// [`try_with_preset`](Self::try_with_preset) to get a [`ConfigError`]
    /// instead.
    #[must_use]
    pub fn with_preset(self, preset: PolicyPreset) -> Self {
        self.try_with_preset(preset).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`with_preset`](Self::with_preset): re-checks the
    /// walker split after the preset lands, because the canonical build
    /// order is `for_tenants(n)` *then* `with_preset(p)` — a preset that
    /// switches to a partitioned policy can invalidate a walker count that
    /// was fine under the shared queue.
    pub fn try_with_preset(mut self, preset: PolicyPreset) -> Result<Self, ConfigError> {
        // Reset the preset-controlled knobs to baseline first.
        self.l2_tlb_private = false;
        self.mask = None;
        self.l2_arena = None;
        self.walk.policy = WalkPolicyKind::SharedQueue;
        match preset {
            PolicyPreset::Baseline => {}
            PolicyPreset::DoubledBaseline => {
                self.l2_tlb = TlbConfig {
                    sets: self.l2_tlb.sets * 2,
                    ..self.l2_tlb
                };
                self.walk.n_walkers *= 2;
                self.walk.queue_entries *= 2;
            }
            PolicyPreset::STlb => {
                self.l2_tlb_private = true;
            }
            PolicyPreset::STlbPtw => {
                self.l2_tlb_private = true;
                self.walk.policy = WalkPolicyKind::PrivatePools;
                self.walk.n_walkers *= self.walk.n_tenants.max(1);
                self.walk.queue_entries *= self.walk.n_tenants.max(1);
            }
            PolicyPreset::StaticPartition => {
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::None);
            }
            PolicyPreset::Dws => {
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::Dws);
            }
            PolicyPreset::DwsPlusPlus => {
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(
                    DwsPlusPlusParams::paper_default(),
                ));
            }
            PolicyPreset::DwsPlusPlusConservative => {
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(
                    DwsPlusPlusParams::conservative(),
                ));
            }
            PolicyPreset::DwsPlusPlusAggressive => {
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::DwsPlusPlus(
                    DwsPlusPlusParams::aggressive(),
                ));
            }
            PolicyPreset::Mask => {
                self.mask = Some(MaskConfig::default());
            }
            PolicyPreset::MaskDws => {
                self.mask = Some(MaskConfig::default());
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::Dws);
            }
            PolicyPreset::SubEntryTlb => {
                // MIG-faithful: hard walker partitions (no stealing), with
                // the sub-entry TLB recovering shared-capacity efficiency.
                self.l2_arena = Some(ArenaTlbKind::SubEntry);
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::None);
            }
            PolicyPreset::MosaicPages => {
                self.l2_arena = Some(ArenaTlbKind::Mosaic);
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::Dws);
            }
            PolicyPreset::DeadEntryGuard => {
                self.l2_arena = Some(ArenaTlbKind::DeadGuard);
                self.walk.policy = WalkPolicyKind::Partitioned(StealMode::Dws);
            }
        }
        self.check_walker_split(self.walk.n_tenants)?;
        Ok(self)
    }

    /// Partitioned policies hand each tenant a fixed walker share, so the
    /// walker count must divide evenly; other organizations don't care.
    fn check_walker_split(&self, n_tenants: usize) -> Result<(), ConfigError> {
        if matches!(self.walk.policy, WalkPolicyKind::Partitioned(_))
            && n_tenants > 1
            && self.walk.n_walkers % n_tenants != 0
        {
            return Err(ConfigError::UnevenSplit {
                resource: "walkers",
                count: self.walk.n_walkers,
                n_tenants,
            });
        }
        Ok(())
    }

    /// Sets the number of SMs.
    #[must_use]
    pub fn with_n_sms(mut self, n: usize) -> Self {
        self.n_sms = n;
        self
    }

    /// Sets resident warps per SM.
    #[must_use]
    pub fn with_warps_per_sm(mut self, n: usize) -> Self {
        self.warps_per_sm = n;
        self
    }

    /// Sets the base per-warp instruction budget per execution.
    #[must_use]
    pub fn with_instructions_per_warp(mut self, n: u64) -> Self {
        self.instructions_per_warp = n;
        self
    }

    /// Sets the L2 TLB to `entries` total entries, keeping 16-way
    /// associativity (Fig. 12 sweeps 512 / 1024 / 2048).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 16 with a power-of-two set
    /// count.
    #[must_use]
    pub fn with_l2_tlb_entries(mut self, entries: usize) -> Self {
        let sets = entries / 16;
        assert!(sets.is_power_of_two(), "L2 TLB sets must be a power of two");
        self.l2_tlb = TlbConfig {
            sets,
            ways: 16,
            replacement: self.l2_tlb.replacement,
        };
        self
    }

    /// Sets the number of page-table walkers, keeping the per-walker queue
    /// depth of the Table I baseline (12 entries each; Fig. 12 sweeps
    /// 12 / 16 / 24 walkers).
    #[must_use]
    pub fn with_walkers(mut self, n: usize) -> Self {
        self.walk.queue_entries = n * 12;
        self.walk.n_walkers = n;
        self
    }

    /// Sets the page size (Fig. 14 uses [`PageSize::Large64K`]).
    #[must_use]
    pub fn with_page_size(mut self, page_size: PageSize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Enables periodic timeline sampling every `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    #[must_use]
    pub fn with_sample_interval(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "sample interval must be positive");
        self.sample_interval = Some(cycles);
        self
    }

    /// Validates and specializes the configuration for `n_tenants`.
    ///
    /// # Panics
    ///
    /// Panics if `n_sms` is not divisible by `n_tenants`, or walkers cannot
    /// be split evenly under a partitioned policy; use
    /// [`try_for_tenants`](Self::try_for_tenants) to get a [`ConfigError`]
    /// instead.
    #[must_use]
    pub fn for_tenants(self, n_tenants: usize) -> Self {
        self.try_for_tenants(n_tenants)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`for_tenants`](Self::for_tenants), so a
    /// CLI-supplied tenant count surfaces as a diagnostic instead of a
    /// panic.
    pub fn try_for_tenants(mut self, n_tenants: usize) -> Result<Self, ConfigError> {
        if n_tenants == 0 {
            return Err(ConfigError::NoTenants);
        }
        if self.n_sms % n_tenants != 0 {
            return Err(ConfigError::UnevenSplit {
                resource: "SMs",
                count: self.n_sms,
                n_tenants,
            });
        }
        self.check_walker_split(n_tenants)?;
        self.walk.n_tenants = n_tenants;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_one() {
        let c = GpuConfig::default();
        assert_eq!(c.n_sms, 30);
        assert_eq!(c.l2_tlb.entries(), 1024);
        assert_eq!(c.walk.n_walkers, 16);
        assert_eq!(c.walk.queue_entries, 192);
        assert_eq!(c.walk.pwc_entries, 128);
        assert_eq!(c.mem.l2_banks, 16);
        assert_eq!(c.mem.dram.channels, 16);
    }

    #[test]
    fn presets_set_policies() {
        let dws = GpuConfig::default().with_preset(PolicyPreset::Dws);
        assert_eq!(dws.walk.policy, WalkPolicyKind::Partitioned(StealMode::Dws));
        let stlb = GpuConfig::default().with_preset(PolicyPreset::STlb);
        assert!(stlb.l2_tlb_private);
        assert_eq!(stlb.walk.policy, WalkPolicyKind::SharedQueue);
    }

    #[test]
    fn stlb_ptw_doubles_walkers_for_two_tenants() {
        let c = GpuConfig::default()
            .for_tenants(2)
            .with_preset(PolicyPreset::STlbPtw);
        assert_eq!(c.walk.n_walkers, 32);
        assert_eq!(c.walk.queue_entries, 384);
        assert!(c.l2_tlb_private);
        assert_eq!(c.walk.policy, WalkPolicyKind::PrivatePools);
    }

    #[test]
    fn doubled_baseline_doubles_resources_without_partitioning() {
        let c = GpuConfig::default().with_preset(PolicyPreset::DoubledBaseline);
        assert_eq!(c.l2_tlb.entries(), 2048);
        assert_eq!(c.walk.n_walkers, 32);
        assert_eq!(c.walk.policy, WalkPolicyKind::SharedQueue);
        assert!(!c.l2_tlb_private);
    }

    #[test]
    fn presets_reset_previous_preset_state() {
        let c = GpuConfig::default()
            .with_preset(PolicyPreset::MaskDws)
            .with_preset(PolicyPreset::Baseline);
        assert!(c.mask.is_none());
        assert_eq!(c.walk.policy, WalkPolicyKind::SharedQueue);
    }

    #[test]
    fn mask_dws_combines_both() {
        let c = GpuConfig::default().with_preset(PolicyPreset::MaskDws);
        assert!(c.mask.is_some());
        assert_eq!(c.walk.policy, WalkPolicyKind::Partitioned(StealMode::Dws));
    }

    #[test]
    fn arena_presets_select_their_organization() {
        let se = GpuConfig::default().with_preset(PolicyPreset::SubEntryTlb);
        assert_eq!(se.l2_arena, Some(ArenaTlbKind::SubEntry));
        assert_eq!(
            se.walk.policy,
            WalkPolicyKind::Partitioned(StealMode::None),
            "MIG-style: hard walker partitions"
        );
        let mosaic = GpuConfig::default().with_preset(PolicyPreset::MosaicPages);
        assert_eq!(mosaic.l2_arena, Some(ArenaTlbKind::Mosaic));
        assert_eq!(mosaic.walk.policy, WalkPolicyKind::Partitioned(StealMode::Dws));
        let guard = GpuConfig::default().with_preset(PolicyPreset::DeadEntryGuard);
        assert_eq!(guard.l2_arena, Some(ArenaTlbKind::DeadGuard));
        assert_eq!(guard.walk.policy, WalkPolicyKind::Partitioned(StealMode::Dws));
        // None of them flips the S-TLB or MASK knobs.
        for c in [&se, &mosaic, &guard] {
            assert!(!c.l2_tlb_private && c.mask.is_none());
        }
    }

    #[test]
    fn presets_reset_arena_organization() {
        let c = GpuConfig::default()
            .with_preset(PolicyPreset::MosaicPages)
            .with_preset(PolicyPreset::Baseline);
        assert_eq!(c.l2_arena, None);
        assert_eq!(c.walk.policy, WalkPolicyKind::SharedQueue);
    }

    #[test]
    fn arena_contains_exactly_the_non_paper_presets() {
        assert_eq!(&PolicyPreset::ALL[11..], &PolicyPreset::ARENA);
        for p in PolicyPreset::ARENA {
            assert!(
                GpuConfig::default().with_preset(p).l2_arena.is_some(),
                "{p}"
            );
        }
    }

    #[test]
    fn tlb_and_walker_sweeps() {
        let c = GpuConfig::default().with_l2_tlb_entries(512);
        assert_eq!(c.l2_tlb.entries(), 512);
        let c = GpuConfig::default().with_walkers(24);
        assert_eq!(c.walk.n_walkers, 24);
        assert_eq!(c.walk.queue_entries, 288);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn odd_sm_split_panics() {
        let _ = GpuConfig::default().with_n_sms(31).for_tenants(2);
    }

    #[test]
    fn try_for_tenants_rejects_zero_tenants() {
        assert_eq!(
            GpuConfig::default().try_for_tenants(0),
            Err(ConfigError::NoTenants)
        );
    }

    #[test]
    fn try_for_tenants_rejects_uneven_sms() {
        let err = GpuConfig::default()
            .with_n_sms(31)
            .try_for_tenants(2)
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnevenSplit {
                resource: "SMs",
                count: 31,
                n_tenants: 2,
            }
        );
        assert!(err.to_string().contains("divide evenly"), "{err}");
    }

    #[test]
    fn try_for_tenants_rejects_uneven_walkers_when_partitioned() {
        let err = GpuConfig::default()
            .with_preset(PolicyPreset::Dws)
            .try_for_tenants(3)
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnevenSplit {
                resource: "walkers",
                count: 16,
                n_tenants: 3,
            }
        );
    }

    #[test]
    fn try_with_preset_rechecks_walker_split_after_preset() {
        // Canonical build order: tenants first, preset second. The shared
        // queue accepts any walker count, so the split must be re-validated
        // when the preset switches to a partitioned policy.
        let err = GpuConfig::default()
            .with_n_sms(30)
            .try_for_tenants(3)
            .unwrap()
            .try_with_preset(PolicyPreset::Dws)
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnevenSplit {
                resource: "walkers",
                count: 16,
                n_tenants: 3,
            }
        );
        // Rounding the walkers up to a multiple of the tenant count fixes it.
        assert!(GpuConfig::default()
            .with_n_sms(30)
            .with_walkers(18)
            .try_for_tenants(3)
            .unwrap()
            .try_with_preset(PolicyPreset::Dws)
            .is_ok());
    }

    #[test]
    fn try_with_preset_accepts_non_partitioned_uneven_walkers() {
        // Shared-queue organizations never split walkers per tenant.
        assert!(GpuConfig::default()
            .with_n_sms(30)
            .try_for_tenants(3)
            .unwrap()
            .try_with_preset(PolicyPreset::Baseline)
            .is_ok());
    }

    #[test]
    fn preset_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            PolicyPreset::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PolicyPreset::ALL.len());
    }

    #[test]
    fn preset_display_from_str_round_trips() {
        for p in PolicyPreset::ALL {
            assert_eq!(p.to_string().parse::<PolicyPreset>(), Ok(p), "{p}");
            assert_eq!(
                p.to_string().to_lowercase().parse::<PolicyPreset>(),
                Ok(p),
                "case-insensitive {p}"
            );
        }
    }

    #[test]
    fn preset_cli_aliases_parse() {
        for (alias, expect) in [
            ("baseline", PolicyPreset::Baseline),
            ("baseline2x", PolicyPreset::DoubledBaseline),
            ("stlb", PolicyPreset::STlb),
            ("stlbptw", PolicyPreset::STlbPtw),
            ("s-tlb-ptw", PolicyPreset::STlbPtw),
            ("static", PolicyPreset::StaticPartition),
            ("dws", PolicyPreset::Dws),
            ("dwspp", PolicyPreset::DwsPlusPlus),
            ("dws++conservative", PolicyPreset::DwsPlusPlusConservative),
            ("dws++aggressive", PolicyPreset::DwsPlusPlusAggressive),
            ("mask", PolicyPreset::Mask),
            ("maskdws", PolicyPreset::MaskDws),
            ("setlb", PolicyPreset::SubEntryTlb),
            ("sub-entry", PolicyPreset::SubEntryTlb),
            ("mosaic", PolicyPreset::MosaicPages),
            ("mosaic-pages", PolicyPreset::MosaicPages),
            ("deguard", PolicyPreset::DeadEntryGuard),
            ("dead-entry-guard", PolicyPreset::DeadEntryGuard),
        ] {
            assert_eq!(alias.parse::<PolicyPreset>(), Ok(expect), "{alias}");
        }
        assert!("bogus".parse::<PolicyPreset>().is_err());
    }
}
