//! The composed multi-tenant GPU simulator and the paper's methodology.
//!
//! This crate wires the substrates together — SMs and warps
//! (`walksteal-gpu`), workload models (`walksteal-workloads`), TLBs / page
//! tables / the page-walk subsystem (`walksteal-vm`), and the shared L2 +
//! DRAM (`walksteal-mem`) — into a deterministic discrete-event
//! [`Simulation`] of N co-running tenants on one GPU.
//!
//! The evaluation methodology follows §III of the paper:
//!
//! * SMs are spatially partitioned evenly among tenants (as with NVIDIA
//!   MPS); the memory system is shared per the configured policy.
//! * Simulation continues until **every tenant completes at least one full
//!   execution**; tenants that finish early are relaunched so the others
//!   keep experiencing contention.
//! * Per-tenant IPC and all other statistics are measured over completed
//!   executions only.
//!
//! [`GpuConfig`] defaults to the paper's Table I baseline;
//! [`PolicyPreset`] switches among every configuration the evaluation
//! compares (baseline, S-TLB, S-(TLB+PTW), static partitioning, DWS, the
//! three DWS++ variants, MASK, and MASK+DWS).
//!
//! # Examples
//!
//! ```
//! use walksteal_multitenant::{GpuConfig, PolicyPreset, Simulation};
//! use walksteal_workloads::AppId;
//!
//! let cfg = GpuConfig::default()
//!     .with_preset(PolicyPreset::Dws)
//!     .with_instructions_per_warp(300)
//!     .with_warps_per_sm(4)
//!     .with_n_sms(4);
//! let result = Simulation::new(cfg, &[AppId::Gups, AppId::Mm], 42).run();
//! assert_eq!(result.tenants.len(), 2);
//! assert!(result.tenants.iter().all(|t| t.completed_executions >= 1));
//! ```

pub mod config;
pub mod metrics;
pub mod sim;

pub use config::{GpuConfig, PolicyPreset};
pub use metrics::{fairness, total_ipc, weighted_ipc, Sample, SimResult, TenantResult};
pub use sim::Simulation;

// Re-exported so downstream users can configure policies without importing
// the substrate crates directly.
pub use walksteal_sim_core::{BudgetKind, RunBudget, RunDiag, SimError};
pub use walksteal_vm::{DwsPlusPlusParams, StealMode, WalkConfig, WalkPolicyKind};
