//! The composed multi-tenant GPU simulator and the paper's methodology.
//!
//! This crate wires the substrates together — SMs and warps
//! (`walksteal-gpu`), workload models (`walksteal-workloads`), TLBs / page
//! tables / the page-walk subsystem (`walksteal-vm`), and the shared L2 +
//! DRAM (`walksteal-mem`) — into a deterministic discrete-event
//! [`Simulation`] of N co-running tenants on one GPU.
//!
//! The evaluation methodology follows §III of the paper:
//!
//! * SMs are spatially partitioned evenly among tenants (as with NVIDIA
//!   MPS); the memory system is shared per the configured policy.
//! * Simulation continues until **every tenant completes at least one full
//!   execution**; tenants that finish early are relaunched so the others
//!   keep experiencing contention.
//! * Per-tenant IPC and all other statistics are measured over completed
//!   executions only.
//!
//! [`GpuConfig`] defaults to the paper's Table I baseline;
//! [`PolicyPreset`] switches among every configuration the evaluation
//! compares (baseline, S-TLB, S-(TLB+PTW), static partitioning, DWS, the
//! three DWS++ variants, MASK, and MASK+DWS).
//!
//! Simulations are constructed through the fluent [`SimulationBuilder`],
//! which also attaches observability sinks (a [`Tracer`] for walk-lifecycle
//! events, a [`SharedMetrics`] registry for counters and histograms).
//!
//! Every run is a scenario underneath: a static tenant list is the
//! degenerate all-arrive-at-cycle-0 timeline, and a [`ScenarioSpec`] adds
//! dynamic tenancy — arrivals, departures, walker repartitions, and
//! per-tenant SLO targets enforced by an online QoS controller (see
//! [`scenario`](mod@scenario)).
//!
//! # Examples
//!
//! ```
//! use walksteal_multitenant::{PolicyPreset, SimulationBuilder};
//! use walksteal_workloads::AppId;
//!
//! let result = SimulationBuilder::new()
//!     .tenants([AppId::Gups, AppId::Mm])
//!     .preset(PolicyPreset::Dws)
//!     .n_sms(4)
//!     .warps_per_sm(4)
//!     .instructions_per_warp(300)
//!     .build()
//!     .run();
//! assert_eq!(result.tenants.len(), 2);
//! assert!(result.tenants.iter().all(|t| t.completed_executions >= 1));
//! ```

pub mod build;
pub mod config;
pub mod metrics;
pub mod pipeline;
pub mod scenario;
pub mod sim;

pub use build::{SimulationBuilder, TenantSpec};
pub use config::{GpuConfig, PolicyPreset};
pub use metrics::{fairness, total_ipc, weighted_ipc, Sample, SimResult, TenantResult};
pub use pipeline::StreamPipelining;
pub use scenario::{ChurnReport, ScenarioEvent, ScenarioSpec, SloPolicy, TenantChurn};
pub use sim::Simulation;

// Re-exported so downstream users can configure policies and observability
// without importing the substrate crates directly.
pub use walksteal_sim_core::{
    BudgetKind, ConfigError, JsonlTracer, MetricsRegistry, NullTracer, RingTracer, RunBudget,
    RunDiag, SharedMetrics, SimError, TraceEvent, TraceFilter, TraceKind, Tracer,
};
pub use walksteal_vm::{DwsPlusPlusParams, StealMode, WalkConfig, WalkPolicyKind};
