//! Evaluation metrics: total IPC, weighted IPC, and fairness.
//!
//! Definitions follow §IV of the paper:
//!
//! * **Total IPC** (throughput): the sum of co-running tenants' IPCs —
//!   indicative of overall GPU utilization.
//! * **Weighted IPC**: Σᵢ IPCᶜ\[i\] / IPCˢᴬ\[i\], where IPCˢᴬ\[i\] is
//!   tenant i's stand-alone IPC (same SMs, whole memory system to itself).
//!   Ranges 0..n; higher means tenants are slowed less by co-running.
//! * **Fairness**: min(Sᵢ)/max(Sᵢ) over the tenants' slowdowns
//!   Sᵢ = IPCᶜ\[i\]/IPCˢᴬ\[i\] (Eyerman & Eeckhout). 1 is perfectly fair.

use walksteal_sim_core::Json;
use walksteal_workloads::AppId;

use crate::scenario::ChurnReport;

/// Per-tenant results of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantResult {
    /// The application this tenant ran.
    pub app: AppId,
    /// IPC over completed executions (warp instructions per cycle).
    pub ipc: f64,
    /// Warp instructions retired in completed executions.
    pub instructions: u64,
    /// Number of fully completed executions.
    pub completed_executions: u32,
    /// L2-TLB misses per million thread-level instructions (the paper's
    /// MPMI classification metric).
    pub mpmi: f64,
    /// Demand misses at the L2 TLB.
    pub l2_tlb_misses: u64,
    /// Mean page-walk latency, arrival to completion (cycles).
    pub mean_walk_latency: f64,
    /// Mean number of other-tenant walks one of this tenant's walks waited
    /// for (Tables III / V).
    pub mean_interleave: f64,
    /// Fraction of this tenant's walks serviced by stealing (Table VI).
    pub stolen_fraction: f64,
    /// Time-averaged fraction of walkers servicing this tenant (Fig. 9).
    pub pw_share: f64,
    /// Time-averaged fraction of (shared) L2 TLB capacity held (Fig. 9).
    pub tlb_share: f64,
}

/// One periodic snapshot of simulator state (see
/// [`GpuConfig::sample_interval`](crate::GpuConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// When the snapshot was taken.
    pub cycle: u64,
    /// Walks queued (not in service) at the walk subsystem.
    pub queued_walks: usize,
    /// Walkers busy servicing a walk.
    pub busy_walkers: usize,
    /// Warp instructions each tenant retired since the previous sample.
    pub instructions_delta: Vec<u64>,
}

/// Results of one complete simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-tenant metrics, indexed by tenant id.
    pub tenants: Vec<TenantResult>,
    /// Cycle at which the run's stop condition was met.
    pub cycles: u64,
    /// Total discrete events processed (diagnostics).
    pub events: u64,
    /// Periodic snapshots, when sampling was enabled (else empty).
    /// Defaults to empty on deserialization so results cached before
    /// sampling existed still load.
    pub timeline: Vec<Sample>,
    /// Fairness-under-churn metrics, when the run had a scenario (`None`
    /// for static runs — the JSON omits the key entirely, so cached static
    /// results stay byte-identical).
    pub churn: Option<ChurnReport>,
}

impl SimResult {
    /// Sum of tenants' IPCs (the paper's throughput metric).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.tenants.iter().map(|t| t.ipc).sum()
    }

    /// Serializes to a [`Json`] document (the experiment cache format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            (
                "tenants".to_string(),
                Json::Arr(self.tenants.iter().map(TenantResult::to_json).collect()),
            ),
            ("cycles".into(), Json::UInt(self.cycles)),
            ("events".into(), Json::UInt(self.events)),
            (
                "timeline".into(),
                Json::Arr(self.timeline.iter().map(Sample::to_json).collect()),
            ),
        ];
        if let Some(churn) = &self.churn {
            obj.push(("churn".into(), churn.to_json()));
        }
        Json::Obj(obj)
    }

    /// Deserializes from [`to_json`](Self::to_json) output. A missing
    /// `timeline` reads as empty so results cached before sampling existed
    /// still load.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<SimResult> {
        Some(SimResult {
            tenants: v
                .get("tenants")?
                .as_array()?
                .iter()
                .map(TenantResult::from_json)
                .collect::<Option<_>>()?,
            cycles: v.get("cycles")?.as_u64()?,
            events: v.get("events")?.as_u64()?,
            timeline: match v.get("timeline") {
                Some(t) => t
                    .as_array()?
                    .iter()
                    .map(Sample::from_json)
                    .collect::<Option<_>>()?,
                None => Vec::new(),
            },
            churn: v.get("churn").and_then(ChurnReport::from_json),
        })
    }
}

impl TenantResult {
    /// Serializes to a [`Json`] object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app".into(), Json::Str(self.app.name().to_string())),
            ("ipc".into(), Json::Num(self.ipc)),
            ("instructions".into(), Json::UInt(self.instructions)),
            (
                "completed_executions".into(),
                Json::UInt(u64::from(self.completed_executions)),
            ),
            ("mpmi".into(), Json::Num(self.mpmi)),
            ("l2_tlb_misses".into(), Json::UInt(self.l2_tlb_misses)),
            ("mean_walk_latency".into(), Json::Num(self.mean_walk_latency)),
            ("mean_interleave".into(), Json::Num(self.mean_interleave)),
            ("stolen_fraction".into(), Json::Num(self.stolen_fraction)),
            ("pw_share".into(), Json::Num(self.pw_share)),
            ("tlb_share".into(), Json::Num(self.tlb_share)),
        ])
    }

    /// Deserializes from [`to_json`](Self::to_json) output.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<TenantResult> {
        Some(TenantResult {
            app: AppId::from_name(v.get("app")?.as_str()?)?,
            ipc: v.get("ipc")?.as_f64()?,
            instructions: v.get("instructions")?.as_u64()?,
            completed_executions: u32::try_from(v.get("completed_executions")?.as_u64()?).ok()?,
            mpmi: v.get("mpmi")?.as_f64()?,
            l2_tlb_misses: v.get("l2_tlb_misses")?.as_u64()?,
            mean_walk_latency: v.get("mean_walk_latency")?.as_f64()?,
            mean_interleave: v.get("mean_interleave")?.as_f64()?,
            stolen_fraction: v.get("stolen_fraction")?.as_f64()?,
            pw_share: v.get("pw_share")?.as_f64()?,
            tlb_share: v.get("tlb_share")?.as_f64()?,
        })
    }
}

impl Sample {
    /// Serializes to a [`Json`] object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycle".into(), Json::UInt(self.cycle)),
            ("queued_walks".into(), Json::UInt(self.queued_walks as u64)),
            ("busy_walkers".into(), Json::UInt(self.busy_walkers as u64)),
            (
                "instructions_delta".into(),
                Json::Arr(self.instructions_delta.iter().map(|&d| Json::UInt(d)).collect()),
            ),
        ])
    }

    /// Deserializes from [`to_json`](Self::to_json) output.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Sample> {
        Some(Sample {
            cycle: v.get("cycle")?.as_u64()?,
            queued_walks: usize::try_from(v.get("queued_walks")?.as_u64()?).ok()?,
            busy_walkers: usize::try_from(v.get("busy_walkers")?.as_u64()?).ok()?,
            instructions_delta: v
                .get("instructions_delta")?
                .as_array()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<_>>()?,
        })
    }
}

/// Total IPC (throughput) of a run.
#[must_use]
pub fn total_ipc(run: &SimResult) -> f64 {
    run.total_ipc()
}

/// Weighted IPC of `run` given each tenant's stand-alone IPC.
///
/// # Panics
///
/// Panics if `standalone_ipc.len()` differs from the tenant count or any
/// stand-alone IPC is non-positive.
#[must_use]
pub fn weighted_ipc(run: &SimResult, standalone_ipc: &[f64]) -> f64 {
    assert_eq!(
        run.tenants.len(),
        standalone_ipc.len(),
        "stand-alone IPC per tenant required"
    );
    run.tenants
        .iter()
        .zip(standalone_ipc)
        .map(|(t, &sa)| {
            assert!(sa > 0.0, "stand-alone IPC must be positive");
            t.ipc / sa
        })
        .sum()
}

/// Fairness of `run`: min slowdown over max slowdown (1 = perfectly fair).
///
/// # Panics
///
/// Panics if `standalone_ipc.len()` differs from the tenant count or any
/// stand-alone IPC is non-positive.
#[must_use]
pub fn fairness(run: &SimResult, standalone_ipc: &[f64]) -> f64 {
    assert_eq!(
        run.tenants.len(),
        standalone_ipc.len(),
        "stand-alone IPC per tenant required"
    );
    let slowdowns: Vec<f64> = run
        .tenants
        .iter()
        .zip(standalone_ipc)
        .map(|(t, &sa)| {
            assert!(sa > 0.0, "stand-alone IPC must be positive");
            t.ipc / sa
        })
        .collect();
    let min = slowdowns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = slowdowns.iter().copied().fold(0.0, f64::max);
    if max == 0.0 {
        0.0
    } else {
        min / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(app: AppId, ipc: f64) -> TenantResult {
        TenantResult {
            app,
            ipc,
            instructions: 1000,
            completed_executions: 1,
            mpmi: 0.0,
            l2_tlb_misses: 0,
            mean_walk_latency: 0.0,
            mean_interleave: 0.0,
            stolen_fraction: 0.0,
            pw_share: 0.0,
            tlb_share: 0.0,
        }
    }

    fn run(ipcs: &[f64]) -> SimResult {
        SimResult {
            tenants: ipcs.iter().map(|&i| tenant(AppId::Mm, i)).collect(),
            cycles: 100,
            events: 0,
            timeline: Vec::new(),
            churn: None,
        }
    }

    #[test]
    fn total_ipc_sums() {
        assert_eq!(total_ipc(&run(&[0.5, 0.7])), 1.2);
    }

    #[test]
    fn weighted_ipc_normalizes() {
        // Both tenants at half their stand-alone speed -> weighted IPC 1.0.
        let w = weighted_ipc(&run(&[0.5, 1.0]), &[1.0, 2.0]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ipc_max_is_n() {
        let w = weighted_ipc(&run(&[1.0, 2.0]), &[1.0, 2.0]);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_one_when_equal_slowdowns() {
        let f = fairness(&run(&[0.5, 1.0]), &[1.0, 2.0]);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_low_when_one_tenant_starves() {
        let f = fairness(&run(&[0.1, 1.9]), &[2.0, 2.0]);
        assert!((f - (0.05 / 0.95)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stand-alone IPC per tenant")]
    fn mismatched_lengths_panic() {
        let _ = weighted_ipc(&run(&[1.0]), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_standalone_panics() {
        let _ = fairness(&run(&[1.0]), &[0.0]);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut r = run(&[0.123_456_789, 1.5]);
        r.tenants[1].app = AppId::Tds;
        r.tenants[0].mpmi = 87.3;
        r.tenants[0].l2_tlb_misses = u64::MAX;
        r.timeline.push(Sample {
            cycle: 1000,
            queued_walks: 12,
            busy_walkers: 16,
            instructions_delta: vec![5, 7],
        });
        let text = r.to_json().dump();
        let back = SimResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_missing_timeline_defaults_empty() {
        let r = run(&[1.0]);
        let Json::Obj(mut entries) = r.to_json() else {
            panic!("expected object")
        };
        entries.retain(|(k, _)| k != "timeline");
        let back = SimResult::from_json(&Json::Obj(entries)).unwrap();
        assert!(back.timeline.is_empty());
        assert_eq!(back.tenants, r.tenants);
    }

    #[test]
    fn json_round_trips_churn_and_defaults_to_none() {
        use crate::scenario::TenantChurn;
        let mut r = run(&[1.0]);
        let plain = r.to_json().dump();
        assert!(!plain.contains("churn"), "static results omit the key");
        assert!(SimResult::from_json(&Json::parse(&plain).unwrap())
            .unwrap()
            .churn
            .is_none());

        r.churn = Some(ChurnReport {
            tenants: vec![TenantChurn {
                arrived: Some(0),
                departed: None,
                evicted: false,
                slo_target: Some(900),
                slo_checks: 2,
                slo_met: 2,
                throttled_checks: 0,
                cancelled_walks: 0,
                lifetime_instructions: 10,
                lifetime_cycles: 100,
            }],
            evictions: 0,
            repartitions: 1,
            throttles: 0,
        });
        let text = r.to_json().dump();
        let back = SimResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(SimResult::from_json(&Json::parse("{}").unwrap()).is_none());
        assert!(SimResult::from_json(&Json::parse("[1,2]").unwrap()).is_none());
        let bad_app = r#"{"tenants":[{"app":"NOPE"}],"cycles":1,"events":0}"#;
        assert!(SimResult::from_json(&Json::parse(bad_app).unwrap()).is_none());
    }
}
