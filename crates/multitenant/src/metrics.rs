//! Evaluation metrics: total IPC, weighted IPC, and fairness.
//!
//! Definitions follow §IV of the paper:
//!
//! * **Total IPC** (throughput): the sum of co-running tenants' IPCs —
//!   indicative of overall GPU utilization.
//! * **Weighted IPC**: Σᵢ IPCᶜ\[i\] / IPCˢᴬ\[i\], where IPCˢᴬ\[i\] is
//!   tenant i's stand-alone IPC (same SMs, whole memory system to itself).
//!   Ranges 0..n; higher means tenants are slowed less by co-running.
//! * **Fairness**: min(Sᵢ)/max(Sᵢ) over the tenants' slowdowns
//!   Sᵢ = IPCᶜ\[i\]/IPCˢᴬ\[i\] (Eyerman & Eeckhout). 1 is perfectly fair.

use walksteal_workloads::AppId;

/// Per-tenant results of one simulation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantResult {
    /// The application this tenant ran.
    pub app: AppId,
    /// IPC over completed executions (warp instructions per cycle).
    pub ipc: f64,
    /// Warp instructions retired in completed executions.
    pub instructions: u64,
    /// Number of fully completed executions.
    pub completed_executions: u32,
    /// L2-TLB misses per million thread-level instructions (the paper's
    /// MPMI classification metric).
    pub mpmi: f64,
    /// Demand misses at the L2 TLB.
    pub l2_tlb_misses: u64,
    /// Mean page-walk latency, arrival to completion (cycles).
    pub mean_walk_latency: f64,
    /// Mean number of other-tenant walks one of this tenant's walks waited
    /// for (Tables III / V).
    pub mean_interleave: f64,
    /// Fraction of this tenant's walks serviced by stealing (Table VI).
    pub stolen_fraction: f64,
    /// Time-averaged fraction of walkers servicing this tenant (Fig. 9).
    pub pw_share: f64,
    /// Time-averaged fraction of (shared) L2 TLB capacity held (Fig. 9).
    pub tlb_share: f64,
}

/// One periodic snapshot of simulator state (see
/// [`GpuConfig::sample_interval`](crate::GpuConfig)).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// When the snapshot was taken.
    pub cycle: u64,
    /// Walks queued (not in service) at the walk subsystem.
    pub queued_walks: usize,
    /// Walkers busy servicing a walk.
    pub busy_walkers: usize,
    /// Warp instructions each tenant retired since the previous sample.
    pub instructions_delta: Vec<u64>,
}

/// Results of one complete simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// Per-tenant metrics, indexed by tenant id.
    pub tenants: Vec<TenantResult>,
    /// Cycle at which the run's stop condition was met.
    pub cycles: u64,
    /// Total discrete events processed (diagnostics).
    pub events: u64,
    /// Periodic snapshots, when sampling was enabled (else empty).
    /// Defaults to empty on deserialization so results cached before
    /// sampling existed still load.
    #[serde(default)]
    pub timeline: Vec<Sample>,
}

impl SimResult {
    /// Sum of tenants' IPCs (the paper's throughput metric).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.tenants.iter().map(|t| t.ipc).sum()
    }
}

/// Total IPC (throughput) of a run.
#[must_use]
pub fn total_ipc(run: &SimResult) -> f64 {
    run.total_ipc()
}

/// Weighted IPC of `run` given each tenant's stand-alone IPC.
///
/// # Panics
///
/// Panics if `standalone_ipc.len()` differs from the tenant count or any
/// stand-alone IPC is non-positive.
#[must_use]
pub fn weighted_ipc(run: &SimResult, standalone_ipc: &[f64]) -> f64 {
    assert_eq!(
        run.tenants.len(),
        standalone_ipc.len(),
        "stand-alone IPC per tenant required"
    );
    run.tenants
        .iter()
        .zip(standalone_ipc)
        .map(|(t, &sa)| {
            assert!(sa > 0.0, "stand-alone IPC must be positive");
            t.ipc / sa
        })
        .sum()
}

/// Fairness of `run`: min slowdown over max slowdown (1 = perfectly fair).
///
/// # Panics
///
/// Panics if `standalone_ipc.len()` differs from the tenant count or any
/// stand-alone IPC is non-positive.
#[must_use]
pub fn fairness(run: &SimResult, standalone_ipc: &[f64]) -> f64 {
    assert_eq!(
        run.tenants.len(),
        standalone_ipc.len(),
        "stand-alone IPC per tenant required"
    );
    let slowdowns: Vec<f64> = run
        .tenants
        .iter()
        .zip(standalone_ipc)
        .map(|(t, &sa)| {
            assert!(sa > 0.0, "stand-alone IPC must be positive");
            t.ipc / sa
        })
        .collect();
    let min = slowdowns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = slowdowns.iter().copied().fold(0.0, f64::max);
    if max == 0.0 {
        0.0
    } else {
        min / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(app: AppId, ipc: f64) -> TenantResult {
        TenantResult {
            app,
            ipc,
            instructions: 1000,
            completed_executions: 1,
            mpmi: 0.0,
            l2_tlb_misses: 0,
            mean_walk_latency: 0.0,
            mean_interleave: 0.0,
            stolen_fraction: 0.0,
            pw_share: 0.0,
            tlb_share: 0.0,
        }
    }

    fn run(ipcs: &[f64]) -> SimResult {
        SimResult {
            tenants: ipcs.iter().map(|&i| tenant(AppId::Mm, i)).collect(),
            cycles: 100,
            events: 0,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn total_ipc_sums() {
        assert_eq!(total_ipc(&run(&[0.5, 0.7])), 1.2);
    }

    #[test]
    fn weighted_ipc_normalizes() {
        // Both tenants at half their stand-alone speed -> weighted IPC 1.0.
        let w = weighted_ipc(&run(&[0.5, 1.0]), &[1.0, 2.0]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ipc_max_is_n() {
        let w = weighted_ipc(&run(&[1.0, 2.0]), &[1.0, 2.0]);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_one_when_equal_slowdowns() {
        let f = fairness(&run(&[0.5, 1.0]), &[1.0, 2.0]);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_low_when_one_tenant_starves() {
        let f = fairness(&run(&[0.1, 1.9]), &[2.0, 2.0]);
        assert!((f - (0.05 / 0.95)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stand-alone IPC per tenant")]
    fn mismatched_lengths_panic() {
        let _ = weighted_ipc(&run(&[1.0]), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_standalone_panics() {
        let _ = fairness(&run(&[1.0]), &[0.0]);
    }
}
