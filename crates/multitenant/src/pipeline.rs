//! Epoch-pipelined warp-stream generation.
//!
//! A [`WarpStream`]'s op sequence is a pure function of its seeded
//! construction parameters — it never observes simulator state. Under the
//! relaunch methodology each tenant's stream divides into *epochs* (one
//! execution per epoch), so epoch N+1's ops can be generated on a second
//! thread while the simulator consumes epoch N. The hand-off buffer
//! carries exactly the ops the seeded inline generator would produce, so
//! simulation results are byte-identical with the overlap on, off, or
//! unavailable (pinned by `pipelined_stream_handoff_is_deterministic`).

use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

use walksteal_gpu::MemRef;
use walksteal_workloads::WarpStream;

/// Whether stream generation for epoch N+1 overlaps epoch N's simulation
/// on a second thread. Purely a performance knob: results are identical in
/// every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamPipelining {
    /// Overlap when the host exposes more than one unit of parallelism;
    /// generate inline otherwise (a second thread on one core only adds
    /// context switches).
    #[default]
    Auto,
    /// Always overlap, even on single-core hosts (exercised by tests).
    On,
    /// Always generate inline on the simulation thread.
    Off,
}

impl StreamPipelining {
    pub(crate) fn enabled(self) -> bool {
        match self {
            StreamPipelining::Auto => {
                std::thread::available_parallelism().is_ok_and(|p| p.get() > 1)
            }
            StreamPipelining::On => true,
            StreamPipelining::Off => false,
        }
    }
}

/// One warp's pre-generated ops for one epoch: `(compute burst, refs
/// start, refs len)` per op, indexing the flat `refs` arena.
struct WarpEpoch {
    ops: Vec<(u64, u32, u32)>,
    refs: Vec<MemRef>,
}

/// One tenant execution's ops for every warp of the tenant.
struct EpochChunk {
    warps: Vec<WarpEpoch>,
}

/// Consumer half of the epoch pipeline: per-tenant hand-off channels fed
/// by one generator thread per tenant, plus cursors into the epoch
/// currently being simulated.
pub(crate) struct StreamPipeline {
    rx: Vec<Receiver<EpochChunk>>,
    current: Vec<EpochChunk>,
    /// Per tenant, per tenant-local warp: next op index in the epoch.
    cursor: Vec<Vec<usize>>,
    handles: Vec<JoinHandle<()>>,
}

impl StreamPipeline {
    /// Spawns one generator thread per tenant, each owning seeded
    /// duplicates of the tenant's warp streams, and receives every
    /// tenant's epoch 0. `streams` is indexed `[tenant][tenant-local
    /// warp]` and must be constructed exactly as the simulator's inline
    /// streams are. The bounded channel keeps each generator at most one
    /// finished epoch ahead of the simulation.
    pub(crate) fn spawn(streams: Vec<Vec<WarpStream>>) -> Self {
        let mut rx = Vec::with_capacity(streams.len());
        let mut handles = Vec::with_capacity(streams.len());
        for tenant_streams in streams {
            let (tx, r) = sync_channel(1);
            handles.push(std::thread::spawn(move || {
                let mut streams = tenant_streams;
                let mut buf = Vec::new();
                loop {
                    let chunk = EpochChunk {
                        warps: streams
                            .iter_mut()
                            .map(|s| generate_execution(s, &mut buf))
                            .collect(),
                    };
                    if tx.send(chunk).is_err() {
                        return; // simulation dropped; stop generating
                    }
                }
            }));
            rx.push(r);
        }
        let current: Vec<EpochChunk> = rx
            .iter()
            .map(|r| r.recv().expect("stream generator died before epoch 0"))
            .collect();
        let cursor = current.iter().map(|c| vec![0; c.warps.len()]).collect();
        StreamPipeline {
            rx,
            current,
            cursor,
            handles,
        }
    }

    /// The pipelined equivalent of [`WarpStream::next_op_into`] for the
    /// given tenant-local warp: clears `refs`, fills it with the op's
    /// coalesced references, and returns the compute burst. `None` marks
    /// the end of the current epoch, exactly where the inline stream's
    /// execution budget would run out.
    pub(crate) fn next_op_into(
        &mut self,
        tenant: usize,
        warp: usize,
        refs: &mut Vec<MemRef>,
    ) -> Option<u64> {
        let chunk = &self.current[tenant].warps[warp];
        let i = self.cursor[tenant][warp];
        let &(compute, start, len) = chunk.ops.get(i)?;
        refs.clear();
        refs.extend_from_slice(&chunk.refs[start as usize..(start as usize + len as usize)]);
        self.cursor[tenant][warp] = i + 1;
        Some(compute)
    }

    /// Swaps in the next epoch for `tenant` at relaunch, blocking until
    /// the generator has it ready (in steady state it already does — the
    /// generation ran while the previous epoch simulated).
    pub(crate) fn advance_epoch(&mut self, tenant: usize) {
        self.current[tenant] = self.rx[tenant].recv().expect("stream generator died mid-run");
        self.cursor[tenant].iter_mut().for_each(|c| *c = 0);
    }
}

/// Drains one full execution from `stream` (auto-relaunching afterwards,
/// mirroring the simulator's relaunch methodology) into a [`WarpEpoch`].
fn generate_execution(stream: &mut WarpStream, buf: &mut Vec<MemRef>) -> WarpEpoch {
    let mut epoch = WarpEpoch {
        ops: Vec::new(),
        refs: Vec::new(),
    };
    while let Some(compute) = stream.next_op_into(buf) {
        let start = epoch.refs.len() as u32;
        epoch.refs.extend_from_slice(buf);
        epoch.ops.push((compute, start, buf.len() as u32));
    }
    stream.relaunch();
    epoch
}

impl Drop for StreamPipeline {
    fn drop(&mut self) {
        // Dropping the receivers unblocks any generator parked on its
        // bounded `send`, which then exits; join so no generator outlives
        // the simulation.
        self.rx.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
