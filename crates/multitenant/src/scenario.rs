//! The dynamic-tenancy scenario DSL: a seeded, deterministic timeline of
//! tenant events compiled into a [`Simulation`](crate::Simulation).
//!
//! Every run is a scenario. A static run — the fixed tenant set the paper
//! evaluates — is the degenerate timeline where every tenant arrives at
//! cycle 0 and nobody leaves ([`ScenarioSpec::static_run`]). Dynamic
//! timelines add [`ScenarioEvent::Arrive`] / [`ScenarioEvent::Depart`] /
//! [`ScenarioEvent::Repartition`] events (paper §VI.C: the walker partition
//! re-splits as the tenant set changes) and per-tenant SLO targets that an
//! online QoS controller enforces by throttling or evicting the aggressor
//! tenant (in the spirit of MASK's QoS-aware policies and Guardian's
//! admission control).
//!
//! Tenants are indexed by arrival order: the i-th `Arrive` event in the
//! timeline creates tenant `i`. The full tenant set is known up front, so
//! the simulation is constructed with every tenant's resources in place
//! and late arrivals simply stay quiescent until their cycle.
//!
//! Specs round-trip through JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::try_from_json`]) with validation — a depart-before-
//! arrive timeline, an out-of-range tenant index, or a window with no
//! resident tenant is a [`ConfigError::Scenario`], not a mid-run panic.
//!
//! # Examples
//!
//! ```
//! use walksteal_multitenant::{ScenarioSpec, SimulationBuilder};
//! use walksteal_workloads::AppId;
//!
//! // MM is resident; GUPS arrives later and leaves again.
//! let spec = ScenarioSpec::new()
//!     .arrive(0, AppId::Mm)
//!     .arrive(2_000, AppId::Gups)
//!     .depart(60_000, 1);
//! let result = SimulationBuilder::new()
//!     .n_sms(4)
//!     .warps_per_sm(4)
//!     .instructions_per_warp(300)
//!     .seed(1)
//!     .scenario(spec)
//!     .build()
//!     .run();
//! let churn = result.churn.as_ref().unwrap();
//! assert_eq!(churn.tenants[1].arrived, Some(2_000));
//! ```

use walksteal_sim_core::{ConfigError, Json};
use walksteal_workloads::{AppId, AppProfile};

use crate::build::TenantSpec;

/// One event on a scenario timeline. See the [module docs](self) for the
/// tenant-indexing convention.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// A tenant arrives and starts executing at `cycle`. The i-th arrival
    /// in the timeline is tenant `i`.
    Arrive {
        /// When the tenant's warps launch.
        cycle: u64,
        /// What it runs.
        spec: TenantSpec,
    },
    /// Tenant `tenant` departs at `cycle`: its queued walks are cancelled,
    /// its TLB entries shot down, and the walkers repartition among the
    /// remaining tenants.
    Depart {
        /// When the tenant leaves.
        cycle: u64,
        /// Which tenant (arrival index).
        tenant: usize,
    },
    /// An explicit walker repartition at `cycle`, overriding the automatic
    /// arrive/depart-driven split (e.g. to model an operator decision).
    /// `active[t]` grants tenant `t` a walker share; every flagged tenant
    /// must be resident at `cycle`.
    Repartition {
        /// When the partition changes.
        cycle: u64,
        /// Which tenants own walkers afterwards.
        active: Vec<bool>,
    },
    /// Declares tenant `tenant`'s p99 walk-latency SLO. The QoS controller
    /// checks it periodically (see [`SloPolicy`]) against the
    /// `walk_latency` histogram in the metrics registry.
    SloTarget {
        /// Which tenant (arrival index).
        tenant: usize,
        /// The p99 walk-latency bound, in cycles.
        p99_cycles: u64,
    },
}

impl ScenarioEvent {
    /// The cycle a timeline event fires at; `None` for declarations
    /// ([`SloTarget`](ScenarioEvent::SloTarget)) that are not scheduled.
    #[must_use]
    pub fn cycle(&self) -> Option<u64> {
        match self {
            ScenarioEvent::Arrive { cycle, .. }
            | ScenarioEvent::Depart { cycle, .. }
            | ScenarioEvent::Repartition { cycle, .. } => Some(*cycle),
            ScenarioEvent::SloTarget { .. } => None,
        }
    }
}

/// How the online QoS controller samples and reacts to SLO violations.
///
/// Every `check_interval` cycles the controller reads each targeted
/// tenant's cumulative p99 walk latency from the metrics registry. On a
/// violation it throttles the aggressor — the other resident tenant that
/// enqueued the most walks since the last check — by excluding it from the
/// walker partition; after `evict_after` consecutive violating checks for
/// the same victim, the aggressor is evicted entirely (a forced
/// departure). When the victim recovers, throttles lift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Cycles between SLO checks.
    pub check_interval: u64,
    /// Consecutive violating checks (per victim) before the aggressor is
    /// evicted. Bounds how long a hopeless configuration persists.
    pub evict_after: u32,
    /// A check only counts when the tenant completed at least this many
    /// walks since its last counted check — fewer and there is no signal.
    pub min_samples: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            check_interval: 20_000,
            evict_after: 4,
            min_samples: 32,
        }
    }
}

/// A validated-on-use scenario: the timeline plus the QoS policy.
///
/// Build one with the fluent helpers ([`arrive`](Self::arrive),
/// [`depart`](Self::depart), ...) or parse it from JSON
/// ([`try_from_json`](Self::try_from_json)); hand it to
/// [`SimulationBuilder::scenario`](crate::SimulationBuilder::scenario).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// The timeline, in the order events apply (same-cycle events apply in
    /// list order).
    pub events: Vec<ScenarioEvent>,
    /// QoS controller parameters; `None` with SLO targets present means
    /// [`SloPolicy::default`].
    pub slo: Option<SloPolicy>,
}

impl ScenarioSpec {
    /// An empty scenario; add events with the fluent helpers.
    #[must_use]
    pub fn new() -> Self {
        ScenarioSpec::default()
    }

    /// The degenerate scenario equivalent to a static run: every tenant
    /// arrives at cycle 0, nobody departs, no SLOs.
    #[must_use]
    pub fn static_run<I>(tenants: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<TenantSpec>,
    {
        let mut s = ScenarioSpec::new();
        for t in tenants {
            s = s.arrive(0, t);
        }
        s
    }

    /// Appends an [`Arrive`](ScenarioEvent::Arrive) event.
    #[must_use]
    pub fn arrive(mut self, cycle: u64, spec: impl Into<TenantSpec>) -> Self {
        self.events.push(ScenarioEvent::Arrive {
            cycle,
            spec: spec.into(),
        });
        self
    }

    /// Appends a [`Depart`](ScenarioEvent::Depart) event.
    #[must_use]
    pub fn depart(mut self, cycle: u64, tenant: usize) -> Self {
        self.events.push(ScenarioEvent::Depart { cycle, tenant });
        self
    }

    /// Appends a [`Repartition`](ScenarioEvent::Repartition) event.
    #[must_use]
    pub fn repartition(mut self, cycle: u64, active: Vec<bool>) -> Self {
        self.events.push(ScenarioEvent::Repartition { cycle, active });
        self
    }

    /// Declares a tenant's p99 walk-latency SLO.
    #[must_use]
    pub fn slo_target(mut self, tenant: usize, p99_cycles: u64) -> Self {
        self.events.push(ScenarioEvent::SloTarget { tenant, p99_cycles });
        self
    }

    /// Sets the QoS controller parameters.
    #[must_use]
    pub fn slo_policy(mut self, policy: SloPolicy) -> Self {
        self.slo = Some(policy);
        self
    }

    /// How many tenants the scenario creates (its arrival count).
    #[must_use]
    pub fn n_tenants(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Arrive { .. }))
            .count()
    }

    /// The tenant specs, in arrival (= tenant-index) order.
    #[must_use]
    pub fn tenant_specs(&self) -> Vec<TenantSpec> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::Arrive { spec, .. } => Some(*spec),
                _ => None,
            })
            .collect()
    }

    /// Checks the timeline's static semantics. The rules, each a
    /// [`ConfigError::Scenario`] when broken:
    ///
    /// * at least one arrival, and the first at cycle 0 (the run needs a
    ///   resident tenant from the start);
    /// * arrival cycles non-decreasing in list order (tenant indices are
    ///   arrival order, which must be chronological);
    /// * departures and SLO targets name an in-range tenant; a tenant
    ///   departs at most once, strictly after it arrived; at most one SLO
    ///   target per tenant, and targets are positive;
    /// * repartitions cover all tenants, grant at least one a share, and
    ///   only flag tenants resident at that cycle;
    /// * at least one tenant is resident at every point of the timeline.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |msg: String| Err(ConfigError::Scenario(msg));
        let n = self.n_tenants();
        if n == 0 {
            return err("timeline has no Arrive event".into());
        }
        if n > usize::from(u8::MAX) {
            return err(format!("{n} tenants exceed the {} maximum", u8::MAX));
        }

        // Arrival order must be chronological (it defines tenant indices).
        let arrivals: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::Arrive { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .collect();
        if arrivals[0] != 0 {
            return err(format!(
                "first arrival at cycle {}; a tenant must be resident at cycle 0",
                arrivals[0]
            ));
        }
        if arrivals.windows(2).any(|w| w[0] > w[1]) {
            return err("arrival cycles must be non-decreasing".into());
        }

        let mut departs: Vec<Option<u64>> = vec![None; n];
        let mut slo_seen = vec![false; n];
        for e in &self.events {
            match e {
                ScenarioEvent::Arrive { .. } => {}
                ScenarioEvent::Depart { cycle, tenant } => {
                    if *tenant >= n {
                        return err(format!("Depart names tenant {tenant}, but only {n} arrive"));
                    }
                    if departs[*tenant].is_some() {
                        return err(format!("tenant {tenant} departs twice"));
                    }
                    if *cycle <= arrivals[*tenant] {
                        return err(format!(
                            "tenant {tenant} departs at cycle {cycle} but arrives at {}",
                            arrivals[*tenant]
                        ));
                    }
                    departs[*tenant] = Some(*cycle);
                }
                ScenarioEvent::Repartition { active, .. } => {
                    if active.len() != n {
                        return err(format!(
                            "Repartition covers {} tenants; the scenario has {n}",
                            active.len()
                        ));
                    }
                    if !active.iter().any(|&a| a) {
                        return err("Repartition grants no tenant a walker share".into());
                    }
                }
                ScenarioEvent::SloTarget { tenant, p99_cycles } => {
                    if *tenant >= n {
                        return err(format!(
                            "SloTarget names tenant {tenant}, but only {n} arrive"
                        ));
                    }
                    if slo_seen[*tenant] {
                        return err(format!("tenant {tenant} has two SLO targets"));
                    }
                    if *p99_cycles == 0 {
                        return err(format!("tenant {tenant} SLO target must be positive"));
                    }
                    slo_seen[*tenant] = true;
                }
            }
        }

        // Replay the timeline in apply order (stable by cycle): residency
        // must never reach zero, and repartitions must only flag residents.
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].cycle().unwrap_or(0));
        let mut resident = vec![false; n];
        let mut next_arrival = 0usize;
        for &i in &order {
            match &self.events[i] {
                ScenarioEvent::Arrive { .. } => {
                    resident[next_arrival] = true;
                    next_arrival += 1;
                }
                ScenarioEvent::Depart { cycle, tenant } => {
                    resident[*tenant] = false;
                    if !resident.iter().any(|&r| r) {
                        return err(format!(
                            "no tenant is resident after the departure at cycle {cycle}"
                        ));
                    }
                }
                ScenarioEvent::Repartition { cycle, active } => {
                    for (t, (&a, &r)) in active.iter().zip(&resident).enumerate() {
                        if a && !r {
                            return err(format!(
                                "Repartition at cycle {cycle} flags tenant {t}, \
                                 which is not resident"
                            ));
                        }
                    }
                }
                ScenarioEvent::SloTarget { .. } => {}
            }
        }
        Ok(())
    }

    /// Whether any tenant declares an SLO target (the builder auto-attaches
    /// a metrics registry in that case — the controller reads from it).
    #[must_use]
    pub fn has_slo_targets(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ScenarioEvent::SloTarget { .. }))
    }

    /// Serializes to [`Json`]. Calibrated tenants serialize as their app
    /// name; synthetic tenants carry their full profile.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| match e {
                ScenarioEvent::Arrive { cycle, spec } => {
                    let mut fields = vec![("cycle".to_string(), Json::UInt(*cycle))];
                    match spec.profile_override() {
                        Some(p) => fields.push(("profile".into(), p.to_json())),
                        None => {
                            fields.push(("app".into(), Json::Str(spec.app().name().to_string())));
                        }
                    }
                    Json::Obj(vec![("arrive".into(), Json::Obj(fields))])
                }
                ScenarioEvent::Depart { cycle, tenant } => Json::Obj(vec![(
                    "depart".into(),
                    Json::Obj(vec![
                        ("cycle".into(), Json::UInt(*cycle)),
                        ("tenant".into(), Json::UInt(*tenant as u64)),
                    ]),
                )]),
                ScenarioEvent::Repartition { cycle, active } => Json::Obj(vec![(
                    "repartition".into(),
                    Json::Obj(vec![
                        ("cycle".into(), Json::UInt(*cycle)),
                        (
                            "active".into(),
                            Json::Arr(active.iter().map(|&a| Json::Bool(a)).collect()),
                        ),
                    ]),
                )]),
                ScenarioEvent::SloTarget { tenant, p99_cycles } => Json::Obj(vec![(
                    "slo_target".into(),
                    Json::Obj(vec![
                        ("tenant".into(), Json::UInt(*tenant as u64)),
                        ("p99_cycles".into(), Json::UInt(*p99_cycles)),
                    ]),
                )]),
            })
            .collect();
        let mut obj = vec![("events".to_string(), Json::Arr(events))];
        if let Some(slo) = &self.slo {
            obj.push((
                "slo".into(),
                Json::Obj(vec![
                    ("check_interval".into(), Json::UInt(slo.check_interval)),
                    ("evict_after".into(), Json::UInt(u64::from(slo.evict_after))),
                    ("min_samples".into(), Json::UInt(slo.min_samples)),
                ]),
            ));
        }
        Json::Obj(obj)
    }

    /// Parses and validates a spec from [`to_json`](Self::to_json) output
    /// (or hand-written JSON in the same shape).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Scenario`] on malformed JSON or — via
    /// [`validate`](Self::validate) — a semantically bad timeline.
    pub fn try_from_json(v: &Json) -> Result<ScenarioSpec, ConfigError> {
        let err = |msg: String| ConfigError::Scenario(msg);
        let events_json = v
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| err("missing \"events\" array".into()))?;
        let mut events = Vec::with_capacity(events_json.len());
        for (i, e) in events_json.iter().enumerate() {
            let bad = |what: &str| err(format!("event {i}: {what}"));
            let cycle = |obj: &Json| {
                obj.get("cycle")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing \"cycle\""))
            };
            let tenant = |obj: &Json| {
                obj.get("tenant")
                    .and_then(Json::as_u64)
                    .map(|t| t as usize)
                    .ok_or_else(|| bad("missing \"tenant\""))
            };
            if let Some(a) = e.get("arrive") {
                let spec = if let Some(p) = a.get("profile") {
                    TenantSpec::synthetic(
                        AppProfile::from_json(p).map_err(|e| bad(&format!("bad profile: {e}")))?,
                    )
                } else {
                    let name = a
                        .get("app")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("arrive needs \"app\" or \"profile\""))?;
                    TenantSpec::new(
                        AppId::from_name(name)
                            .ok_or_else(|| bad(&format!("unknown app {name:?}")))?,
                    )
                };
                events.push(ScenarioEvent::Arrive {
                    cycle: cycle(a)?,
                    spec,
                });
            } else if let Some(d) = e.get("depart") {
                events.push(ScenarioEvent::Depart {
                    cycle: cycle(d)?,
                    tenant: tenant(d)?,
                });
            } else if let Some(r) = e.get("repartition") {
                let active = r
                    .get("active")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("missing \"active\""))?
                    .iter()
                    .map(Json::as_bool)
                    .collect::<Option<Vec<bool>>>()
                    .ok_or_else(|| bad("\"active\" must be booleans"))?;
                events.push(ScenarioEvent::Repartition {
                    cycle: cycle(r)?,
                    active,
                });
            } else if let Some(s) = e.get("slo_target") {
                events.push(ScenarioEvent::SloTarget {
                    tenant: tenant(s)?,
                    p99_cycles: s
                        .get("p99_cycles")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("missing \"p99_cycles\""))?,
                });
            } else {
                return Err(bad(
                    "expected one of \"arrive\", \"depart\", \"repartition\", \"slo_target\"",
                ));
            }
        }
        let slo = match v.get("slo") {
            None => None,
            Some(s) => Some(SloPolicy {
                check_interval: s
                    .get("check_interval")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("slo: missing \"check_interval\"".into()))?,
                evict_after: s
                    .get("evict_after")
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| err("slo: missing \"evict_after\"".into()))?,
                min_samples: s
                    .get("min_samples")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("slo: missing \"min_samples\"".into()))?,
            }),
        };
        let spec = ScenarioSpec { events, slo };
        spec.validate()?;
        Ok(spec)
    }

    /// Compiles a validated spec into the executable runtime state.
    pub(crate) fn compile(&self) -> ScenarioRuntime {
        let n = self.n_tenants();
        let mut slo_target = vec![None; n];
        let mut next_arrival = 0usize;
        let mut timeline: Vec<(u64, Action)> = Vec::new();
        for e in &self.events {
            match e {
                ScenarioEvent::Arrive { cycle, .. } => {
                    timeline.push((*cycle, Action::Arrive(next_arrival)));
                    next_arrival += 1;
                }
                ScenarioEvent::Depart { cycle, tenant } => {
                    timeline.push((*cycle, Action::Depart(*tenant)));
                }
                ScenarioEvent::Repartition { cycle, active } => {
                    timeline.push((*cycle, Action::Repartition(active.clone())));
                }
                ScenarioEvent::SloTarget { tenant, p99_cycles } => {
                    slo_target[*tenant] = Some(*p99_cycles);
                }
            }
        }
        timeline.sort_by_key(|&(c, _)| c); // Stable: same-cycle keeps list order.
        let slo = if slo_target.iter().any(Option::is_some) {
            Some(self.slo.unwrap_or_default())
        } else {
            None
        };
        ScenarioRuntime {
            timeline,
            next: 0,
            slo,
            slo_target,
            active: vec![false; n],
            arrived_at: vec![None; n],
            departed_at: vec![None; n],
            evicted: vec![false; n],
            resolved: vec![false; n],
            throttled: vec![false; n],
            violations: vec![0; n],
            slo_checks: vec![0; n],
            slo_met: vec![0; n],
            throttled_checks: vec![0; n],
            last_check_walks: vec![0; n],
            last_enqueued: vec![0; n],
            lifetime_instr: vec![0; n],
            evictions: 0,
            repartitions: 0,
            throttles: 0,
        }
    }
}

/// One compiled timeline action (the cycle lives alongside it).
#[derive(Debug, Clone)]
pub(crate) enum Action {
    /// Tenant (by arrival index) arrives.
    Arrive(usize),
    /// Tenant departs.
    Depart(usize),
    /// Explicit walker repartition.
    Repartition(Vec<bool>),
}

/// The executable state of a scenario inside a running simulation: the
/// sorted timeline cursor, per-tenant residency, and the QoS controller's
/// accumulators. The simulation's event loop drives it; everything here is
/// plain bookkeeping so a run without a scenario pays nothing.
#[derive(Debug)]
pub(crate) struct ScenarioRuntime {
    /// `(cycle, action)` pairs, stably sorted by cycle.
    pub timeline: Vec<(u64, Action)>,
    /// Next timeline entry to apply.
    pub next: usize,
    /// QoS controller parameters; `None` when no tenant has an SLO target.
    pub slo: Option<SloPolicy>,
    /// Per-tenant p99 walk-latency SLO, when declared.
    pub slo_target: Vec<Option<u64>>,
    /// Resident right now (arrived, not departed/evicted).
    pub active: Vec<bool>,
    pub arrived_at: Vec<Option<u64>>,
    pub departed_at: Vec<Option<u64>>,
    pub evicted: Vec<bool>,
    /// Counted toward the stop condition (completed an execution, departed,
    /// or was evicted).
    pub resolved: Vec<bool>,
    /// Excluded from the walker partition by the QoS controller.
    pub throttled: Vec<bool>,
    /// Consecutive violating checks, per victim tenant.
    pub violations: Vec<u32>,
    pub slo_checks: Vec<u64>,
    pub slo_met: Vec<u64>,
    /// Checks during which the tenant sat throttled.
    pub throttled_checks: Vec<u64>,
    /// `walks_completed`-histogram total at the last counted check.
    pub last_check_walks: Vec<u64>,
    /// `WalkStats::enqueued` snapshot for aggressor attribution.
    pub last_enqueued: Vec<u64>,
    /// Instructions retired at departure (filled at run end for residents).
    pub lifetime_instr: Vec<u64>,
    pub evictions: u64,
    pub repartitions: u64,
    pub throttles: u64,
}

impl ScenarioRuntime {
    /// The walker-partition view: resident and not throttled. When the
    /// controller has throttled *every* resident tenant (e.g. the pinned
    /// last tenant was the aggressor and its peers have since departed),
    /// the throttles are moot — there is no victim left to protect — so
    /// the partition falls back to the full resident set rather than
    /// leaving the walkers ownerless.
    pub fn walker_active(&self) -> Vec<bool> {
        let masked: Vec<bool> = self
            .active
            .iter()
            .zip(&self.throttled)
            .map(|(&a, &t)| a && !t)
            .collect();
        if masked.iter().any(|&a| a) {
            masked
        } else {
            self.active.clone()
        }
    }
}

/// Fairness-under-churn metrics of one tenant (see [`ChurnReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantChurn {
    /// Cycle the tenant arrived, if it did before the run ended.
    pub arrived: Option<u64>,
    /// Cycle it departed or was evicted, if it did.
    pub departed: Option<u64>,
    /// Whether the departure was a QoS eviction.
    pub evicted: bool,
    /// The declared p99 walk-latency SLO, if any.
    pub slo_target: Option<u64>,
    /// SLO checks counted against this tenant's target.
    pub slo_checks: u64,
    /// Checks whose p99 met the target.
    pub slo_met: u64,
    /// Checks during which the tenant sat throttled by the controller.
    pub throttled_checks: u64,
    /// Queued walks cancelled when the tenant departed.
    pub cancelled_walks: u64,
    /// Warp instructions retired while resident.
    pub lifetime_instructions: u64,
    /// Cycles between arrival and departure (or run end).
    pub lifetime_cycles: u64,
}

impl TenantChurn {
    /// Fraction of counted SLO checks that met the target (1.0 with no
    /// checks: an unmeasured SLO is not a violated one).
    #[must_use]
    pub fn slo_compliance(&self) -> f64 {
        if self.slo_checks == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.slo_checks as f64
        }
    }

    /// Instructions per cycle over the tenant's residency window — the
    /// per-tenant term of weighted-speedup-over-lifetime.
    #[must_use]
    pub fn lifetime_ipc(&self) -> f64 {
        if self.lifetime_cycles == 0 {
            0.0
        } else {
            self.lifetime_instructions as f64 / self.lifetime_cycles as f64
        }
    }
}

/// Fairness-under-churn results of a scenario run, attached to
/// [`SimResult::churn`](crate::SimResult) when the run had a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Per-tenant metrics, indexed by arrival order.
    pub tenants: Vec<TenantChurn>,
    /// QoS evictions performed.
    pub evictions: u64,
    /// Walker repartitions performed (arrivals, departures, explicit
    /// repartition events, throttles, and un-throttles).
    pub repartitions: u64,
    /// Throttle impositions by the QoS controller.
    pub throttles: u64,
}

impl ChurnReport {
    /// Weighted speedup over tenant lifetimes: Σᵢ lifetime-IPCᵢ / IPCˢᴬᵢ,
    /// the churn analogue of weighted IPC (each tenant normalized by its
    /// stand-alone IPC, measured over its own residency window).
    ///
    /// # Panics
    ///
    /// Panics if `standalone_ipc.len()` differs from the tenant count or
    /// any stand-alone IPC is non-positive.
    #[must_use]
    pub fn weighted_speedup_over_lifetime(&self, standalone_ipc: &[f64]) -> f64 {
        assert_eq!(
            self.tenants.len(),
            standalone_ipc.len(),
            "stand-alone IPC per tenant required"
        );
        self.tenants
            .iter()
            .zip(standalone_ipc)
            .map(|(t, &sa)| {
                assert!(sa > 0.0, "stand-alone IPC must be positive");
                t.lifetime_ipc() / sa
            })
            .sum()
    }

    /// Serializes to a [`Json`] object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| match v {
            Some(c) => Json::UInt(c),
            None => Json::Null,
        };
        Json::Obj(vec![
            (
                "tenants".into(),
                Json::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("arrived".into(), opt(t.arrived)),
                                ("departed".into(), opt(t.departed)),
                                ("evicted".into(), Json::Bool(t.evicted)),
                                ("slo_target".into(), opt(t.slo_target)),
                                ("slo_checks".into(), Json::UInt(t.slo_checks)),
                                ("slo_met".into(), Json::UInt(t.slo_met)),
                                ("throttled_checks".into(), Json::UInt(t.throttled_checks)),
                                ("cancelled_walks".into(), Json::UInt(t.cancelled_walks)),
                                (
                                    "lifetime_instructions".into(),
                                    Json::UInt(t.lifetime_instructions),
                                ),
                                ("lifetime_cycles".into(), Json::UInt(t.lifetime_cycles)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("evictions".into(), Json::UInt(self.evictions)),
            ("repartitions".into(), Json::UInt(self.repartitions)),
            ("throttles".into(), Json::UInt(self.throttles)),
        ])
    }

    /// Deserializes from [`to_json`](Self::to_json) output.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<ChurnReport> {
        let opt = |v: Option<&Json>| match v {
            None | Some(Json::Null) => Some(None),
            Some(j) => j.as_u64().map(Some),
        };
        Some(ChurnReport {
            tenants: v
                .get("tenants")?
                .as_array()?
                .iter()
                .map(|t| {
                    Some(TenantChurn {
                        arrived: opt(t.get("arrived"))?,
                        departed: opt(t.get("departed"))?,
                        evicted: t.get("evicted")?.as_bool()?,
                        slo_target: opt(t.get("slo_target"))?,
                        slo_checks: t.get("slo_checks")?.as_u64()?,
                        slo_met: t.get("slo_met")?.as_u64()?,
                        throttled_checks: t.get("throttled_checks")?.as_u64()?,
                        cancelled_walks: t.get("cancelled_walks")?.as_u64()?,
                        lifetime_instructions: t.get("lifetime_instructions")?.as_u64()?,
                        lifetime_cycles: t.get("lifetime_cycles")?.as_u64()?,
                    })
                })
                .collect::<Option<_>>()?,
            evictions: v.get("evictions")?.as_u64()?,
            repartitions: v.get("repartitions")?.as_u64()?,
            throttles: v.get("throttles")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_churn() -> ScenarioSpec {
        ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(1_000, AppId::Gups)
            .depart(50_000, 1)
            .slo_target(0, 800)
    }

    #[test]
    fn valid_timelines_validate() {
        two_tenant_churn().validate().unwrap();
        ScenarioSpec::static_run([AppId::Mm, AppId::Gups])
            .validate()
            .unwrap();
    }

    #[test]
    fn static_run_arrivals_all_at_zero() {
        let s = ScenarioSpec::static_run([AppId::Mm, AppId::Gups]);
        assert_eq!(s.n_tenants(), 2);
        assert!(s
            .events
            .iter()
            .all(|e| matches!(e, ScenarioEvent::Arrive { cycle: 0, .. })));
    }

    #[test]
    fn rejects_empty_and_late_first_arrival() {
        let e = ScenarioSpec::new().validate().unwrap_err();
        assert!(matches!(e, ConfigError::Scenario(_)), "{e}");
        let e = ScenarioSpec::new().arrive(5, AppId::Mm).validate().unwrap_err();
        assert!(e.to_string().contains("cycle 0"), "{e}");
    }

    #[test]
    fn rejects_depart_before_arrive() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(10_000, AppId::Gups)
            .depart(5_000, 1)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("departs at cycle 5000"), "{e}");
    }

    #[test]
    fn rejects_double_depart_and_bad_index() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(0, AppId::Gups)
            .depart(10, 1)
            .depart(20, 1)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("twice"), "{e}");
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .depart(10, 3)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("tenant 3"), "{e}");
    }

    #[test]
    fn rejects_emptying_the_gpu() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .depart(100, 0)
            .arrive(200, AppId::Gups)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("no tenant is resident"), "{e}");
    }

    #[test]
    fn rejects_unsorted_arrivals() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(500, AppId::Gups)
            .arrive(100, AppId::Tds)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("non-decreasing"), "{e}");
    }

    #[test]
    fn rejects_bad_repartitions() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .repartition(10, vec![true, false])
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("covers 2 tenants"), "{e}");
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .repartition(10, vec![false])
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("no tenant"), "{e}");
        // Flagging a tenant that has not arrived yet.
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(1_000, AppId::Gups)
            .repartition(10, vec![true, true])
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("not resident"), "{e}");
    }

    #[test]
    fn rejects_bad_slo_targets() {
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .slo_target(0, 100)
            .slo_target(0, 200)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("two SLO targets"), "{e}");
        let e = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .slo_target(0, 0)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
    }

    #[test]
    fn json_round_trips() {
        let spec = two_tenant_churn()
            .repartition(60_000, vec![true, false])
            .slo_policy(SloPolicy {
                check_interval: 10_000,
                evict_after: 3,
                min_samples: 16,
            });
        let text = spec.to_json().dump();
        let back = ScenarioSpec::try_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn json_round_trips_synthetic_profiles() {
        let mut p = AppId::Mm.profile();
        p.cold_pages = 4096;
        p.cold_prob = 0.5;
        let spec = ScenarioSpec::new().arrive(0, TenantSpec::synthetic(p));
        let text = spec.to_json().dump();
        let back = ScenarioSpec::try_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.tenant_specs()[0].profile().cold_pages, 4096);
    }

    #[test]
    fn json_parse_rejects_bad_timelines() {
        // Structurally fine, semantically bad: depart before arrive.
        let bad = r#"{"events":[
            {"arrive":{"cycle":0,"app":"MM"}},
            {"arrive":{"cycle":10000,"app":"GUPS"}},
            {"depart":{"cycle":500,"tenant":1}}
        ]}"#;
        let e = ScenarioSpec::try_from_json(&Json::parse(bad).unwrap()).unwrap_err();
        assert!(matches!(e, ConfigError::Scenario(_)), "{e}");

        // Structurally bad.
        for bad in [
            r#"{}"#,
            r#"{"events":[{"arrive":{"cycle":0}}]}"#,
            r#"{"events":[{"arrive":{"cycle":0,"app":"NOPE"}}]}"#,
            r#"{"events":[{"blargh":{}}]}"#,
            r#"{"events":[{"depart":{"cycle":5}}]}"#,
        ] {
            let e = ScenarioSpec::try_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(matches!(e, ConfigError::Scenario(_)), "{bad}: {e}");
        }
    }

    #[test]
    fn compile_sorts_timeline_and_collects_targets() {
        let rt = two_tenant_churn().compile();
        assert_eq!(rt.timeline.len(), 3);
        let cycles: Vec<u64> = rt.timeline.iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![0, 1_000, 50_000]);
        assert_eq!(rt.slo_target, vec![Some(800), None]);
        assert!(rt.slo.is_some(), "targets imply a default policy");
        let rt = ScenarioSpec::static_run([AppId::Mm]).compile();
        assert!(rt.slo.is_none());
    }

    #[test]
    fn churn_report_metrics() {
        let t = TenantChurn {
            arrived: Some(0),
            departed: Some(1_000),
            evicted: false,
            slo_target: Some(500),
            slo_checks: 4,
            slo_met: 3,
            throttled_checks: 0,
            cancelled_walks: 2,
            lifetime_instructions: 5_000,
            lifetime_cycles: 1_000,
        };
        assert!((t.slo_compliance() - 0.75).abs() < 1e-12);
        assert!((t.lifetime_ipc() - 5.0).abs() < 1e-12);
        let report = ChurnReport {
            tenants: vec![t],
            evictions: 1,
            repartitions: 3,
            throttles: 2,
        };
        let w = report.weighted_speedup_over_lifetime(&[10.0]);
        assert!((w - 0.5).abs() < 1e-12);

        let text = report.to_json().dump();
        let back = ChurnReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
