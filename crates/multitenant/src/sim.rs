//! The deterministic discrete-event simulation of N tenants on one GPU.
//!
//! Warps execute at memory-operation granularity: each warp alternates
//! compute bursts (served by its SM's issue timeline) with memory
//! instructions whose coalesced references traverse the full translation
//! path — private L1 TLB, shared (or per-tenant) L2 TLB, and on a miss the
//! page-walk subsystem — before the data access goes through the L1 cache
//! and the shared L2/DRAM. All contended resources (walk queues, walkers,
//! L2 banks, DRAM channels, MSHRs, merge entries) back-pressure the pipeline
//! exactly where the hardware would.

use walksteal_gpu::{MemRef, SmState};
use walksteal_mem::{Access, AccessKind, MemSystem};
use walksteal_sim_core::trace::{Observer, TraceEvent, TraceKind};
use walksteal_sim_core::{
    BudgetKind, Cycle, EventQueue, FnvMap, LineAddr, Ppn, RunBudget, RunDiag, SimError, TenantId,
    Vpn, WalkerId,
};
use walksteal_vm::{
    walk::WalkContext, ArenaTlb, ArenaTlbKind, FrameAlloc, MaskState, PageTable, Tlb, WalkRequest,
    WalkSubsystem, MOSAIC_GROUP,
};
use walksteal_workloads::{AppId, AppProfile, WarpStream};

use crate::config::GpuConfig;
use crate::metrics::{Sample, SimResult, TenantResult};
use crate::pipeline::{StreamPipeline, StreamPipelining};
use crate::scenario::{Action, ChurnReport, ScenarioRuntime, TenantChurn};

/// A translation waiting on an outstanding walk: (sm, warp, reference).
type Waiter = (usize, usize, MemRef);

/// Events between wall-clock budget samples (`Instant::now` is too costly
/// per event).
const WALL_SAMPLE_STRIDE: u64 = 1 << 16;

/// The first wall-clock sampling boundary strictly after `count` processed
/// events: 64 Ki, 128 Ki, ... — never 0, so a fresh (or resumed) count does
/// not sample before any work has run, and a batched count that jumps past a
/// boundary still triggers at the next comparison.
fn next_wall_boundary(count: u64) -> u64 {
    (count / WALL_SAMPLE_STRIDE + 1) * WALL_SAMPLE_STRIDE
}

/// Discrete events driving the simulation.
///
/// The payload is deliberately narrow (`u16` indices, `u8` walker id) so an
/// event plus its timestamp stays within one cache line slot in the
/// calendar queue; the hot loop moves millions of these per second.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The warp begins its next operation (compute burst + memory op).
    WarpStart { sm: u16, warp: u16 },
    /// The warp's compute burst finished; its memory references issue.
    WarpMem { sm: u16, warp: u16 },
    /// A page-table walker finished its walk.
    WalkerDone { walker: WalkerId },
    /// One memory reference's data returned to the warp.
    RefDone { sm: u16, warp: u16 },
    /// Periodic timeline snapshot.
    TakeSample,
    /// Scenario-timeline actions (arrive/depart/repartition) are due.
    ScenarioStep,
    /// Periodic QoS-controller SLO check.
    SloCheck,
}

const _: () = assert!(
    std::mem::size_of::<Event>() <= 8,
    "Event payload grew past 8 bytes; keep the hot-loop event small"
);

/// Per-warp runtime state.
struct Warp {
    stream: WarpStream,
    /// Coalesced references queued for issue at the end of the compute burst.
    pending: Vec<MemRef>,
    /// References of the in-flight memory instruction still outstanding.
    outstanding: usize,
    /// Whether this warp exhausted its execution budget and is waiting for
    /// the rest of its tenant's warps.
    finished: bool,
}

/// Per-tenant runtime state.
struct Tenant {
    app: AppId,
    /// Global warp count for this tenant.
    warps_total: usize,
    warps_finished: usize,
    launch_cycle: Cycle,
    /// Warp instructions issued during the current execution.
    instr_this_exec: u64,
    /// (instructions, completion cycle) of each completed execution.
    completed: Vec<(u64, Cycle)>,
    /// All warp instructions issued, including the in-progress execution.
    instr_total: u64,
    /// Demand (non-retry) L2 TLB misses.
    l2_demand_misses: u64,
    /// Demand L2 TLB probes.
    l2_demand_probes: u64,
}

/// A deterministic simulation of co-running tenants (see crate docs).
pub struct Simulation {
    cfg: GpuConfig,
    events: EventQueue<Event>,
    now: Cycle,
    sms: Vec<SmState>,
    /// All warps, flattened as `sm * warps_per_sm + warp`; the hot loop
    /// indexes this constantly and a flat vector keeps it one bounds check
    /// and no pointer chase.
    warps: Vec<Warp>,
    tenants: Vec<Tenant>,
    l2_tlbs: Vec<Tlb>,
    /// Policy-arena L2 organization, replacing `l2_tlbs` when a
    /// related-work preset selects one ([`GpuConfig::l2_arena`]). `None`
    /// for every paper preset, keeping their L2 path byte-identical.
    arena: Option<ArenaTlb>,
    walk: WalkSubsystem,
    mem: MemSystem,
    page_tables: Vec<PageTable>,
    frames: FrameAlloc,
    mask: Option<MaskState>,
    /// Outstanding walks keyed by (tenant, vpn). FNV-hashed: the keys are
    /// small integers, iteration order is never observed, and the map sits
    /// on the L2-miss path.
    merge: FnvMap<(TenantId, Vpn), Vec<Waiter>>,
    /// Free list of waiter vectors for `merge`, so the walk-merge path
    /// recycles buffers instead of allocating one per walk.
    waiter_pool: Vec<Vec<Waiter>>,
    /// Translations blocked on a full resource (walk queue, merge table, or
    /// L1-TLB MSHRs), re-tried when a walker completion frees capacity.
    /// Parked per tenant and woken round-robin so a walk-intensive tenant's
    /// backlog cannot starve another tenant's rare misses.
    parked: Vec<std::collections::VecDeque<Waiter>>,
    parked_rr: usize,
    /// Reusable same-cycle TLB batch buffers for `on_warp_mem`: the probed
    /// VPNs of a warp's coalesced references and their probe results.
    vpn_batch: Vec<Vpn>,
    tlb_batch: Vec<Option<Ppn>>,
    /// Same-cycle staged L1-miss data accesses awaiting one
    /// [`MemSystem::access_batch`] pass: `(sm, warp, line)` in reference
    /// order. Reused across flushes; see [`stage_data`](Self::stage_data).
    stage: Vec<(u16, u16, LineAddr)>,
    /// Line addresses split out of `stage` for the batch call.
    stage_lines: Vec<LineAddr>,
    /// Batched access results, parallel to `stage_lines`.
    stage_out: Vec<Access>,
    /// Fixed-latency event lane for `WarpStart` re-issues at the current
    /// cycle (see [`EventQueue::push_lane`]).
    lane_start: usize,
    /// The next `events_processed` boundary (a 64 Ki multiple) at which the
    /// wall-clock budget is sampled; batched counting can jump past a
    /// boundary, so the check compares against this instead of testing
    /// divisibility.
    next_wall_check: u64,
    /// When present, warp ops come from epoch-pipelined generator threads
    /// instead of the inline per-warp streams (byte-identical either way;
    /// see [`crate::pipeline`]).
    pipeline: Option<StreamPipeline>,
    /// SMs assigned to each tenant (`n_sms / n_tenants`).
    sms_per_tenant: usize,
    events_processed: u64,
    /// Tenants with >= 1 completed execution.
    tenants_done: usize,
    stopped: bool,
    timeline: Vec<Sample>,
    /// Per-tenant instruction counts at the previous sample.
    last_sample_instr: Vec<u64>,
    /// Trace/metrics sinks; [`Observer::off`] when observability is off.
    obs: Observer,
    /// The workload seed, re-emitted in the trace header for replay.
    seed: u64,
    /// Dynamic-tenancy state when the run has a scenario; `None` keeps the
    /// static path byte-identical (every churn hook is gated on it).
    scenario: Option<ScenarioRuntime>,
}

impl Simulation {
    /// Builds a simulation of `profiles` (one tenant per entry) from `cfg`
    /// with an explicit [`Observer`] and stream-pipelining mode attached —
    /// the construction path used by `SimulationBuilder` (the only public
    /// way to build a [`Simulation`]). Taking behavioral profiles rather
    /// than [`AppId`]s lets synthetic tenants — profiles outside the 13
    /// calibrated apps, as drawn by the scenario fuzzer — run through the
    /// exact same path (an `AppId`'s profile embeds its own id).
    pub(crate) fn with_profiles(
        cfg: GpuConfig,
        profiles: &[AppProfile],
        seed: u64,
        obs: Observer,
        pipelining: StreamPipelining,
    ) -> Self {
        assert!(!profiles.is_empty(), "need at least one tenant");
        let cfg = cfg.for_tenants(profiles.len());
        assert!(
            cfg.n_sms <= usize::from(u16::MAX) && cfg.warps_per_sm <= usize::from(u16::MAX),
            "SM/warp counts must fit the packed u16 event payload"
        );
        let n_tenants = profiles.len();
        let sms_per_tenant = cfg.n_sms / n_tenants;
        let pipelined = pipelining.enabled();

        let mut sms = Vec::with_capacity(cfg.n_sms);
        let mut warps = Vec::with_capacity(cfg.n_sms * cfg.warps_per_sm);
        // Seeded duplicates of every warp stream, bucketed per tenant in
        // tenant-local warp order, for the generator threads.
        let mut gen_streams: Vec<Vec<WarpStream>> = vec![Vec::new(); n_tenants];
        let mut events = EventQueue::new();
        // Fixed-latency fast lane for zero-latency `WarpStart` re-issues:
        // pushes at the (monotone) current cycle skip the generic calendar
        // insert and drain wholesale. The queue splices lanes back in
        // insertion order, so routing through one is behavior-preserving.
        // Positive-latency completions (e.g. L1 hits at `now + 25`) stay on
        // the calendar: its bucket push is already O(1), so a lane saves
        // nothing there and the drain-time splice costs ~5% end-to-end
        // (measured; see EXPERIMENTS.md).
        let lane_start = events.add_lane();
        for sm in 0..cfg.n_sms {
            let tenant = TenantId((sm / sms_per_tenant) as u8);
            sms.push(SmState::new(cfg.sm, tenant));
            for w in 0..cfg.warps_per_sm {
                let local_sm = sm % sms_per_tenant;
                let warp_index = (local_sm * cfg.warps_per_sm + w) as u64;
                let stream = WarpStream::new(
                    profiles[tenant.index()],
                    seed ^ (0x9E37 * (tenant.index() as u64 + 1)),
                    warp_index,
                    cfg.instructions_per_warp,
                );
                if pipelined {
                    gen_streams[tenant.index()].push(stream.clone());
                }
                warps.push(Warp {
                    stream,
                    pending: Vec::new(),
                    outstanding: 0,
                    finished: false,
                });
                events.push(
                    Cycle::ZERO,
                    Event::WarpStart {
                        sm: sm as u16,
                        warp: w as u16,
                    },
                );
            }
        }

        let tenants = profiles
            .iter()
            .map(|p| Tenant {
                app: p.id,
                warps_total: sms_per_tenant * cfg.warps_per_sm,
                warps_finished: 0,
                launch_cycle: Cycle::ZERO,
                instr_this_exec: 0,
                completed: Vec::new(),
                instr_total: 0,
                l2_demand_misses: 0,
                l2_demand_probes: 0,
            })
            .collect();

        let n_l2_tlbs = if cfg.l2_tlb_private { n_tenants } else { 1 };
        let l2_tlbs = (0..n_l2_tlbs)
            .map(|_| Tlb::new(cfg.l2_tlb, n_tenants))
            .collect();
        let arena = cfg
            .l2_arena
            .map(|kind| ArenaTlb::new(kind, cfg.l2_tlb, n_tenants, cfg.page_size));

        // Mosaic relies on each aligned page group being physically
        // contiguous; its preset switches the tables to the
        // contiguity-reserving allocator.
        let page_tables = (0..n_tenants)
            .map(|t| {
                if cfg.l2_arena == Some(ArenaTlbKind::Mosaic) {
                    PageTable::with_reservation(TenantId(t as u8), cfg.page_size, MOSAIC_GROUP)
                } else {
                    PageTable::new(TenantId(t as u8), cfg.page_size)
                }
            })
            .collect();

        Simulation {
            walk: WalkSubsystem::new(cfg.walk.clone()),
            mem: MemSystem::new(cfg.mem),
            mask: cfg.mask.map(|m| MaskState::new(m, n_tenants)),
            sms,
            warps,
            tenants,
            l2_tlbs,
            arena,
            page_tables,
            frames: FrameAlloc::new(),
            // Sized to the merge-table limit so the L2-miss path never
            // rehashes mid-run.
            merge: FnvMap::with_capacity_and_hasher(cfg.merge_capacity, Default::default()),
            waiter_pool: Vec::new(),
            parked: (0..n_tenants)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            parked_rr: 0,
            vpn_batch: Vec::new(),
            tlb_batch: Vec::new(),
            stage: Vec::new(),
            stage_lines: Vec::new(),
            stage_out: Vec::new(),
            lane_start,
            next_wall_check: next_wall_boundary(0),
            pipeline: pipelined.then(|| StreamPipeline::spawn(gen_streams)),
            sms_per_tenant,
            events,
            now: Cycle::ZERO,
            events_processed: 0,
            tenants_done: 0,
            stopped: false,
            timeline: Vec::new(),
            last_sample_instr: vec![0; n_tenants],
            obs,
            seed,
            scenario: None,
            cfg,
        }
    }

    /// Attaches a compiled scenario. Cycle-0 actions apply immediately:
    /// arrivals mark their tenants resident (the initial `WarpStart` events
    /// already exist for every warp and [`on_warp_start`](Self::on_warp_start)
    /// gates on residency, so unarrived tenants stay quiescent), and the
    /// walker partition is narrowed to the cycle-0 residents when not
    /// everyone arrives at once.
    pub(crate) fn attach_scenario(&mut self, rt: ScenarioRuntime) {
        debug_assert!(self.scenario.is_none(), "scenario attached twice");
        debug_assert_eq!(rt.active.len(), self.tenants.len());
        self.scenario = Some(rt);
        // Apply everything due at cycle 0 (arrivals; possibly an explicit
        // repartition). `now` is still 0, so `on_tenant_arrive` skips the
        // redundant warp launches.
        self.on_scenario_step();
        let sc = self.scenario.as_ref().expect("just attached");
        let walker_active = sc.walker_active();
        if walker_active.iter().any(|&a| !a) {
            self.walk.set_active_tenants(&walker_active);
        }
        if let Some(policy) = self.scenario.as_ref().and_then(|s| s.slo) {
            self.events
                .push(Cycle(policy.check_interval), Event::SloCheck);
        }
    }

    /// Applies every scenario-timeline action due at `now`, then schedules
    /// the next [`Event::ScenarioStep`].
    fn on_scenario_step(&mut self) {
        loop {
            let Some(sc) = self.scenario.as_mut() else {
                return;
            };
            match sc.timeline.get(sc.next) {
                Some(&(cycle, _)) if cycle <= self.now.0 => {
                    let action = sc.timeline[sc.next].1.clone();
                    sc.next += 1;
                    match action {
                        Action::Arrive(t) => self.on_tenant_arrive(t),
                        Action::Depart(t) => self.on_tenant_depart(t, false),
                        Action::Repartition(active) => {
                            self.walk.set_active_tenants(&active);
                            self.scenario.as_mut().expect("still attached").repartitions += 1;
                        }
                    }
                }
                Some(&(cycle, _)) => {
                    self.events.push(Cycle(cycle), Event::ScenarioStep);
                    return;
                }
                None => return,
            }
        }
    }

    /// A scenario tenant becomes resident: its warps launch and the walker
    /// partition re-splits to include it (paper §VI.C).
    fn on_tenant_arrive(&mut self, t: usize) {
        let now = self.now;
        let sc = self.scenario.as_mut().expect("scenario action");
        debug_assert!(!sc.active[t], "tenant {t} arrived twice");
        sc.active[t] = true;
        sc.arrived_at[t] = Some(now.0);
        self.tenants[t].launch_cycle = now;
        if now.0 == 0 {
            // Cycle-0 arrival during attach: the construction-time
            // `WarpStart` events cover the launch, and `attach_scenario`
            // sets the initial walker partition once, uncounted.
            return;
        }
        let sm_base = t * self.sms_per_tenant;
        for sm in sm_base..sm_base + self.sms_per_tenant {
            for warp in 0..self.cfg.warps_per_sm {
                self.events.push(
                    now,
                    Event::WarpStart {
                        sm: sm as u16,
                        warp: warp as u16,
                    },
                );
            }
        }
        self.repartition_walkers();
    }

    /// A scenario tenant leaves (voluntarily or evicted by the QoS
    /// controller): cancel its queued walks, shoot down its TLB entries,
    /// drop its merge waiters and parked translations, and re-split the
    /// walkers among the remaining residents. Warps freeze where they are —
    /// the residency gates in the warp handlers stop their progress.
    fn on_tenant_depart(&mut self, t: usize, evicted: bool) {
        let now = self.now;
        let tid = TenantId(t as u8);
        {
            let sc = self.scenario.as_mut().expect("scenario action");
            if !sc.active[t] {
                // Already gone (e.g. evicted before its scripted departure).
                return;
            }
            sc.active[t] = false;
            sc.departed_at[t] = Some(now.0);
            sc.throttled[t] = false;
            if evicted {
                sc.evicted[t] = true;
                sc.evictions += 1;
            }
            sc.lifetime_instr[t] = self.tenants[t].instr_total;
        }

        // Queued (not yet in-service) walks are cancelled; in-service walks
        // complete normally and find no waiters.
        self.walk.cancel_tenant(tid);

        // Release the L1-TLB MSHRs held by waiters merged onto the tenant's
        // outstanding walks, then drop the waiters. Keys are collected in
        // VPN order so the release sequence is deterministic regardless of
        // map iteration order.
        let mut keys: Vec<(TenantId, Vpn)> =
            self.merge.keys().filter(|k| k.0 == tid).copied().collect();
        keys.sort_by_key(|k| k.1 .0);
        for key in keys {
            let mut waiters = self.merge.remove(&key).expect("key just listed");
            for &(sm, _, _) in &waiters {
                self.sms[sm].release_tlb_mshr();
            }
            waiters.clear();
            self.waiter_pool.push(waiters);
        }
        self.parked[t].clear();

        // TLB shootdown: the departing tenant's translations are dead.
        self.l2_invalidate(tid, now);
        let sm_base = t * self.sms_per_tenant;
        for sm in sm_base..sm_base + self.sms_per_tenant {
            self.sms[sm].flush_l1_tlb(now);
        }

        self.repartition_walkers();
        self.resolve_tenant(t);
    }

    /// Re-splits the walker partition to the current resident-and-not-
    /// throttled tenant set.
    fn repartition_walkers(&mut self) {
        let sc = self.scenario.as_mut().expect("scenario runs only");
        let walker_active = sc.walker_active();
        if !walker_active.iter().any(|&a| a) {
            // Every tenant has departed (a timeline may empty the GPU);
            // there is no one to own the walkers and nothing left to walk.
            return;
        }
        sc.repartitions += 1;
        self.walk.set_active_tenants(&walker_active);
    }

    /// Marks tenant `t` as counted toward the scenario stop condition
    /// (completed an execution, departed, or was evicted).
    fn resolve_tenant(&mut self, t: usize) {
        let sc = self.scenario.as_mut().expect("scenario runs only");
        if sc.resolved[t] {
            return;
        }
        sc.resolved[t] = true;
        self.tenants_done += 1;
        if self.tenants_done == self.tenants.len() {
            self.stopped = true;
        }
    }

    /// One periodic QoS-controller check (see [`SloPolicy`]): read each
    /// targeted tenant's cumulative p99 walk latency from the metrics
    /// registry; on a violation throttle the aggressor (the other resident
    /// tenant that enqueued the most walks since the last check), and after
    /// `evict_after` consecutive violating checks evict it. When no victim
    /// is violating, throttles lift.
    fn on_slo_check(&mut self) {
        let Some(sc) = &self.scenario else { return };
        let Some(policy) = sc.slo else { return };
        if !self.stopped {
            self.events
                .push(self.now + policy.check_interval, Event::SloCheck);
        }
        let n = self.tenants.len();

        // Walks enqueued per tenant since the last check — the aggressor
        // attribution signal.
        let enqueued = self.walk.stats().enqueued.clone();
        let delta_enq: Vec<u64> = (0..n)
            .map(|t| enqueued[t] - self.scenario.as_ref().expect("checked").last_enqueued[t])
            .collect();

        // Read each targeted resident's p99 from the registry. The borrow
        // of `obs` is immutable, so collect verdicts first, then act.
        // `None` verdict: the victim completed too few walks since its last
        // counted check — no signal, the check is uncounted and the victim's
        // violation streak decays (a quiet victim is not a suffering one, and
        // must not pin a throttle forever).
        let mut verdicts: Vec<(usize, Option<bool>, u64)> = Vec::new();
        if let Some(metrics) = self.obs.metrics() {
            let sc = self.scenario.as_ref().expect("checked");
            for t in 0..n {
                let (Some(target), true) = (sc.slo_target[t], sc.active[t]) else {
                    continue;
                };
                let sample = metrics.with(|reg| {
                    reg.histogram("walk_latency", Some(t as u8))
                        .map(|h| (h.total(), h.percentile(0.99)))
                });
                let Some((total, p99)) = sample else { continue };
                if total - sc.last_check_walks[t] < policy.min_samples {
                    verdicts.push((t, None, total));
                } else {
                    verdicts.push((t, Some(p99 <= target), total));
                }
            }
        }

        let mut any_violation = false;
        for (victim, verdict, total) in verdicts {
            {
                let sc = self.scenario.as_mut().expect("checked");
                let Some(met) = verdict else {
                    sc.violations[victim] = 0;
                    continue;
                };
                sc.slo_checks[victim] += 1;
                sc.last_check_walks[victim] = total;
                if met {
                    sc.slo_met[victim] += 1;
                    sc.violations[victim] = 0;
                    continue;
                }
                sc.violations[victim] += 1;
                any_violation = true;
            }

            // Aggressor: the other resident tenant that enqueued the most
            // walks since the last check (ties break to the lowest index).
            let sc = self.scenario.as_ref().expect("checked");
            let aggressor = (0..n)
                .filter(|&t| t != victim && sc.active[t])
                .max_by_key(|&t| (delta_enq[t], std::cmp::Reverse(t)));
            let Some(aggr) = aggressor else { continue };
            if self.scenario.as_ref().expect("checked").violations[victim] >= policy.evict_after {
                self.on_tenant_depart(aggr, true);
                self.scenario.as_mut().expect("checked").violations[victim] = 0;
            } else if !self.scenario.as_ref().expect("checked").throttled[aggr] {
                let sc = self.scenario.as_mut().expect("checked");
                sc.throttled[aggr] = true;
                sc.throttles += 1;
                self.repartition_walkers();
            }
        }

        // Victims recovered: lift every throttle in one repartition.
        let sc = self.scenario.as_mut().expect("checked");
        if !any_violation && sc.violations.iter().all(|&v| v == 0) && sc.throttled.contains(&true)
        {
            sc.throttled.iter_mut().for_each(|t| *t = false);
            self.repartition_walkers();
        }

        let sc = self.scenario.as_mut().expect("checked");
        for t in 0..n {
            if sc.active[t] && sc.throttled[t] {
                sc.throttled_checks[t] += 1;
            }
            sc.last_enqueued[t] = enqueued[t];
        }
    }

    /// Flat index of warp `warp` on SM `sm` (see the `warps` field).
    #[inline]
    fn wi(&self, sm: usize, warp: usize) -> usize {
        sm * self.cfg.warps_per_sm + warp
    }

    fn l2_tlb_of(&mut self, tenant: TenantId) -> &mut Tlb {
        if self.cfg.l2_tlb_private {
            &mut self.l2_tlbs[tenant.index()]
        } else {
            &mut self.l2_tlbs[0]
        }
    }

    /// L2 probe through whichever organization the preset selected.
    fn l2_probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        match &mut self.arena {
            Some(arena) => arena.probe(tenant, vpn),
            None => self.l2_tlb_of(tenant).probe(tenant, vpn),
        }
    }

    /// L2 fill through whichever organization the preset selected.
    fn l2_fill(&mut self, tenant: TenantId, vpn: Vpn, ppn: Ppn, now: Cycle) {
        match &mut self.arena {
            Some(arena) => arena.fill(tenant, vpn, ppn, now),
            None => {
                self.l2_tlb_of(tenant).fill(tenant, vpn, ppn, now);
            }
        }
    }

    /// L2 shootdown of a departing tenant's translations.
    fn l2_invalidate(&mut self, tenant: TenantId, now: Cycle) {
        match &mut self.arena {
            Some(arena) => {
                arena.invalidate_tenant(tenant, now);
            }
            None => {
                self.l2_tlb_of(tenant).invalidate_tenant(tenant, now);
            }
        }
    }

    /// Runs to the stop condition (every tenant completed >= 1 execution)
    /// and returns the collected metrics.
    pub fn run(self) -> SimResult {
        self.run_budgeted(&RunBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// Like [`run`](Self::run), but aborts with
    /// [`SimError::BudgetExceeded`] — carrying a partial-result
    /// [`RunDiag`] — if the run blows through `budget` before reaching its
    /// stop condition. The event/cycle/wall-clock behavior of the run
    /// itself is identical to `run`; an unlimited budget adds no checks to
    /// the hot loop beyond one branch per event.
    ///
    /// Wall-clock time is sampled when the processed-event count crosses a
    /// 64 Ki boundary (checked between same-cycle event batches), so a
    /// wall-clock abort can overshoot by the time those events take. Event
    /// and cycle budgets are exact and deterministic.
    pub fn run_budgeted(mut self, budget: &RunBudget) -> Result<SimResult, SimError> {
        let (n_tenants, n_walkers, seed) = (
            self.tenants.len() as u32,
            self.cfg.walk.n_walkers as u32,
            self.seed,
        );
        self.obs.trace(TraceKind::Meta, || TraceEvent::RunStart {
            cycle: 0,
            n_tenants,
            n_walkers,
            seed,
        });
        if let Some(interval) = self.cfg.sample_interval {
            self.events.push(Cycle(interval), Event::TakeSample);
        }
        let limited = !budget.is_unlimited();
        let started = std::time::Instant::now();
        // Cycle-batched drain: pull every same-cycle event in one queue
        // operation, then dispatch them in the exact order the scalar
        // per-event loop would have popped them. Events pushed back at the
        // current cycle land in the (now empty) ring bucket or a fast lane
        // and form the next batch, preserving FIFO order within the cycle
        // (the queue merges lanes back by global insertion order).
        let max_cycles = self.cfg.max_cycles;
        let mut batch: Vec<Event> = Vec::with_capacity(256);
        'run: while let Some(at) = self.events.drain_cycle_into(&mut batch) {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            if at.0 > max_cycles {
                break;
            }
            // Budget checks hoist out of the per-event loop: `now` is fixed
            // for the whole batch (the cycle budget can only trip before its
            // first event) and the event budget admits a computable prefix
            // of the batch, so the dispatch loop below carries no budget
            // branches at all. The trigger points — which event a violation
            // fires before, and the diagnostic it carries — are identical
            // to checking per event, in the scalar check order (events,
            // then cycles, then wall clock).
            let mut cut = batch.len();
            if limited {
                if let Some(limit) = budget.max_events {
                    let room = limit.saturating_sub(self.events_processed);
                    cut = cut.min(usize::try_from(room).unwrap_or(usize::MAX));
                    if cut == 0 && !batch.is_empty() {
                        return Err(self.budget_err(BudgetKind::Events, limit));
                    }
                }
                if let Some(limit) = budget.max_cycles {
                    if self.now.0 > limit {
                        return Err(self.budget_err(BudgetKind::Cycles, limit));
                    }
                }
            }
            for idx in 0..cut {
                match batch[idx] {
                    Event::WarpStart { sm, warp } => self.on_warp_start(sm.into(), warp.into()),
                    Event::WarpMem { sm, warp } => self.on_warp_mem(sm.into(), warp.into()),
                    Event::WalkerDone { walker } => self.on_walker_done(walker),
                    Event::RefDone { sm, warp } => self.on_ref_done(sm.into(), warp.into()),
                    Event::TakeSample => self.on_sample(),
                    Event::ScenarioStep => self.on_scenario_step(),
                    Event::SloCheck => self.on_slo_check(),
                }
                if self.stopped {
                    self.events_processed += idx as u64 + 1;
                    // Replicate the scalar loop's final `now`: it pops the
                    // next event (same cycle if the batch has remainder,
                    // else the queue's next cycle) before noticing the stop.
                    if idx + 1 == batch.len() {
                        if let Some(c) = self.events.next_cycle() {
                            self.now = c;
                        }
                    }
                    break 'run;
                }
            }
            self.events_processed += cut as u64;
            if limited {
                if cut < batch.len() {
                    let limit = budget
                        .max_events
                        .expect("only the event budget shortens a batch");
                    return Err(self.budget_err(BudgetKind::Events, limit));
                }
                if let Some(limit) = budget.max_wall {
                    if self.events_processed >= self.next_wall_check {
                        self.next_wall_check = next_wall_boundary(self.events_processed);
                        if started.elapsed() > limit {
                            return Err(
                                self.budget_err(BudgetKind::WallClock, limit.as_millis() as u64)
                            );
                        }
                    }
                }
            }
            batch.clear();
        }
        Ok(self.collect())
    }

    fn diag(&self) -> RunDiag {
        RunDiag {
            events: self.events_processed,
            cycles: self.now.0,
            tenants_done: self.tenants_done,
            tenants_total: self.tenants.len(),
        }
    }

    /// The budget violation firing at this point of the run.
    fn budget_err(&self, kind: BudgetKind, limit: u64) -> SimError {
        SimError::BudgetExceeded {
            kind,
            limit,
            diag: self.diag(),
        }
    }

    fn on_sample(&mut self) {
        // One pass, one allocation (the sample's own delta vector, which
        // outlives this call inside the timeline): read each tenant's
        // running total, difference it against the previous sample, and
        // update the previous-sample slot in place.
        let mut delta: Vec<u64> = Vec::with_capacity(self.tenants.len());
        for (t, last) in self.last_sample_instr.iter_mut().enumerate() {
            let total = self.tenants[t].instr_total;
            delta.push(total - *last);
            *last = total;
        }
        let (queued, busy) = (self.walk.queued_len(), self.walk.busy_walkers());
        if !self.obs.is_off() {
            let (cycle, busy_per_tenant) = (self.now.0, self.walk.busy_per_tenant());
            self.obs.trace(TraceKind::Queue, || TraceEvent::QueueSample {
                cycle,
                queued: queued as u64,
                busy: busy as u64,
                busy_per_tenant: busy_per_tenant.iter().map(|&b| b as u32).collect(),
            });
            if let Some(m) = self.obs.metrics() {
                m.sample("queue_depth", cycle, queued as f64);
                m.sample("busy_walkers", cycle, busy as f64);
            }
        }
        self.timeline.push(Sample {
            cycle: self.now.0,
            queued_walks: queued,
            busy_walkers: busy,
            instructions_delta: delta,
        });
        let interval = self
            .cfg
            .sample_interval
            .expect("sample event only scheduled when sampling enabled");
        self.events.push(self.now + interval, Event::TakeSample);
    }

    fn on_warp_start(&mut self, sm: usize, warp: usize) {
        let tenant = self.sms[sm].tenant();
        if let Some(sc) = &self.scenario {
            if !sc.active[tenant.index()] {
                // Not resident (pre-arrival or departed): stay quiescent.
                // An arrival re-pushes this warp's `WarpStart`.
                return;
            }
        }
        let wi = self.wi(sm, warp);
        // Generate the next op directly into the warp's pending buffer —
        // `next_op_into` emits references already coalesced (distinct, in
        // first-appearance order), and reusing the buffer keeps this
        // per-instruction path allocation-free in steady state.
        let mut refs = std::mem::take(&mut self.warps[wi].pending);
        let next = if let Some(pl) = &mut self.pipeline {
            let local = (sm % self.sms_per_tenant) * self.cfg.warps_per_sm + warp;
            pl.next_op_into(tenant.index(), local, &mut refs)
        } else {
            self.warps[wi].stream.next_op_into(&mut refs)
        };
        let Some(compute) = next else {
            self.warps[wi].pending = refs;
            self.on_warp_finished(sm, warp, tenant);
            return;
        };
        let instructions = compute + 1;
        let end = self.sms[sm].issue_burst(self.now, instructions);
        let t = &mut self.tenants[tenant.index()];
        t.instr_this_exec += instructions;
        t.instr_total += instructions;

        debug_assert!(!refs.is_empty(), "memory op with no references");
        let w = &mut self.warps[wi];
        w.outstanding = refs.len();
        // Stash the refs by scheduling the memory issue; the refs travel in
        // the warp state to keep events small.
        w.pending = refs;
        self.events.push(
            end,
            Event::WarpMem {
                sm: sm as u16,
                warp: warp as u16,
            },
        );
    }

    fn on_warp_mem(&mut self, sm: usize, warp: usize) {
        if let Some(sc) = &self.scenario {
            if !sc.active[self.sms[sm].tenant().index()] {
                // The tenant departed between the compute burst's issue and
                // its memory phase; the references stay pending, frozen.
                return;
            }
        }
        let wi = self.wi(sm, warp);
        let refs = std::mem::take(&mut self.warps[wi].pending);
        let mut vpns = std::mem::take(&mut self.vpn_batch);
        let mut probed = std::mem::take(&mut self.tlb_batch);
        // All of a warp's coalesced references probe the L1 TLB this cycle;
        // resolve them as a batch, one tag pass per hit run. A probe never
        // mutates tags, but a *miss* can (its translation may return and
        // fill synchronously), so each batch ends at the first miss and the
        // remaining references re-batch after the miss is handled — the
        // per-reference state evolution is exactly `begin_ref`'s.
        let mut i = 0;
        while i < refs.len() {
            vpns.clear();
            vpns.extend(refs[i..].iter().map(|r| r.vpn));
            let consumed = self.sms[sm].probe_l1_tlb_run(&vpns, &mut probed);
            for k in 0..consumed {
                let r = refs[i + k];
                match probed[k] {
                    Some(ppn) => {
                        if let Some(m) = self.obs.metrics() {
                            m.inc("l1_tlb_hits", Some(self.sms[sm].tenant().0));
                        }
                        self.stage_data(sm, warp, r, ppn);
                    }
                    None => {
                        // The miss path can touch the memory system (walk
                        // dispatch fetches PTEs), so the staged data
                        // accesses must resolve first to keep the scalar
                        // order of memory-state mutations.
                        self.flush_staged();
                        self.after_l1_miss(sm, warp, r, false);
                    }
                }
            }
            i += consumed;
        }
        self.flush_staged();
        self.vpn_batch = vpns;
        self.tlb_batch = probed;
        // Hand the buffer back for the warp's next op (contents are stale
        // until `next_op_into` clears them).
        self.warps[wi].pending = refs;
    }

    /// Drives one coalesced reference through translation and then data.
    fn begin_ref(&mut self, sm: usize, warp: usize, r: MemRef, is_retry: bool) {
        let tenant = self.sms[sm].tenant();

        // L1 TLB.
        if let Some(ppn) = self.sms[sm].probe_l1_tlb(r.vpn) {
            if let Some(m) = self.obs.metrics() {
                m.inc("l1_tlb_hits", Some(tenant.0));
            }
            self.data_access(sm, warp, r, ppn, self.now);
            return;
        }
        self.after_l1_miss(sm, warp, r, is_retry);
    }

    /// The L1-TLB-miss tail of [`begin_ref`](Self::begin_ref): MSHR
    /// allocation, L2 TLB, and the walk-merge path.
    fn after_l1_miss(&mut self, sm: usize, warp: usize, r: MemRef, is_retry: bool) {
        let tenant = self.sms[sm].tenant();
        if let Some(m) = self.obs.metrics() {
            m.inc("l1_tlb_misses", Some(tenant.0));
        }
        if !self.sms[sm].try_take_tlb_mshr() {
            self.parked[tenant.index()].push_back((sm, warp, r));
            return;
        }

        // L2 TLB (shared or per-tenant private).
        let now = self.now;
        let l2_lat = self.cfg.l2_tlb_latency;
        let hit = self.l2_probe(tenant, r.vpn);
        if let Some(mask) = &mut self.mask {
            mask.on_l2_tlb_probe(tenant, hit.is_some(), now);
        }
        if !is_retry {
            let t = &mut self.tenants[tenant.index()];
            t.l2_demand_probes += 1;
            if hit.is_none() {
                t.l2_demand_misses += 1;
            }
        }
        if let Some(m) = self.obs.metrics() {
            let name = if hit.is_some() {
                "l2_tlb_hits"
            } else {
                "l2_tlb_misses"
            };
            m.inc(name, Some(tenant.0));
        }
        if let Some(ppn) = hit {
            self.sms[sm].fill_l1_tlb(r.vpn, ppn, now + l2_lat);
            self.sms[sm].release_tlb_mshr();
            self.data_access(sm, warp, r, ppn, now + l2_lat);
            return;
        }

        // L2 TLB miss: merge with an outstanding walk or start a new one.
        let key = (tenant, r.vpn);
        if let Some(waiters) = self.merge.get_mut(&key) {
            waiters.push((sm, warp, r));
            return;
        }
        if self.merge.len() >= self.cfg.merge_capacity {
            self.sms[sm].release_tlb_mshr();
            self.parked[tenant.index()].push_back((sm, warp, r));
            return;
        }
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: self.mask.as_ref(),
            obs: &mut self.obs,
        };
        match self
            .walk
            .try_enqueue(WalkRequest { tenant, vpn: r.vpn }, now + l2_lat, &mut ctx)
        {
            Ok(dispatched) => {
                let mut waiters = self.waiter_pool.pop().unwrap_or_default();
                waiters.push((sm, warp, r));
                self.merge.insert(key, waiters);
                if let Some(d) = dispatched {
                    self.events
                        .push(d.done_at, Event::WalkerDone { walker: d.walker });
                }
            }
            Err(_) => {
                self.sms[sm].release_tlb_mshr();
                self.parked[tenant.index()].push_back((sm, warp, r));
            }
        }
    }

    fn on_walker_done(&mut self, walker: WalkerId) {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: self.mask.as_ref(),
            obs: &mut self.obs,
        };
        let (done, next) = self.walk.on_walker_done(walker, self.now, &mut ctx);
        if let Some(d) = next {
            self.events
                .push(d.done_at, Event::WalkerDone { walker: d.walker });
        }

        // Fill the L2 TLB (MASK may veto the shared-TLB fill).
        let now = self.now;
        let may_fill = match &self.mask {
            Some(mask) => mask.try_take_fill_token(done.tenant),
            None => true,
        };
        let resident = self
            .scenario
            .as_ref()
            .map_or(true, |sc| sc.active[done.tenant.index()]);
        if may_fill && resident {
            self.l2_fill(done.tenant, done.vpn, done.ppn, now);
        }

        // Wake every waiter merged onto this walk. Their data accesses all
        // issue at `now`, so they stage into one batched memory-system pass;
        // the flush lands before the parked-translation retries below, which
        // can touch the memory system themselves.
        if let Some(mut waiters) = self.merge.remove(&(done.tenant, done.vpn)) {
            for &(sm, warp, r) in &waiters {
                self.sms[sm].fill_l1_tlb(r.vpn, done.ppn, now);
                self.sms[sm].release_tlb_mshr();
                self.stage_data(sm, warp, r, done.ppn);
            }
            self.flush_staged();
            waiters.clear();
            self.waiter_pool.push(waiters);
        }

        // The completion freed capacity (a queue slot, merge entry, and
        // MSHRs); wake a few parked translations, rotating across tenants so
        // one tenant's backlog cannot monopolize freed slots. Each retry
        // re-checks all resources and re-parks if still blocked.
        let n = self.parked.len();
        let mut woken = 0;
        let mut scanned = 0;
        while woken < 4 && scanned < 2 * n {
            let t = self.parked_rr % n;
            self.parked_rr = self.parked_rr.wrapping_add(1);
            scanned += 1;
            if let Some((sm, warp, r)) = self.parked[t].pop_front() {
                woken += 1;
                self.begin_ref(sm, warp, r, true);
            }
        }
    }

    /// Stages one already-translated reference's data phase at the current
    /// cycle. The L1 cache probes immediately — its state must evolve in
    /// reference order — and a hit completes on the spot (`now +
    /// l1_hit_latency`; a hit's completion cycle can never tie with a
    /// miss's, so pushing hits ahead of staged misses preserves the scalar
    /// pop order). Only L1 misses collect into `stage` for one
    /// [`MemSystem::access_batch`] pass at the next
    /// [`flush_staged`](Self::flush_staged). Bit-identical to calling
    /// [`data_access`](Self::data_access) per reference at `self.now`.
    fn stage_data(&mut self, sm: usize, warp: usize, r: MemRef, ppn: Ppn) {
        let line = LineAddr(ppn.0 * 32 + u64::from(r.line_in_page));
        if self.sms[sm].access_l1_cache(line) {
            let l1_lat = self.sms[sm].l1_hit_latency();
            self.events.push(
                self.now + l1_lat,
                Event::RefDone {
                    sm: sm as u16,
                    warp: warp as u16,
                },
            );
        } else {
            self.stage.push((sm as u16, warp as u16, line));
        }
    }

    /// Resolves the staged L1 misses: one batched L2/DRAM pass, then the
    /// `RefDone` completions push through the generic calendar (their
    /// DRAM latency varies) in reference order — the exact sequence the
    /// scalar path would have produced, since the staged misses' memory
    /// accesses were the next memory-system mutations due in any case.
    fn flush_staged(&mut self) {
        if self.stage.is_empty() {
            return;
        }
        let at = self.now;
        // `l1_hit_latency` comes from the one shared `SmConfig`, so a single
        // issue cycle covers every staged reference regardless of its SM.
        let l1_lat = self.sms[0].l1_hit_latency();
        if self.stage.len() == 1 {
            // One miss — the batch degenerates to one scalar access; skip
            // the `stage_lines`/`stage_out` round trip.
            let (sm, warp, line) = self.stage[0];
            self.stage.clear();
            let access = self.mem.access(line, at + l1_lat, AccessKind::Data);
            self.events
                .push(at + l1_lat + access.latency, Event::RefDone { sm, warp });
            return;
        }
        self.stage_lines.clear();
        self.stage_lines
            .extend(self.stage.iter().map(|&(_, _, line)| line));
        self.stage_out.clear();
        self.mem
            .access_batch(&self.stage_lines, at + l1_lat, AccessKind::Data, &mut self.stage_out);
        for (i, &(sm, warp, _)) in self.stage.iter().enumerate() {
            let lat = self.stage_out[i].latency;
            self.events
                .push(at + l1_lat + lat, Event::RefDone { sm, warp });
        }
        self.stage.clear();
    }

    /// The data phase of a reference: L1 cache, then shared L2/DRAM.
    fn data_access(&mut self, sm: usize, warp: usize, r: MemRef, ppn: Ppn, at: Cycle) {
        // `ppn` counts 4 KB frame granules (large pages reserve several),
        // so the page's base line is ppn * 32 regardless of page size.
        let line = LineAddr(ppn.0 * 32 + u64::from(r.line_in_page));
        let l1_lat = self.sms[sm].l1_hit_latency();
        let done_at = if self.sms[sm].access_l1_cache(line) {
            at + l1_lat
        } else {
            let access = self.mem.access(line, at + l1_lat, AccessKind::Data);
            at + l1_lat + access.latency
        };
        self.events.push(
            done_at,
            Event::RefDone {
                sm: sm as u16,
                warp: warp as u16,
            },
        );
    }

    fn on_ref_done(&mut self, sm: usize, warp: usize) {
        let wi = self.wi(sm, warp);
        let w = &mut self.warps[wi];
        debug_assert!(w.outstanding > 0, "ref completion without outstanding refs");
        w.outstanding -= 1;
        if w.outstanding == 0 {
            // Zero-latency re-issue: `self.now` is monotone, so this rides
            // the dedicated fast lane instead of the calendar insert.
            self.events.push_lane(
                self.lane_start,
                self.now,
                Event::WarpStart {
                    sm: sm as u16,
                    warp: warp as u16,
                },
            );
        }
    }

    /// A warp exhausted its execution budget.
    fn on_warp_finished(&mut self, sm: usize, warp: usize, tenant: TenantId) {
        let wi = self.wi(sm, warp);
        let w = &mut self.warps[wi];
        debug_assert!(!w.finished, "warp finished twice");
        w.finished = true;
        let t = &mut self.tenants[tenant.index()];
        t.warps_finished += 1;
        if t.warps_finished < t.warps_total {
            return;
        }

        // Execution complete for this tenant.
        let first_completion = t.completed.is_empty();
        t.completed.push((t.instr_this_exec, self.now));
        t.instr_this_exec = 0;
        t.warps_finished = 0;
        t.launch_cycle = self.now;
        if let Some(sc) = &self.scenario {
            debug_assert!(sc.active[tenant.index()], "finished while not resident");
            if first_completion {
                self.resolve_tenant(tenant.index());
                if self.stopped {
                    return;
                }
            }
        } else if first_completion {
            self.tenants_done += 1;
            if self.tenants_done == self.tenants.len() {
                self.stopped = true;
                return;
            }
        }

        // Relaunch (the methodology: keep contention alive until every
        // tenant completes at least once). Pipelined, the next epoch was
        // generated while this one simulated; swap it in for the whole
        // tenant instead of relaunching each inline stream.
        if let Some(pl) = &mut self.pipeline {
            pl.advance_epoch(tenant.index());
        }
        let inline = self.pipeline.is_none();
        let sms_per_tenant = self.sms_per_tenant;
        let sm_base = tenant.index() * sms_per_tenant;
        for s in sm_base..sm_base + sms_per_tenant {
            for wi in 0..self.cfg.warps_per_sm {
                let w = &mut self.warps[s * self.cfg.warps_per_sm + wi];
                w.finished = false;
                if inline {
                    w.stream.relaunch();
                }
                self.events.push(
                    self.now,
                    Event::WarpStart {
                        sm: s as u16,
                        warp: wi as u16,
                    },
                );
            }
        }
    }

    /// Gathers final metrics.
    fn collect(mut self) -> SimResult {
        let end = self.now;
        let events_processed = self.events_processed;
        self.obs.trace(TraceKind::Meta, || TraceEvent::RunEnd {
            cycle: end.0,
            events: events_processed,
        });
        self.obs.flush();
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let tid = TenantId(i as u8);
                let (instr, last_cycle) = t
                    .completed
                    .iter()
                    .fold((0u64, Cycle::ZERO), |(si, _), &(n, c)| (si + n, c));
                let ipc = if last_cycle.0 > 0 {
                    instr as f64 / last_cycle.0 as f64
                } else {
                    0.0
                };
                let thread_instr = t.instr_total as f64 * 32.0;
                let mpmi = if thread_instr > 0.0 {
                    t.l2_demand_misses as f64 / thread_instr * 1e6
                } else {
                    0.0
                };
                let stats = self.walk.stats();
                let tlb_share = if let Some(arena) = &self.arena {
                    arena.share_of(tid, end)
                } else if self.cfg.l2_tlb_private {
                    // Private TLBs: the tenant holds its whole TLB.
                    1.0
                } else {
                    self.l2_tlbs[0].share_of(tid, end)
                };
                TenantResult {
                    app: t.app,
                    ipc,
                    instructions: instr,
                    completed_executions: t.completed.len() as u32,
                    mpmi,
                    l2_tlb_misses: t.l2_demand_misses,
                    mean_walk_latency: stats.mean_latency(tid),
                    mean_interleave: stats.mean_interleave(tid),
                    stolen_fraction: stats.stolen_fraction(tid),
                    pw_share: self.walk.walker_share_of(tid, end),
                    tlb_share,
                }
            })
            .collect();
        let churn = self.scenario.as_ref().map(|sc| {
            let stats = self.walk.stats();
            ChurnReport {
                tenants: (0..self.tenants.len())
                    .map(|t| {
                        let arrived = sc.arrived_at[t];
                        let departed = sc.departed_at[t];
                        let lifetime_cycles = match (arrived, departed) {
                            (Some(a), Some(d)) => d - a,
                            (Some(a), None) => end.0.saturating_sub(a),
                            _ => 0,
                        };
                        TenantChurn {
                            arrived,
                            departed,
                            evicted: sc.evicted[t],
                            slo_target: sc.slo_target[t],
                            slo_checks: sc.slo_checks[t],
                            slo_met: sc.slo_met[t],
                            throttled_checks: sc.throttled_checks[t],
                            cancelled_walks: stats.cancelled[t],
                            lifetime_instructions: if departed.is_some() {
                                sc.lifetime_instr[t]
                            } else {
                                self.tenants[t].instr_total
                            },
                            lifetime_cycles,
                        }
                    })
                    .collect(),
                evictions: sc.evictions,
                repartitions: sc.repartitions,
                throttles: sc.throttles,
            }
        });
        SimResult {
            tenants,
            cycles: end.0,
            events: self.events_processed,
            timeline: self.timeline,
            churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyPreset;

    /// Builds a simulation of calibrated apps through the supported
    /// profile-based construction path.
    fn sim(cfg: GpuConfig, apps: &[AppId], seed: u64) -> Simulation {
        let profiles: Vec<AppProfile> = apps.iter().map(|a| a.profile()).collect();
        Simulation::with_profiles(cfg, &profiles, seed, Observer::off(), StreamPipelining::Off)
    }

    fn small_cfg() -> GpuConfig {
        GpuConfig::default()
            .with_n_sms(4)
            .with_warps_per_sm(4)
            .with_instructions_per_warp(400)
    }

    #[test]
    fn single_tenant_completes() {
        let r = sim(small_cfg(), &[AppId::Mm], 1).run();
        assert_eq!(r.tenants.len(), 1);
        assert_eq!(r.tenants[0].completed_executions, 1);
        assert!(r.tenants[0].ipc > 0.0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn two_tenants_both_complete() {
        let r = sim(small_cfg(), &[AppId::Gups, AppId::Mm], 1).run();
        assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
    }

    #[test]
    fn deterministic_replay() {
        let a = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 7).run();
        let b = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 7).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 1).run();
        let b = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 2).run();
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn light_app_outruns_heavy_app_standalone() {
        let light = sim(small_cfg(), &[AppId::Mm], 3).run();
        let heavy = sim(small_cfg(), &[AppId::Gups], 3).run();
        assert!(
            light.tenants[0].ipc > heavy.tenants[0].ipc,
            "MM {} vs GUPS {}",
            light.tenants[0].ipc,
            heavy.tenants[0].ipc
        );
    }

    #[test]
    fn heavy_app_misses_more() {
        let light = sim(small_cfg(), &[AppId::Mm], 3).run();
        let heavy = sim(small_cfg(), &[AppId::Gups], 3).run();
        assert!(heavy.tenants[0].mpmi > light.tenants[0].mpmi * 10.0);
    }

    #[test]
    fn dws_steals_in_asymmetric_pair() {
        let cfg = small_cfg().with_preset(PolicyPreset::Dws);
        let r = sim(cfg, &[AppId::Gups, AppId::Mm], 1).run();
        // The heavy tenant's walks get stolen by the light tenant's walkers.
        assert!(
            r.tenants[0].stolen_fraction > 0.0,
            "no stealing observed: {:?}",
            r.tenants[0]
        );
    }

    #[test]
    fn relaunch_keeps_contention_alive() {
        // MM finishes long before GUPS; it must relaunch (>1 execution).
        // A longer budget makes GUPS's memory-bound tail dominate.
        let cfg = small_cfg().with_instructions_per_warp(2_000);
        let r = sim(cfg, &[AppId::Gups, AppId::Mm], 1).run();
        assert!(
            r.tenants[1].completed_executions > 1,
            "light tenant should relaunch: {:?}",
            r.tenants[1].completed_executions
        );
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let r = sim(small_cfg(), &[AppId::Gups, AppId::Blk], 5).run();
        let pw: f64 = r.tenants.iter().map(|t| t.pw_share).sum();
        let tlb: f64 = r.tenants.iter().map(|t| t.tlb_share).sum();
        assert!(pw <= 1.0 + 1e-9, "pw share sum {pw}");
        assert!(tlb <= 1.0 + 1e-9, "tlb share sum {tlb}");
        assert!(pw > 0.0);
        assert!(tlb > 0.0);
    }

    #[test]
    fn baseline_interleaving_asymmetric_pair() {
        let r = sim(small_cfg(), &[AppId::Gups, AppId::Hs], 1).run();
        // The light tenant's walks wait behind many heavy walks.
        assert!(
            r.tenants[1].mean_interleave > r.tenants[0].mean_interleave,
            "light should interleave more: {:?} vs {:?}",
            r.tenants[1].mean_interleave,
            r.tenants[0].mean_interleave
        );
    }

    #[test]
    fn timeline_sampling_records_snapshots() {
        let cfg = small_cfg().with_sample_interval(1_000);
        let r = sim(cfg, &[AppId::Sad, AppId::Mm], 1).run();
        assert!(!r.timeline.is_empty());
        // Samples are evenly spaced and cover the run.
        for (i, s) in r.timeline.iter().enumerate() {
            assert_eq!(s.cycle, 1_000 * (i as u64 + 1));
            assert_eq!(s.instructions_delta.len(), 2);
            assert!(s.busy_walkers <= 16);
        }
        let last = r.timeline.last().unwrap();
        assert!(r.cycles - last.cycle <= 1_000);
        // Instruction deltas sum to (at most) the total issued.
        let total: u64 = r.timeline.iter().map(|s| s.instructions_delta[1]).sum();
        assert!(total > 0);
    }

    #[test]
    fn sampling_off_means_empty_timeline() {
        let r = sim(small_cfg(), &[AppId::Mm], 1).run();
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn unlimited_budget_matches_plain_run() {
        let a = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 7).run();
        let b = sim(small_cfg(), &[AppId::Sad, AppId::Hs], 7)
            .run_budgeted(&RunBudget::unlimited())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn event_budget_aborts_with_partial_diagnostic() {
        let budget = RunBudget::unlimited().with_max_events(500);
        let err = sim(small_cfg(), &[AppId::Gups, AppId::Mm], 1)
            .run_budgeted(&budget)
            .unwrap_err();
        let SimError::BudgetExceeded { kind, limit, diag } = err else {
            panic!("expected a budget abort, got {err}");
        };
        assert_eq!(kind, BudgetKind::Events);
        assert_eq!(limit, 500);
        assert_eq!(diag.events, 500);
        assert_eq!(diag.tenants_total, 2);
        assert!(diag.tenants_done < 2, "run should have been cut short");
    }

    #[test]
    fn cycle_budget_aborts_deterministically() {
        let budget = RunBudget::unlimited().with_max_cycles(2_000);
        let run = || {
            sim(small_cfg(), &[AppId::Gups, AppId::Mm], 1)
                .run_budgeted(&budget)
                .unwrap_err()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "budget aborts must replay bit-identically");
        let SimError::BudgetExceeded { kind, diag, .. } = a else {
            panic!("expected a budget abort, got {a}");
        };
        assert_eq!(kind, BudgetKind::Cycles);
        assert!(diag.cycles > 2_000, "aborted at cycle {}", diag.cycles);
    }

    #[test]
    fn wall_sample_boundaries_are_64ki_multiples_and_skipproof() {
        // Trigger points: 64 Ki, 128 Ki, ... — never 0, so a fresh count
        // does not sample before any event has run.
        assert_eq!(next_wall_boundary(0), 65_536);
        assert_eq!(next_wall_boundary(1), 65_536);
        assert_eq!(next_wall_boundary(65_535), 65_536);
        assert_eq!(next_wall_boundary(65_536), 131_072);
        assert_eq!(next_wall_boundary(131_071), 131_072);
        assert_eq!(next_wall_boundary(131_072), 196_608);

        // Stepping one event at a time triggers exactly at the multiples.
        let mut next = next_wall_boundary(0);
        let mut triggers = Vec::new();
        for count in 1..=131_073u64 {
            if count >= next {
                triggers.push(count);
                next = next_wall_boundary(count);
            }
        }
        assert_eq!(triggers, vec![65_536, 131_072]);

        // Batch-granularity counting can jump past a boundary; the
        // comparison still catches every crossed window exactly once.
        let mut count = 0u64;
        let mut next = next_wall_boundary(count);
        let mut samples = 0u64;
        for step in [1u64, 65_535, 1, 70_000, 200_000, 3, 65_536] {
            count += step;
            if count >= next {
                samples += 1;
                next = next_wall_boundary(count);
                assert!(next > count, "boundary must be strictly ahead");
                assert_eq!(next % WALL_SAMPLE_STRIDE, 0);
            }
        }
        assert_eq!(
            samples, 4,
            "crossings at 65_536, 135_537, 335_537, and 401_076"
        );
    }

    #[test]
    fn generous_budget_does_not_perturb_the_run() {
        let plain = sim(small_cfg(), &[AppId::Gups, AppId::Mm], 3).run();
        let budgeted = sim(small_cfg(), &[AppId::Gups, AppId::Mm], 3)
            .run_budgeted(&RunBudget::unlimited().with_max_events(plain.events * 10))
            .unwrap();
        assert_eq!(plain, budgeted);
    }

    // ---- dynamic-tenancy scenarios ------------------------------------

    use crate::build::SimulationBuilder;
    use crate::scenario::{ScenarioSpec, SloPolicy};

    fn churn_builder() -> SimulationBuilder {
        SimulationBuilder::new()
            .n_sms(4)
            .warps_per_sm(4)
            .instructions_per_warp(400)
            .preset(PolicyPreset::Dws)
            .seed(1)
    }

    #[test]
    fn late_arrival_launches_and_completes() {
        let spec = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(5_000, AppId::Gups);
        let r = churn_builder().scenario(spec).build().run();
        assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
        let churn = r.churn.unwrap();
        assert_eq!(churn.tenants[0].arrived, Some(0));
        assert_eq!(churn.tenants[1].arrived, Some(5_000));
        assert!(churn.repartitions >= 1, "the arrival re-splits the walkers");
        assert!(churn.tenants[1].lifetime_cycles > 0);
        assert!(churn.tenants[1].lifetime_instructions > 0);
    }

    #[test]
    fn departure_cancels_and_resolves() {
        // GUPS departs mid-run without completing; MM finishes normally and
        // the run stops without waiting on the departed tenant.
        let spec = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(0, AppId::Gups)
            .depart(3_000, 1);
        let r = churn_builder().scenario(spec).build().run();
        let churn = r.churn.as_ref().unwrap();
        assert_eq!(churn.tenants[1].departed, Some(3_000));
        assert!(!churn.tenants[1].evicted);
        assert_eq!(churn.tenants[1].lifetime_cycles, 3_000);
        assert!(churn.tenants[1].lifetime_instructions > 0);
        assert_eq!(
            r.tenants[1].completed_executions, 0,
            "left before finishing"
        );
        assert!(r.tenants[0].completed_executions >= 1);
    }

    #[test]
    fn scenario_replay_is_deterministic() {
        let spec = || {
            ScenarioSpec::new()
                .arrive(0, AppId::Mm)
                .arrive(2_000, AppId::Gups)
                .depart(30_000, 1)
                .slo_target(0, 600)
                .slo_policy(SloPolicy {
                    check_interval: 5_000,
                    evict_after: 3,
                    min_samples: 16,
                })
        };
        let run = || churn_builder().scenario(spec()).build().run();
        assert_eq!(run(), run());
    }

    #[test]
    fn slo_violation_throttles_then_evicts_the_aggressor() {
        // GUPS's p99 walk-latency target of 1 cycle is unmeetable, so every
        // counted check violates; the controller throttles the other
        // resident (MM) after the first and evicts it after the second.
        let spec = ScenarioSpec::new()
            .arrive(0, AppId::Gups)
            .arrive(0, AppId::Mm)
            .slo_target(0, 1)
            .slo_policy(SloPolicy {
                check_interval: 2_000,
                evict_after: 2,
                min_samples: 8,
            });
        let r = churn_builder().scenario(spec).build().run();
        let churn = r.churn.unwrap();
        assert_eq!(churn.evictions, 1);
        assert!(churn.tenants[1].evicted, "MM evicted: {churn:?}");
        assert!(churn.tenants[1].departed.is_some());
        assert!(churn.throttles >= 1, "a throttle precedes the eviction");
        assert!(churn.tenants[1].throttled_checks >= 1);
        assert!(churn.tenants[0].slo_checks >= 2);
        assert_eq!(churn.tenants[0].slo_met, 0, "1-cycle target unmeetable");
        assert!(churn.tenants[0].slo_compliance() == 0.0);
        assert!(r.tenants[0].completed_executions >= 1, "victim completes");
    }

    #[test]
    fn quiet_victim_cannot_pin_a_throttle() {
        // An SLO victim that stops walking produces no signal; its
        // violation streak must decay so the throttled aggressor resumes
        // and the run completes rather than spinning to max_cycles.
        let spec = ScenarioSpec::new()
            .arrive(0, AppId::Mm)
            .arrive(0, AppId::Gups)
            .slo_target(0, 1)
            .slo_policy(SloPolicy {
                check_interval: 2_000,
                evict_after: u32::MAX, // never evict: throttling only
                min_samples: 8,
            });
        let r = churn_builder().scenario(spec).build().run();
        assert!(
            r.tenants.iter().all(|t| t.completed_executions >= 1),
            "both tenants must finish: {:?}",
            r.churn
        );
        let churn = r.churn.unwrap();
        assert_eq!(churn.evictions, 0);
    }

    #[test]
    fn explicit_repartition_applies() {
        let spec = ScenarioSpec::new()
            .arrive(0, AppId::Gups)
            .arrive(0, AppId::Mm)
            .repartition(1_000, vec![true, false])
            .repartition(4_000, vec![true, true]);
        let r = churn_builder().scenario(spec).build().run();
        let churn = r.churn.unwrap();
        assert_eq!(churn.repartitions, 2);
        assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
    }

    #[test]
    fn four_tenants_run() {
        let cfg = GpuConfig::default()
            .with_n_sms(4)
            .with_warps_per_sm(2)
            .with_instructions_per_warp(300)
            .with_preset(PolicyPreset::Dws);
        let r = sim(cfg, &[AppId::Gups, AppId::Mm, AppId::Tds, AppId::Hs], 1).run();
        assert_eq!(r.tenants.len(), 4);
        assert!(r.tenants.iter().all(|t| t.completed_executions >= 1));
    }
}
