//! Differential stress test: the optimized partitioned walk scheduler
//! (bitmap FWA/TWM/WTM + arena queues) against the reference scan-based
//! implementation, across every policy preset.
//!
//! Both subsystems are driven in lockstep with identical randomized
//! multi-tenant traffic — bursty enqueues, queue overflow, completions in
//! event order, mid-run repartitions — and must agree on *everything*:
//! every accept/reject, every dispatch (walker, completion cycle), every
//! steal decision, every completed walk, and all externally visible queue
//! state after every step. This is the `BinaryHeapQueue` pattern from the
//! event-queue overhaul applied to the walk scheduler.

use walksteal_mem::{MemSystem, MemSystemConfig};
use walksteal_multitenant::{GpuConfig, PolicyPreset};
use walksteal_sim_core::{Cycle, Observer, SimRng, TenantId, Vpn};
use walksteal_vm::walk::WalkContext;
use walksteal_vm::{
    DispatchedWalk, FrameAlloc, PageSize, PageTable, SchedulerImpl, WalkRequest, WalkSubsystem,
};

/// One side of the lockstep pair: a subsystem plus the (deterministic)
/// machinery it dispatches against.
struct Side {
    ws: WalkSubsystem,
    page_tables: Vec<PageTable>,
    frames: FrameAlloc,
    mem: MemSystem,
    obs: Observer,
}

impl Side {
    fn new(cfg: &GpuConfig, imp: SchedulerImpl) -> Side {
        Side {
            ws: WalkSubsystem::with_scheduler_impl(cfg.walk.clone(), imp),
            page_tables: (0..cfg.walk.n_tenants)
                .map(|t| PageTable::new(TenantId(t as u8), PageSize::Small4K))
                .collect(),
            frames: FrameAlloc::new(),
            mem: MemSystem::new(MemSystemConfig::default()),
            obs: Observer::off(),
        }
    }

    fn enqueue(&mut self, req: WalkRequest, now: Cycle) -> Result<Option<DispatchedWalk>, walksteal_vm::WalkQueueFull> {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.try_enqueue(req, now, &mut ctx)
    }

    fn complete(&mut self, d: DispatchedWalk) -> (walksteal_vm::CompletedWalk, Option<DispatchedWalk>) {
        let mut ctx = WalkContext {
            page_tables: &mut self.page_tables,
            frames: &mut self.frames,
            mem: &mut self.mem,
            mask: None,
            obs: &mut self.obs,
        };
        self.ws.on_walker_done(d.walker, d.done_at, &mut ctx)
    }
}

/// Asserts every externally visible piece of scheduler state matches.
fn assert_state_eq(a: &Side, b: &Side, preset: PolicyPreset, step: usize) {
    let at = format!("{preset} step {step}");
    assert_eq!(a.ws.queued_len(), b.ws.queued_len(), "queued_len @ {at}");
    assert_eq!(
        a.ws.busy_walkers(),
        b.ws.busy_walkers(),
        "busy_walkers @ {at}"
    );
    assert_eq!(
        a.ws.busy_per_tenant(),
        b.ws.busy_per_tenant(),
        "busy_per_tenant @ {at}"
    );
    assert_eq!(
        a.ws.walker_owners(),
        b.ws.walker_owners(),
        "walker_owners @ {at}"
    );
}

/// Asserts the accumulated per-tenant statistics match field by field.
fn assert_stats_eq(a: &Side, b: &Side, preset: PolicyPreset) {
    let (sa, sb) = (a.ws.stats(), b.ws.stats());
    assert_eq!(sa.enqueued, sb.enqueued, "{preset}: enqueued");
    assert_eq!(sa.completed, sb.completed, "{preset}: completed");
    assert_eq!(sa.stolen, sb.stolen, "{preset}: stolen (steal decisions)");
    assert_eq!(sa.total_latency, sb.total_latency, "{preset}: latency");
    assert_eq!(
        sa.total_queue_wait, sb.total_queue_wait,
        "{preset}: queue wait"
    );
    assert_eq!(
        sa.total_interleave, sb.total_interleave,
        "{preset}: interleave"
    );
    assert_eq!(sa.rejected, sb.rejected, "{preset}: rejected");
}

/// Drives both implementations through `steps` lockstep rounds of random
/// traffic. Each round advances time, completes every due walk on both
/// sides (asserting identical completions and follow-on dispatches), then
/// fires a random burst of enqueues (asserting identical accept/reject and
/// dispatch decisions). `repartition_at` optionally flips tenant 1 inactive
/// and back, exercising the WTM re-split path mid-traffic.
fn drive(
    cfg: &GpuConfig,
    preset: PolicyPreset,
    seed: u64,
    steps: usize,
    repartition: bool,
) -> (u64, u64) {
    let mut a = Side::new(cfg, SchedulerImpl::Optimized);
    let mut b = Side::new(cfg, SchedulerImpl::Reference);
    let n_tenants = cfg.walk.n_tenants;
    let mut rng = SimRng::new(seed);
    let mut now = Cycle::ZERO;
    // Outstanding dispatches, identical on both sides by induction; kept
    // sorted by completion cycle (stable, so ties complete in dispatch
    // order — matching the simulator's FIFO event queue).
    let mut outstanding: Vec<DispatchedWalk> = Vec::new();

    for step in 0..steps {
        now += 1 + rng.next_below(7);

        // Complete everything due by `now`, in event order.
        while let Some(&d) = outstanding.first() {
            if d.done_at > now {
                break;
            }
            outstanding.remove(0);
            let (ca, na) = a.complete(d);
            let (cb, nb) = b.complete(d);
            assert_eq!(ca, cb, "{preset}: completed walk diverged at step {step}");
            assert_eq!(na, nb, "{preset}: follow-on dispatch diverged at step {step}");
            if let Some(n) = na {
                let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
                outstanding.insert(pos, n);
            }
        }

        if repartition && step == steps / 2 {
            let mut active = vec![true; n_tenants];
            active[n_tenants - 1] = false;
            a.ws.set_active_tenants(&active);
            b.ws.set_active_tenants(&active);
        }
        if repartition && step == steps / 2 + steps / 4 {
            a.ws.set_active_tenants(&vec![true; n_tenants]);
            b.ws.set_active_tenants(&vec![true; n_tenants]);
        }

        // A bursty trickle of requests: enough pressure to overflow the
        // 192-entry queue and trigger rejects, steals, and sibling pulls.
        // Traffic alternates between symmetric phases and solo phases where
        // only tenant 0 sends — steals require a tenant's PEND_WALKS
        // (including in-service walks) to reach zero while another tenant's
        // queues are loaded, which steady symmetric traffic never produces.
        let solo_phase = (step / 500) % 3 == 1;
        let burst = rng.next_below(5);
        for _ in 0..burst {
            let t = if solo_phase {
                TenantId(0)
            } else {
                TenantId(rng.next_below(n_tenants as u64) as u8)
            };
            // A smallish per-tenant working set so the PWC and page tables
            // see reuse as well as fresh subtrees.
            let vpn = Vpn((u64::from(t.0) << 32) | rng.next_below(50_000));
            let req = WalkRequest { tenant: t, vpn };
            let ra = a.enqueue(req, now);
            let rb = b.enqueue(req, now);
            assert_eq!(ra, rb, "{preset}: enqueue decision diverged at step {step}");
            if let Ok(Some(d)) = ra {
                let pos = outstanding.partition_point(|o| o.done_at <= d.done_at);
                outstanding.insert(pos, d);
            }
        }

        assert_state_eq(&a, &b, preset, step);
    }

    // Drain every outstanding walk so the full lifecycle is compared.
    while let Some(d) = outstanding.first().copied() {
        outstanding.remove(0);
        let (ca, na) = a.complete(d);
        let (cb, nb) = b.complete(d);
        assert_eq!(ca, cb, "{preset}: completed walk diverged during drain");
        assert_eq!(na, nb, "{preset}: drain dispatch diverged");
        if let Some(n) = na {
            let pos = outstanding.partition_point(|o| o.done_at <= n.done_at);
            outstanding.insert(pos, n);
        }
    }
    assert_eq!(a.ws.busy_walkers(), 0, "{preset}: walks left in flight");
    assert_stats_eq(&a, &b, preset);
    let stats = a.ws.stats();
    (stats.stolen.iter().sum(), stats.rejected.iter().sum())
}

fn two_tenant_config(preset: PolicyPreset) -> GpuConfig {
    GpuConfig::default().for_tenants(2).with_preset(preset)
}

#[test]
fn all_presets_match_reference_two_tenants() {
    for preset in PolicyPreset::ALL {
        let cfg = two_tenant_config(preset);
        let (stolen, rejected) = drive(&cfg, preset, 0xD1FF, 4_000, false);
        // The comparison must cover the paths that matter: under DWS the
        // traffic has to provoke actual steals and queue-full rejects, or
        // the whole lockstep run proved nothing about them.
        if preset == PolicyPreset::Dws {
            assert!(stolen > 0, "traffic produced no steals under DWS");
            assert!(rejected > 0, "traffic produced no queue-full rejects");
        }
    }
}

#[test]
fn partitioned_presets_match_reference_four_tenants() {
    for preset in [
        PolicyPreset::StaticPartition,
        PolicyPreset::Dws,
        PolicyPreset::DwsPlusPlus,
        PolicyPreset::DwsPlusPlusConservative,
        PolicyPreset::DwsPlusPlusAggressive,
    ] {
        let cfg = GpuConfig::default()
            .with_n_sms(32)
            .for_tenants(4)
            .with_preset(preset);
        drive(&cfg, preset, 0xBEEF, 3_000, false);
    }
}

#[test]
fn repartition_mid_traffic_matches_reference() {
    for preset in [PolicyPreset::Dws, PolicyPreset::DwsPlusPlus] {
        let cfg = two_tenant_config(preset);
        drive(&cfg, preset, 0xACE5, 4_000, true);
    }
}

#[test]
fn relaxed_pend_check_matches_reference() {
    // The ablation flag flips the steal-eligibility test; cover both.
    for preset in [PolicyPreset::Dws, PolicyPreset::DwsPlusPlus] {
        let mut cfg = two_tenant_config(preset);
        cfg.walk.strict_pend_check = false;
        drive(&cfg, preset, 0xFADE, 4_000, false);
    }
}

#[test]
fn many_seeds_smoke_dws_plus_plus() {
    // Shorter runs over many seeds to vary the interleavings the epoch
    // logic sees (QUEUE_THRES, no-consecutive-steals, DIFF_THRES).
    for seed in 0..8u64 {
        let cfg = two_tenant_config(PolicyPreset::DwsPlusPlus);
        drive(&cfg, PolicyPreset::DwsPlusPlus, 1_000 + seed, 1_200, false);
    }
}
