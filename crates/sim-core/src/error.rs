//! Structured errors and run budgets for the simulation kernel.
//!
//! The run path used to be panic-on-failure: a mis-configured simulation
//! could spin forever, and the only stop was a hard-coded cycle ceiling.
//! [`RunBudget`] bounds a run along three independent axes — events,
//! cycles, and wall-clock time — and a blown budget surfaces as a
//! [`SimError::BudgetExceeded`] carrying a [`RunDiag`] snapshot of how far
//! the run got, so the caller can report a partial-result diagnostic
//! instead of hanging or dying.

use std::fmt;
use std::time::Duration;

/// Which budget axis a run blew through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// Discrete events processed.
    Events,
    /// Simulated cycles elapsed.
    Cycles,
    /// Host wall-clock time elapsed.
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "events",
            BudgetKind::Cycles => "cycles",
            BudgetKind::WallClock => "wall-clock",
        })
    }
}

/// Watchdog limits on one simulation run. `None` on an axis disables it.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::RunBudget;
///
/// let b = RunBudget::unlimited().with_max_events(1_000_000);
/// assert!(!b.is_unlimited());
/// assert_eq!(b.max_events, Some(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Abort after this many discrete events.
    pub max_events: Option<u64>,
    /// Abort once simulated time passes this cycle.
    pub max_cycles: Option<u64>,
    /// Abort once this much host time has elapsed.
    pub max_wall: Option<Duration>,
}

impl RunBudget {
    /// No limits on any axis (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Limits discrete events.
    #[must_use]
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Limits simulated cycles.
    #[must_use]
    pub fn with_max_cycles(mut self, n: u64) -> Self {
        self.max_cycles = Some(n);
        self
    }

    /// Limits host wall-clock time.
    #[must_use]
    pub fn with_max_wall(mut self, d: Duration) -> Self {
        self.max_wall = Some(d);
        self
    }

    /// Whether every axis is unlimited (budget checks can be skipped).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_cycles.is_none() && self.max_wall.is_none()
    }
}

/// Snapshot of how far a run got when it was aborted — the partial-result
/// diagnostic attached to [`SimError::BudgetExceeded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDiag {
    /// Discrete events processed before the abort.
    pub events: u64,
    /// Simulated cycle reached.
    pub cycles: u64,
    /// Tenants that had completed at least one execution.
    pub tenants_done: usize,
    /// Total tenants in the run.
    pub tenants_total: usize,
}

impl fmt::Display for RunDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, cycle {}, {}/{} tenants complete",
            self.events, self.cycles, self.tenants_done, self.tenants_total
        )
    }
}

/// Why a configuration was rejected before any simulation started.
///
/// Construction helpers like `GpuConfig::try_for_tenants` return these
/// instead of panicking, so a CLI-supplied tenant count surfaces as a
/// diagnostic (and a non-zero exit code) rather than a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A simulation was requested with zero tenants.
    NoTenants,
    /// A per-GPU resource cannot be split evenly among the tenants.
    UnevenSplit {
        /// What would have to split ("SMs", "walkers").
        resource: &'static str,
        /// How many of it the configuration has.
        count: usize,
        /// The requested tenant count.
        n_tenants: usize,
    },
    /// A scenario timeline failed validation (depart-before-arrive,
    /// out-of-range tenant index, a window with no resident tenant, ...).
    Scenario(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoTenants => write!(f, "need at least one tenant"),
            ConfigError::UnevenSplit {
                resource,
                count,
                n_tenants,
            } => write!(
                f,
                "{count} {resource} do not divide evenly among {n_tenants} tenants"
            ),
            ConfigError::Scenario(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Structured failure of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The run blew through a [`RunBudget`] axis; `diag` records how far it
    /// got so callers can report a partial result instead of nothing.
    BudgetExceeded {
        /// The axis that tripped.
        kind: BudgetKind,
        /// The configured limit on that axis (events, cycles, or
        /// milliseconds for wall-clock).
        limit: u64,
        /// Where the run was when the watchdog fired.
        diag: RunDiag,
    },
    /// The configuration was rejected before the run started.
    InvalidConfig(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded { kind, limit, diag } => {
                let unit = match kind {
                    BudgetKind::Events => "events",
                    BudgetKind::Cycles => "cycles",
                    BudgetKind::WallClock => "ms",
                };
                write!(f, "{kind} budget exceeded (limit {limit} {unit}; at {diag})")
            }
            SimError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        assert!(RunBudget::default().is_unlimited());
        assert!(RunBudget::unlimited().is_unlimited());
    }

    #[test]
    fn builders_set_axes() {
        let b = RunBudget::unlimited()
            .with_max_events(10)
            .with_max_cycles(20)
            .with_max_wall(Duration::from_millis(30));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_events, Some(10));
        assert_eq!(b.max_cycles, Some(20));
        assert_eq!(b.max_wall, Some(Duration::from_millis(30)));
    }

    #[test]
    fn error_display_names_the_axis() {
        let e = SimError::BudgetExceeded {
            kind: BudgetKind::Events,
            limit: 100,
            diag: RunDiag {
                events: 100,
                cycles: 7,
                tenants_done: 0,
                tenants_total: 2,
            },
        };
        let s = e.to_string();
        assert!(s.contains("events budget exceeded"), "{s}");
        assert!(s.contains("0/2 tenants"), "{s}");
    }
}
