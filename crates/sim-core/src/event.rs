//! A deterministic discrete-event queue.
//!
//! Simulators schedule work "at cycle N" and repeatedly pop the earliest
//! pending event. Correct replay requires a *total* order: when several
//! events land on the same cycle they must come back in insertion order
//! (FIFO), or two runs of the same seed could diverge.
//!
//! [`EventQueue`] is a bucketed **calendar queue**: a ring of per-cycle FIFO
//! buckets covering a sliding window of upcoming cycles, with a binary-heap
//! fallback for the rare event scheduled beyond the window. Simulation
//! events are overwhelmingly near-future (compute bursts, cache and DRAM
//! latencies — all far shorter than the window), so push and pop are
//! amortized O(1) instead of the O(log n) a heap pays per memory op.
//! [`BinaryHeapQueue`] is the previous heap-based implementation, kept as a
//! differential-testing reference model and benchmark baseline.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::ids::Cycle;

/// Cycles covered by the bucket ring (must be a power of two). Events up to
/// this far in the future take the O(1) bucket path; anything beyond spills
/// to the heap. 4096 comfortably covers every latency in the simulator
/// (DRAM round trips, full page walks, timeline sampling intervals).
const BUCKETS: usize = 4096;

/// An event in the heap fallback, ordered by `(at, seq)` so the heap pops
/// the lowest cycle first and FIFO within a cycle.
#[derive(Debug, Clone)]
struct FarEntry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for FarEntry<T> {}

impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (cycle, seq) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A calendar event queue with deterministic FIFO ordering within a cycle.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), "third");
/// q.push(Cycle(1), "first");
/// q.push(Cycle(3), "also third");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "first")));
/// assert_eq!(q.pop(), Some((Cycle(3), "third")));
/// assert_eq!(q.pop(), Some((Cycle(3), "also third")));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<T> {
    /// Ring of FIFO buckets; bucket `c & (BUCKETS-1)` holds the events of
    /// cycle `c` for `c` in the window `[cursor, cursor + BUCKETS)`.
    buckets: Box<[VecDeque<T>]>,
    /// Occupancy bitmap: bit `b` of `occ[b / 64]` is set iff bucket `b` is
    /// non-empty. At typical simulation densities (< 1 event per cycle) the
    /// pop path would otherwise touch several empty buckets per event; the
    /// bitmap turns that scan into a couple of word operations.
    occ: [u64; BUCKETS / 64],
    /// Summary bitmap: bit `w` is set iff `occ[w]` is non-zero.
    occ_summary: u64,
    /// Total events currently in the ring.
    in_ring: usize,
    /// Base of the window. Only moves forward, and never past a non-empty
    /// bucket, so every ringed event's cycle is `>= cursor`. Because the
    /// window is exactly one ring revolution, each bucket holds events of a
    /// single cycle at a time and its FIFO order is the insertion order.
    cursor: u64,
    /// Fallback for events pushed outside the window — beyond it, or (after
    /// the window has advanced past their cycle) behind it.
    far: BinaryHeap<FarEntry<T>>,
    /// Insertion counter for FIFO tie-breaking among heap events.
    far_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| VecDeque::new()).collect(),
            occ: [0; BUCKETS / 64],
            occ_summary: 0,
            in_ring: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            far_seq: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, bucket: usize) {
        let w = bucket >> 6;
        self.occ[w] |= 1u64 << (bucket & 63);
        self.occ_summary |= 1u64 << w;
    }

    #[inline]
    fn clear_bit(&mut self, bucket: usize) {
        let w = bucket >> 6;
        self.occ[w] &= !(1u64 << (bucket & 63));
        if self.occ[w] == 0 {
            self.occ_summary &= !(1u64 << w);
        }
    }

    /// The cycle of the earliest ring event. Valid only while `in_ring > 0`.
    ///
    /// Every ring event's cycle is in `[cursor, cursor + BUCKETS)`, so the
    /// earliest one is the first occupied bucket at or (circularly) after
    /// the cursor's bucket; its distance from the cursor is the offset in
    /// cycles.
    #[inline]
    fn next_ring_cycle(&self) -> u64 {
        debug_assert!(self.in_ring > 0);
        let p = (self.cursor as usize) & (BUCKETS - 1);
        let (w, b) = (p >> 6, p & 63);
        // Bits at or after the cursor within its own word.
        let first = self.occ[w] >> b;
        if first != 0 {
            return self.cursor + first.trailing_zeros() as u64;
        }
        // Next occupied word strictly after `w`, circularly; the cursor's
        // word is excluded so its below-cursor bits (nearly a full window
        // away) are only considered last.
        let rotated = (self.occ_summary & !(1u64 << w)).rotate_right((w as u32 + 1) & 63);
        let dist = if rotated != 0 {
            let wi = (w + 1 + rotated.trailing_zeros() as usize) & (BUCKETS / 64 - 1);
            let bit = self.occ[wi].trailing_zeros() as usize;
            ((wi << 6) | bit).wrapping_sub(p) & (BUCKETS - 1)
        } else {
            // Only bits below the cursor in its own word remain.
            let low = self.occ[w] & ((1u64 << b) - 1);
            debug_assert!(low != 0, "in_ring > 0 but occupancy bitmap empty");
            ((w << 6) | low.trailing_zeros() as usize).wrapping_sub(p) & (BUCKETS - 1)
        };
        self.cursor + dist as u64
    }

    /// Schedules `payload` at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let c = at.0;
        if c >= self.cursor && c - self.cursor < BUCKETS as u64 {
            let b = (c as usize) & (BUCKETS - 1);
            self.buckets[b].push_back(payload);
            self.set_bit(b);
            self.in_ring += 1;
        } else {
            self.far.push(FarEntry {
                at,
                seq: self.far_seq,
                payload,
            });
            self.far_seq += 1;
        }
    }

    /// Removes and returns the earliest event; same-cycle events come back
    /// in insertion order.
    ///
    /// A heap event never ties *behind* a ring event: an event lands in the
    /// heap only when its cycle is outside the window, i.e. either it was
    /// pushed before any same-cycle ring event existed (window not there
    /// yet) or same-cycle ring events can no longer exist (window already
    /// past — the bucket drained before the cursor moved on). So on a tied
    /// cycle the heap event is always the older one, and popping the heap
    /// first preserves FIFO.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if self.in_ring > 0 {
            let ring_c = self.next_ring_cycle();
            // Yield to the heap when its minimum is due at or before the
            // earliest ring event (the heap event is always the older one).
            if let Some(f) = self.far.peek() {
                if f.at.0 <= ring_c {
                    if f.at.0 > self.cursor {
                        self.cursor = f.at.0;
                    }
                    let e = self.far.pop().expect("peeked entry");
                    return Some((e.at, e.payload));
                }
            }
            self.cursor = ring_c;
            let b = (ring_c as usize) & (BUCKETS - 1);
            let bucket = &mut self.buckets[b];
            let payload = bucket.pop_front().expect("occupied per bitmap");
            self.in_ring -= 1;
            if bucket.is_empty() {
                self.clear_bit(b);
            }
            return Some((Cycle(ring_c), payload));
        }
        // Ring empty: drain the heap, dragging the window forward so
        // subsequent near-future pushes take the bucket path again.
        let e = self.far.pop()?;
        if e.at.0 > self.cursor {
            self.cursor = e.at.0;
        }
        Some((e.at, e.payload))
    }

    /// Removes every event due at the earliest pending cycle, appending
    /// them to `buf` in the exact order [`pop`](Self::pop) would have
    /// produced them, and returns that cycle.
    ///
    /// This is the cycle-batch entry point for the simulator's hot loop:
    /// one cursor/bitmap advance and one heap peek serve the whole cycle
    /// instead of every event paying them. Events pushed *at* the drained
    /// cycle while the caller processes the batch land in the (now empty)
    /// bucket and come back from the next call, exactly as `pop` would
    /// interleave them.
    pub fn drain_cycle_into(&mut self, buf: &mut Vec<T>) -> Option<Cycle> {
        let (at, first) = self.pop()?;
        buf.push(first);
        // Older same-cycle events live in the heap and pop before ring ones.
        while self.far.peek().is_some_and(|f| f.at == at) {
            buf.push(self.far.pop().expect("peeked entry").payload);
        }
        // The remainder of the cycle's bucket, if the window covers it. (If
        // the first event came from the heap *behind* the window, the
        // cursor sits past `at` and the bucket belongs to a later cycle.)
        if self.in_ring > 0 && self.cursor == at.0 {
            let b = (at.0 as usize) & (BUCKETS - 1);
            let bucket = &mut self.buckets[b];
            if !bucket.is_empty() {
                self.in_ring -= bucket.len();
                buf.extend(bucket.drain(..));
                self.clear_bit(b);
            }
        }
        Some(at)
    }

    /// The cycle of the earliest pending event, without removing it.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        let far_at = self.far.peek().map(|e| e.at);
        if self.in_ring > 0 {
            let ring_c = self.next_ring_cycle();
            if far_at.is_some_and(|f| f.0 <= ring_c) {
                return far_at;
            }
            return Some(Cycle(ring_c));
        }
        far_at
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_ring + self.far.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("next_cycle", &self.next_cycle())
            .finish()
    }
}

/// The previous `BinaryHeap`-based event queue.
///
/// Functionally identical to [`EventQueue`] (same total order: cycle, then
/// insertion). Retained as the reference model for the calendar queue's
/// differential tests and as the baseline for the `repro --selftest-perf`
/// events/sec comparison.
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<FarEntry<T>>,
    next_seq: u64,
}

impl<T> BinaryHeapQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        self.heap.push(FarEntry {
            at,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Removes and returns the earliest event (FIFO within a cycle).
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The cycle of the earliest pending event.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        BinaryHeapQueue::new()
    }
}

impl<T> fmt::Debug for BinaryHeapQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinaryHeapQueue")
            .field("pending", &self.len())
            .field("next_cycle", &self.next_cycle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn orders_by_cycle() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), "c");
        q.push(Cycle(10), "a");
        q.push(Cycle(20), "b");
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        assert_eq!(q.pop(), Some((Cycle(20), "b")));
        assert_eq!(q.pop(), Some((Cycle(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn interleaved_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        q.push(Cycle(3), 'c');
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        q.push(Cycle(2), 'b');
        q.push(Cycle(3), 'd');
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
        assert_eq!(q.pop(), Some((Cycle(3), 'c')));
        assert_eq!(q.pop(), Some((Cycle(3), 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_cycle_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_cycle(), None);
        q.push(Cycle(9), 1);
        q.push(Cycle(4), 2);
        assert_eq!(q.next_cycle(), Some(Cycle(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.next_cycle(), Some(Cycle(9)));
    }

    #[test]
    fn debug_is_nonempty() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 1);
        let dbg = format!("{q:?}");
        assert!(dbg.contains("pending"), "{dbg}");
        assert!(dbg.contains('5'), "{dbg}");
        let hq = BinaryHeapQueue::<u8>::new();
        assert!(format!("{hq:?}").contains("pending"));
    }

    #[test]
    fn far_future_events_spill_to_heap_and_return_in_order() {
        let mut q = EventQueue::new();
        let far = BUCKETS as u64 * 10;
        q.push(Cycle(far), "far");
        q.push(Cycle(far), "far2");
        q.push(Cycle(3), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_cycle(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), "near")));
        assert_eq!(q.next_cycle(), Some(Cycle(far)));
        assert_eq!(q.pop(), Some((Cycle(far), "far")));
        assert_eq!(q.pop(), Some((Cycle(far), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_event_pops_before_same_cycle_ring_event() {
        // A far-future push lands in the heap; once the window reaches its
        // cycle, a fresh push at the same cycle lands in a bucket. The heap
        // event is older and must pop first.
        let mut q = EventQueue::new();
        let c = BUCKETS as u64 + 100;
        q.push(Cycle(c), "old (heap)");
        // Drain a nearer event to drag the cursor forward to c.
        q.push(Cycle(c - 1), "nearer");
        assert_eq!(q.pop(), Some((Cycle(c - 1), "nearer")));
        q.push(Cycle(c), "new (ring)");
        assert_eq!(q.pop(), Some((Cycle(c), "old (heap)")));
        assert_eq!(q.pop(), Some((Cycle(c), "new (ring)")));
    }

    #[test]
    fn bucket_wrap_reuses_slots_across_revolutions() {
        // Same bucket index, different revolutions of the ring.
        let mut q = EventQueue::new();
        q.push(Cycle(5), "rev0");
        assert_eq!(q.pop(), Some((Cycle(5), "rev0")));
        let next_rev = 5 + BUCKETS as u64;
        q.push(Cycle(next_rev), "rev1");
        q.push(Cycle(6), "same rev");
        assert_eq!(q.pop(), Some((Cycle(6), "same rev")));
        assert_eq!(q.pop(), Some((Cycle(next_rev), "rev1")));
    }

    #[test]
    fn pop_accepts_pushes_at_the_current_cycle() {
        // The simulator pushes zero-latency follow-ups at `now` while
        // draining `now`; they must come back after already-queued events
        // of the same cycle.
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.push(Cycle(10), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        q.push(Cycle(10), 3);
        assert_eq!(q.pop(), Some((Cycle(10), 2)));
        assert_eq!(q.pop(), Some((Cycle(10), 3)));
    }

    /// Random pushes and pops against the reference model, comparing every
    /// observable (popped items, `next_cycle`, `len`) at each step.
    fn differential_run(seed: u64, ops: usize, horizon: u64) {
        let mut rng = SimRng::new(seed);
        let mut calendar = EventQueue::new();
        let mut reference = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for _ in 0..ops {
            if rng.chance(0.6) || calendar.is_empty() {
                let at = Cycle(now + rng.next_below(horizon));
                calendar.push(at, next_id);
                reference.push(at, next_id);
                next_id += 1;
            } else {
                assert_eq!(calendar.next_cycle(), reference.next_cycle());
                let got = calendar.pop();
                let want = reference.pop();
                assert_eq!(got, want);
                if let Some((at, _)) = got {
                    assert!(at.0 >= now, "time went backwards");
                    now = at.0;
                }
            }
            assert_eq!(calendar.len(), reference.len());
        }
        // Drain both to the end.
        loop {
            let got = calendar.pop();
            assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_reference_model_near_future() {
        for seed in 0..8 {
            differential_run(seed, 4_000, 200);
        }
    }

    #[test]
    fn matches_reference_model_across_bucket_wrap() {
        for seed in 100..104 {
            differential_run(seed, 4_000, BUCKETS as u64 - 1);
        }
    }

    #[test]
    fn matches_reference_model_with_far_future_spills() {
        for seed in 200..204 {
            differential_run(seed, 4_000, BUCKETS as u64 * 3);
        }
    }

    #[test]
    fn matches_reference_model_heavy_same_cycle_ties() {
        for seed in 300..304 {
            differential_run(seed, 4_000, 4);
        }
    }

    #[test]
    fn drain_cycle_returns_whole_cycle_in_pop_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 1);
        q.push(Cycle(5), 2);
        q.push(Cycle(9), 3);
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(5)));
        assert_eq!(buf, [1, 2]);
        buf.clear();
        // A push at the drained cycle while "processing" comes back from
        // the next call, before later cycles.
        q.push(Cycle(5), 4);
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(5)));
        assert_eq!(buf, [4]);
        buf.clear();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(9)));
        assert_eq!(buf, [3]);
        buf.clear();
        assert_eq!(q.drain_cycle_into(&mut buf), None);
    }

    #[test]
    fn drain_cycle_merges_heap_and_ring_heap_first() {
        let mut q = EventQueue::new();
        let c = BUCKETS as u64 + 100;
        q.push(Cycle(c), "old (heap)");
        q.push(Cycle(c - 1), "nearer");
        assert_eq!(q.pop(), Some((Cycle(c - 1), "nearer")));
        q.push(Cycle(c), "new (ring)");
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(c)));
        assert_eq!(buf, ["old (heap)", "new (ring)"]);
    }

    /// Random pushes and cycle drains against the reference model popped
    /// one event at a time.
    fn differential_drain_run(seed: u64, ops: usize, horizon: u64) {
        let mut rng = SimRng::new(seed);
        let mut calendar = EventQueue::new();
        let mut reference = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut buf = Vec::new();
        for _ in 0..ops {
            if rng.chance(0.7) || calendar.is_empty() {
                let at = Cycle(now + rng.next_below(horizon));
                calendar.push(at, next_id);
                reference.push(at, next_id);
                next_id += 1;
            } else {
                buf.clear();
                let at = calendar.drain_cycle_into(&mut buf).expect("non-empty");
                now = at.0;
                for &got in &buf {
                    let (rat, want) = reference.pop().expect("reference non-empty");
                    assert_eq!((at, got), (rat, want));
                }
                assert_eq!(calendar.len(), reference.len());
                // The drain must have taken the whole cycle.
                assert_ne!(calendar.next_cycle(), Some(at));
            }
        }
    }

    #[test]
    fn drain_cycle_matches_reference_model() {
        for seed in 400..404 {
            differential_drain_run(seed, 4_000, 300);
        }
        for seed in 404..408 {
            differential_drain_run(seed, 4_000, 4);
        }
        for seed in 408..412 {
            differential_drain_run(seed, 4_000, BUCKETS as u64 * 3);
        }
    }
}
