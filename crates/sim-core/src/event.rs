//! A deterministic discrete-event queue.
//!
//! Simulators schedule work "at cycle N" and repeatedly pop the earliest
//! pending event. Correct replay requires a *total* order: when several
//! events land on the same cycle they must come back in insertion order
//! (FIFO), or two runs of the same seed could diverge.
//!
//! [`EventQueue`] is a bucketed **calendar queue**: a ring of per-cycle FIFO
//! buckets covering a sliding window of upcoming cycles, with a binary-heap
//! fallback for the rare event scheduled beyond the window. Simulation
//! events are overwhelmingly near-future (compute bursts, cache and DRAM
//! latencies — all far shorter than the window), so push and pop are
//! amortized O(1) instead of the O(log n) a heap pays per memory op.
//! [`BinaryHeapQueue`] is the previous heap-based implementation, kept as a
//! differential-testing reference model and benchmark baseline.
//!
//! Completions with a *fixed* latency (an L1 hit always lands `now + 25`
//! cycles out, a zero-latency follow-up at `now`) additionally get a
//! timing-wheel fast lane: [`EventQueue::add_lane`] registers a
//! per-latency-class FIFO ring and [`EventQueue::push_lane`] appends to it
//! without touching the calendar's bucket index or occupancy bitmaps,
//! because such pushes arrive already sorted by cycle. The ordering burden
//! rides entirely on the (minority) lane entries: each records the number
//! of calendar events already inserted at its cycle, so the pop/drain paths
//! can splice lanes back into the bucket run at exactly their insertion
//! points. Calendar pushes stay byte-for-byte the plain-queue fast path —
//! no per-entry sequence stamp — and interleaving lanes with calendar
//! pushes remains bit-identical to pushing everything through
//! [`EventQueue::push`].

use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::ids::Cycle;

/// Cycles covered by the bucket ring (must be a power of two). Events up to
/// this far in the future take the O(1) bucket path; anything beyond spills
/// to the heap. 4096 comfortably covers every latency in the simulator
/// (DRAM round trips, full page walks, timeline sampling intervals).
const BUCKETS: usize = 4096;

/// An event in the heap fallback, ordered by `(at, seq)` so the heap pops
/// the lowest cycle first and FIFO within a cycle.
#[derive(Debug, Clone)]
struct FarEntry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for FarEntry<T> {}

impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // (cycle, seq) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A lane event: `pos` is the event's insertion point within its cycle's
/// calendar run (see [`EventQueue::push_lane`]), `seq` breaks ties between
/// lanes that recorded the same `pos`.
#[derive(Debug, Clone)]
struct LaneEntry<T> {
    at: Cycle,
    pos: u64,
    seq: u64,
    payload: T,
}

/// A calendar event queue with deterministic FIFO ordering within a cycle.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), "third");
/// q.push(Cycle(1), "first");
/// q.push(Cycle(3), "also third");
///
/// assert_eq!(q.pop(), Some((Cycle(1), "first")));
/// assert_eq!(q.pop(), Some((Cycle(3), "third")));
/// assert_eq!(q.pop(), Some((Cycle(3), "also third")));
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<T> {
    /// Ring of FIFO buckets; bucket `c & (BUCKETS-1)` holds the events of
    /// cycle `c` for `c` in the window `[cursor, cursor + BUCKETS)`.
    buckets: Box<[VecDeque<T>]>,
    /// Occupancy bitmap: bit `b` of `occ[b / 64]` is set iff bucket `b` is
    /// non-empty. At typical simulation densities (< 1 event per cycle) the
    /// pop path would otherwise touch several empty buckets per event; the
    /// bitmap turns that scan into a couple of word operations.
    occ: [u64; BUCKETS / 64],
    /// Summary bitmap: bit `w` is set iff `occ[w]` is non-zero.
    occ_summary: u64,
    /// Total events currently in the ring.
    in_ring: usize,
    /// Base of the window. Only moves forward, and never past a non-empty
    /// bucket, so every ringed event's cycle is `>= cursor`. Because the
    /// window is exactly one ring revolution, each bucket holds events of a
    /// single cycle at a time and its FIFO order is the insertion order.
    cursor: u64,
    /// Fallback for events pushed outside the window — beyond it, or (after
    /// the window has advanced past their cycle) behind it.
    far: BinaryHeap<FarEntry<T>>,
    /// Insertion counter for FIFO tie-breaking among heap events.
    far_seq: u64,
    /// Fixed-latency timing-wheel lanes (see [`EventQueue::add_lane`]).
    /// Each is a plain FIFO whose entries are non-decreasing in cycle.
    lanes: Vec<VecDeque<LaneEntry<T>>>,
    /// Total events currently across all lanes.
    in_lanes: usize,
    /// Insertion counter for lane pushes only; orders two lane events that
    /// recorded the same `pos` at the same cycle.
    lane_seq: u64,
    /// The cycle whose bucket run is partially consumed (`u64::MAX` when
    /// none) and how many of its calendar events have been popped so far.
    /// A lane push at this cycle must count those already-popped events
    /// into its `pos`, and the merge resumes its bucket index from here, so
    /// the two sides keep agreeing on insertion points across interleaved
    /// pushes and pops at the same cycle.
    consumed_at: u64,
    consumed: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| VecDeque::new()).collect(),
            occ: [0; BUCKETS / 64],
            occ_summary: 0,
            in_ring: 0,
            cursor: 0,
            far: BinaryHeap::new(),
            far_seq: 0,
            lanes: Vec::new(),
            in_lanes: 0,
            lane_seq: 0,
            consumed_at: u64::MAX,
            consumed: 0,
        }
    }

    /// Registers a fixed-latency fast lane and returns its id for
    /// [`EventQueue::push_lane`].
    ///
    /// A lane is a timing wheel degenerated to a single FIFO ring: because
    /// its events are completions at `now + const_lat` and `now` only moves
    /// forward, pushes arrive already sorted by cycle, so the lane needs no
    /// bucket indexing, no occupancy bitmap, and no window check.
    pub fn add_lane(&mut self) -> usize {
        self.lanes.push(VecDeque::new());
        self.lanes.len() - 1
    }

    /// Schedules `payload` at cycle `at` on a fixed-latency lane.
    ///
    /// Bit-identical in pop order to [`EventQueue::push`]: the entry
    /// records how many calendar events already exist at its cycle (bucket
    /// length plus any popped earlier this cycle), which *is* its insertion
    /// point in the scalar order, and the pop/drain paths splice the lane
    /// back in at exactly that point. Pure calendar traffic therefore pays
    /// nothing for the lanes' existence. The caller must push each lane's
    /// events in non-decreasing cycle order (completions at `now + const`
    /// are: `now` is monotone); this is debug-asserted.
    pub fn push_lane(&mut self, lane: usize, at: Cycle, payload: T) {
        let c = at.0;
        if c < self.cursor || c - self.cursor >= BUCKETS as u64 {
            // Outside the calendar window — cannot happen for a `now +
            // const` completion (the window dwarfs every fixed latency),
            // but degrade to the generic path rather than misorder.
            debug_assert!(false, "lane push outside the calendar window");
            return self.push(at, payload);
        }
        let b = (c as usize) & (BUCKETS - 1);
        let already = if self.consumed_at == c { self.consumed } else { 0 };
        let pos = already + self.buckets[b].len() as u64;
        let fifo = &mut self.lanes[lane];
        debug_assert!(
            !fifo.back().is_some_and(|back| back.at > at),
            "lane pushes must be monotone in cycle"
        );
        fifo.push_back(LaneEntry {
            at,
            pos,
            seq: self.lane_seq,
            payload,
        });
        self.lane_seq += 1;
        self.in_lanes += 1;
    }

    #[inline]
    fn set_bit(&mut self, bucket: usize) {
        let w = bucket >> 6;
        self.occ[w] |= 1u64 << (bucket & 63);
        self.occ_summary |= 1u64 << w;
    }

    #[inline]
    fn clear_bit(&mut self, bucket: usize) {
        let w = bucket >> 6;
        self.occ[w] &= !(1u64 << (bucket & 63));
        if self.occ[w] == 0 {
            self.occ_summary &= !(1u64 << w);
        }
    }

    /// Records `n` calendar events popped at cycle `c` (see `consumed_at`).
    #[inline]
    fn note_consumed(&mut self, c: u64, n: u64) {
        if self.consumed_at == c {
            self.consumed += n;
        } else {
            self.consumed_at = c;
            self.consumed = n;
        }
    }

    /// The cycle of the earliest ring event. Valid only while `in_ring > 0`.
    ///
    /// Every ring event's cycle is in `[cursor, cursor + BUCKETS)`, so the
    /// earliest one is the first occupied bucket at or (circularly) after
    /// the cursor's bucket; its distance from the cursor is the offset in
    /// cycles.
    #[inline]
    fn next_ring_cycle(&self) -> u64 {
        debug_assert!(self.in_ring > 0);
        let p = (self.cursor as usize) & (BUCKETS - 1);
        let (w, b) = (p >> 6, p & 63);
        // Bits at or after the cursor within its own word.
        let first = self.occ[w] >> b;
        if first != 0 {
            return self.cursor + first.trailing_zeros() as u64;
        }
        // Next occupied word strictly after `w`, circularly; the cursor's
        // word is excluded so its below-cursor bits (nearly a full window
        // away) are only considered last.
        let rotated = (self.occ_summary & !(1u64 << w)).rotate_right((w as u32 + 1) & 63);
        let dist = if rotated != 0 {
            let wi = (w + 1 + rotated.trailing_zeros() as usize) & (BUCKETS / 64 - 1);
            let bit = self.occ[wi].trailing_zeros() as usize;
            ((wi << 6) | bit).wrapping_sub(p) & (BUCKETS - 1)
        } else {
            // Only bits below the cursor in its own word remain.
            let low = self.occ[w] & ((1u64 << b) - 1);
            debug_assert!(low != 0, "in_ring > 0 but occupancy bitmap empty");
            ((w << 6) | low.trailing_zeros() as usize).wrapping_sub(p) & (BUCKETS - 1)
        };
        self.cursor + dist as u64
    }

    /// Schedules `payload` at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let c = at.0;
        if c >= self.cursor && c - self.cursor < BUCKETS as u64 {
            let b = (c as usize) & (BUCKETS - 1);
            self.buckets[b].push_back(payload);
            self.set_bit(b);
            self.in_ring += 1;
        } else {
            self.far.push(FarEntry {
                at,
                seq: self.far_seq,
                payload,
            });
            self.far_seq += 1;
        }
    }

    /// The due lane with the earliest insertion point at cycle `at`, as
    /// `(pos, lane index)`; `usize::MAX` as the index when none.
    #[inline]
    fn best_due_lane(&self, at: Cycle) -> (u64, usize) {
        let (mut pos, mut seq, mut lane) = (u64::MAX, u64::MAX, usize::MAX);
        for (i, fifo) in self.lanes.iter().enumerate() {
            if let Some(front) = fifo.front() {
                if front.at == at && (front.pos, front.seq) < (pos, seq) {
                    pos = front.pos;
                    seq = front.seq;
                    lane = i;
                }
            }
        }
        (pos, lane)
    }

    /// Removes and returns the earliest event; same-cycle events come back
    /// in insertion order.
    ///
    /// Within a tied cycle the order is: heap entries first (an event lands
    /// in the heap only while its cycle is outside the window, which rules
    /// out any in-window push at that cycle having come earlier), then the
    /// bucket run with lane entries spliced in at their recorded insertion
    /// points — together the exact order the pushes arrived in.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let at = self.next_cycle()?;
        let c = at.0;
        if self.far.peek().is_some_and(|f| f.at == at) {
            let e = self.far.pop().expect("peeked entry");
            // Drag the window forward so subsequent near-future pushes
            // take the bucket path again. The popped cycle is <= every
            // ring event's cycle, so no bucket is left behind.
            if c > self.cursor {
                self.cursor = c;
            }
            return Some((at, e.payload));
        }
        // Ring and lane events are never behind the window (ring events by
        // construction, lane pushes by the window check), so the earliest
        // cycle is at or ahead of the cursor.
        self.cursor = c;
        let b = (c as usize) & (BUCKETS - 1);
        let idx = if self.consumed_at == c { self.consumed } else { 0 };
        let (pos, lane) = self.best_due_lane(at);
        let bucket_due = self.in_ring > 0 && !self.buckets[b].is_empty();
        if lane != usize::MAX && (pos <= idx || !bucket_due) {
            let e = self.lanes[lane].pop_front().expect("peeked entry");
            self.in_lanes -= 1;
            return Some((at, e.payload));
        }
        let bucket = &mut self.buckets[b];
        let payload = bucket.pop_front()?;
        self.in_ring -= 1;
        if bucket.is_empty() {
            self.clear_bit(b);
        }
        self.note_consumed(c, 1);
        Some((at, payload))
    }

    /// Removes every event due at the earliest pending cycle, appending
    /// them to `buf` in the exact order [`pop`](Self::pop) would have
    /// produced them, and returns that cycle.
    ///
    /// This is the cycle-batch entry point for the simulator's hot loop:
    /// one cursor/bitmap advance and one heap peek serve the whole cycle
    /// instead of every event paying them. Events pushed *at* the drained
    /// cycle while the caller processes the batch land in the (now empty)
    /// bucket and come back from the next call, exactly as `pop` would
    /// interleave them.
    pub fn drain_cycle_into(&mut self, buf: &mut Vec<T>) -> Option<Cycle> {
        let at = self.next_cycle()?;
        let c = at.0;
        // Heap entries at this cycle are always the oldest (see `pop`).
        while self.far.peek().is_some_and(|f| f.at == at) {
            buf.push(self.far.pop().expect("peeked entry").payload);
        }
        if c < self.cursor {
            // Only the heap holds events behind the window; the cycle is
            // fully drained.
            return Some(at);
        }
        self.cursor = c;
        let b = (c as usize) & (BUCKETS - 1);
        let bucket_due = self.in_ring > 0 && !self.buckets[b].is_empty();
        let mut due_lanes = 0usize;
        let mut last_due = usize::MAX;
        for (i, fifo) in self.lanes.iter().enumerate() {
            if fifo.front().is_some_and(|front| front.at == at) {
                due_lanes += 1;
                last_due = i;
            }
        }
        // Fast paths: a single due source is one contiguous insertion-order
        // run that can be moved wholesale.
        if due_lanes == 0 {
            if bucket_due {
                let bucket = &mut self.buckets[b];
                let n = bucket.len();
                self.in_ring -= n;
                buf.extend(bucket.drain(..));
                self.clear_bit(b);
                self.note_consumed(c, n as u64);
            }
            return Some(at);
        }
        if due_lanes == 1 && !bucket_due {
            let fifo = &mut self.lanes[last_due];
            while fifo.front().is_some_and(|front| front.at == at) {
                buf.push(fifo.pop_front().expect("peeked entry").payload);
                self.in_lanes -= 1;
            }
            return Some(at);
        }
        // General path: splice the due lanes into the bucket run at their
        // recorded insertion points. `idx` is the absolute index of the
        // bucket front within the cycle's calendar run; a due lane whose
        // `pos` has been reached was pushed before that calendar event.
        // Bucket events move wholesale in the runs between insertion
        // points, so only the (minority) lane events pay a per-event scan.
        let mut idx = if self.consumed_at == c { self.consumed } else { 0 };
        loop {
            let (pos, lane) = self.best_due_lane(at);
            if lane == usize::MAX {
                let bucket = &mut self.buckets[b];
                let n = bucket.len();
                if n > 0 {
                    self.in_ring -= n;
                    idx += n as u64;
                    buf.extend(bucket.drain(..));
                }
                break;
            }
            if pos > idx {
                let bucket = &mut self.buckets[b];
                // `pos - idx` bucket events precede this lane event; if the
                // bucket runs dry short of that (impossible while the pos
                // invariant holds), degrade to popping the lane.
                let take = ((pos - idx) as usize).min(bucket.len());
                if take > 0 {
                    self.in_ring -= take;
                    idx += take as u64;
                    buf.extend(bucket.drain(..take));
                }
            }
            let e = self.lanes[lane].pop_front().expect("peeked entry");
            self.in_lanes -= 1;
            buf.push(e.payload);
        }
        self.clear_bit(b);
        self.consumed_at = c;
        self.consumed = idx;
        Some(at)
    }

    /// The cycle of the earliest pending event, without removing it.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        if self.in_ring > 0 {
            next = Some(Cycle(self.next_ring_cycle()));
        }
        if let Some(f) = self.far.peek() {
            if !next.is_some_and(|n| n <= f.at) {
                next = Some(f.at);
            }
        }
        for lane in &self.lanes {
            if let Some(front) = lane.front() {
                if !next.is_some_and(|n| n <= front.at) {
                    next = Some(front.at);
                }
            }
        }
        next
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_ring + self.far.len() + self.in_lanes
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("next_cycle", &self.next_cycle())
            .finish()
    }
}

/// The previous `BinaryHeap`-based event queue.
///
/// Functionally identical to [`EventQueue`] (same total order: cycle, then
/// insertion). Retained as the reference model for the calendar queue's
/// differential tests and as the baseline for the `repro --selftest-perf`
/// events/sec comparison.
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<FarEntry<T>>,
    next_seq: u64,
}

impl<T> BinaryHeapQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at cycle `at`.
    pub fn push(&mut self, at: Cycle, payload: T) {
        self.heap.push(FarEntry {
            at,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Removes and returns the earliest event (FIFO within a cycle).
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The cycle of the earliest pending event.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        BinaryHeapQueue::new()
    }
}

impl<T> fmt::Debug for BinaryHeapQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinaryHeapQueue")
            .field("pending", &self.len())
            .field("next_cycle", &self.next_cycle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn orders_by_cycle() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), "c");
        q.push(Cycle(10), "a");
        q.push(Cycle(20), "b");
        assert_eq!(q.pop(), Some((Cycle(10), "a")));
        assert_eq!(q.pop(), Some((Cycle(20), "b")));
        assert_eq!(q.pop(), Some((Cycle(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn interleaved_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        q.push(Cycle(3), 'c');
        assert_eq!(q.pop(), Some((Cycle(1), 'a')));
        q.push(Cycle(2), 'b');
        q.push(Cycle(3), 'd');
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
        assert_eq!(q.pop(), Some((Cycle(3), 'c')));
        assert_eq!(q.pop(), Some((Cycle(3), 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert!(!q.is_empty());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_cycle_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_cycle(), None);
        q.push(Cycle(9), 1);
        q.push(Cycle(4), 2);
        assert_eq!(q.next_cycle(), Some(Cycle(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.next_cycle(), Some(Cycle(9)));
    }

    #[test]
    fn debug_is_nonempty() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 1);
        let dbg = format!("{q:?}");
        assert!(dbg.contains("pending"), "{dbg}");
        assert!(dbg.contains('5'), "{dbg}");
        let hq = BinaryHeapQueue::<u8>::new();
        assert!(format!("{hq:?}").contains("pending"));
    }

    #[test]
    fn far_future_events_spill_to_heap_and_return_in_order() {
        let mut q = EventQueue::new();
        let far = BUCKETS as u64 * 10;
        q.push(Cycle(far), "far");
        q.push(Cycle(far), "far2");
        q.push(Cycle(3), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_cycle(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), "near")));
        assert_eq!(q.next_cycle(), Some(Cycle(far)));
        assert_eq!(q.pop(), Some((Cycle(far), "far")));
        assert_eq!(q.pop(), Some((Cycle(far), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_event_pops_before_same_cycle_ring_event() {
        // A far-future push lands in the heap; once the window reaches its
        // cycle, a fresh push at the same cycle lands in a bucket. The heap
        // event is older and must pop first.
        let mut q = EventQueue::new();
        let c = BUCKETS as u64 + 100;
        q.push(Cycle(c), "old (heap)");
        // Drain a nearer event to drag the cursor forward to c.
        q.push(Cycle(c - 1), "nearer");
        assert_eq!(q.pop(), Some((Cycle(c - 1), "nearer")));
        q.push(Cycle(c), "new (ring)");
        assert_eq!(q.pop(), Some((Cycle(c), "old (heap)")));
        assert_eq!(q.pop(), Some((Cycle(c), "new (ring)")));
    }

    #[test]
    fn bucket_wrap_reuses_slots_across_revolutions() {
        // Same bucket index, different revolutions of the ring.
        let mut q = EventQueue::new();
        q.push(Cycle(5), "rev0");
        assert_eq!(q.pop(), Some((Cycle(5), "rev0")));
        let next_rev = 5 + BUCKETS as u64;
        q.push(Cycle(next_rev), "rev1");
        q.push(Cycle(6), "same rev");
        assert_eq!(q.pop(), Some((Cycle(6), "same rev")));
        assert_eq!(q.pop(), Some((Cycle(next_rev), "rev1")));
    }

    #[test]
    fn pop_accepts_pushes_at_the_current_cycle() {
        // The simulator pushes zero-latency follow-ups at `now` while
        // draining `now`; they must come back after already-queued events
        // of the same cycle.
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.push(Cycle(10), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        q.push(Cycle(10), 3);
        assert_eq!(q.pop(), Some((Cycle(10), 2)));
        assert_eq!(q.pop(), Some((Cycle(10), 3)));
    }

    /// Random pushes and pops against the reference model, comparing every
    /// observable (popped items, `next_cycle`, `len`) at each step.
    fn differential_run(seed: u64, ops: usize, horizon: u64) {
        let mut rng = SimRng::new(seed);
        let mut calendar = EventQueue::new();
        let mut reference = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for _ in 0..ops {
            if rng.chance(0.6) || calendar.is_empty() {
                let at = Cycle(now + rng.next_below(horizon));
                calendar.push(at, next_id);
                reference.push(at, next_id);
                next_id += 1;
            } else {
                assert_eq!(calendar.next_cycle(), reference.next_cycle());
                let got = calendar.pop();
                let want = reference.pop();
                assert_eq!(got, want);
                if let Some((at, _)) = got {
                    assert!(at.0 >= now, "time went backwards");
                    now = at.0;
                }
            }
            assert_eq!(calendar.len(), reference.len());
        }
        // Drain both to the end.
        loop {
            let got = calendar.pop();
            assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_reference_model_near_future() {
        for seed in 0..8 {
            differential_run(seed, 4_000, 200);
        }
    }

    #[test]
    fn matches_reference_model_across_bucket_wrap() {
        for seed in 100..104 {
            differential_run(seed, 4_000, BUCKETS as u64 - 1);
        }
    }

    #[test]
    fn matches_reference_model_with_far_future_spills() {
        for seed in 200..204 {
            differential_run(seed, 4_000, BUCKETS as u64 * 3);
        }
    }

    #[test]
    fn matches_reference_model_heavy_same_cycle_ties() {
        for seed in 300..304 {
            differential_run(seed, 4_000, 4);
        }
    }

    #[test]
    fn drain_cycle_returns_whole_cycle_in_pop_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 1);
        q.push(Cycle(5), 2);
        q.push(Cycle(9), 3);
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(5)));
        assert_eq!(buf, [1, 2]);
        buf.clear();
        // A push at the drained cycle while "processing" comes back from
        // the next call, before later cycles.
        q.push(Cycle(5), 4);
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(5)));
        assert_eq!(buf, [4]);
        buf.clear();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(9)));
        assert_eq!(buf, [3]);
        buf.clear();
        assert_eq!(q.drain_cycle_into(&mut buf), None);
    }

    #[test]
    fn drain_cycle_merges_heap_and_ring_heap_first() {
        let mut q = EventQueue::new();
        let c = BUCKETS as u64 + 100;
        q.push(Cycle(c), "old (heap)");
        q.push(Cycle(c - 1), "nearer");
        assert_eq!(q.pop(), Some((Cycle(c - 1), "nearer")));
        q.push(Cycle(c), "new (ring)");
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(c)));
        assert_eq!(buf, ["old (heap)", "new (ring)"]);
    }

    /// Random pushes and cycle drains against the reference model popped
    /// one event at a time.
    fn differential_drain_run(seed: u64, ops: usize, horizon: u64) {
        let mut rng = SimRng::new(seed);
        let mut calendar = EventQueue::new();
        let mut reference = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut buf = Vec::new();
        for _ in 0..ops {
            if rng.chance(0.7) || calendar.is_empty() {
                let at = Cycle(now + rng.next_below(horizon));
                calendar.push(at, next_id);
                reference.push(at, next_id);
                next_id += 1;
            } else {
                buf.clear();
                let at = calendar.drain_cycle_into(&mut buf).expect("non-empty");
                now = at.0;
                for &got in &buf {
                    let (rat, want) = reference.pop().expect("reference non-empty");
                    assert_eq!((at, got), (rat, want));
                }
                assert_eq!(calendar.len(), reference.len());
                // The drain must have taken the whole cycle.
                assert_ne!(calendar.next_cycle(), Some(at));
            }
        }
    }

    #[test]
    fn drain_cycle_matches_reference_model() {
        for seed in 400..404 {
            differential_drain_run(seed, 4_000, 300);
        }
        for seed in 404..408 {
            differential_drain_run(seed, 4_000, 4);
        }
        for seed in 408..412 {
            differential_drain_run(seed, 4_000, BUCKETS as u64 * 3);
        }
    }

    #[test]
    fn lane_pushes_interleave_with_calendar_in_insertion_order() {
        let mut q = EventQueue::new();
        let lane = q.add_lane();
        q.push(Cycle(5), "calendar-1");
        q.push_lane(lane, Cycle(5), "lane-1");
        q.push(Cycle(5), "calendar-2");
        q.push_lane(lane, Cycle(7), "lane-2");
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_cycle(), Some(Cycle(5)));
        assert_eq!(q.pop(), Some((Cycle(5), "calendar-1")));
        assert_eq!(q.pop(), Some((Cycle(5), "lane-1")));
        assert_eq!(q.pop(), Some((Cycle(5), "calendar-2")));
        assert_eq!(q.pop(), Some((Cycle(7), "lane-2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_cycle_merges_lanes_heap_and_ring_in_insertion_order() {
        let mut q = EventQueue::new();
        let zero = q.add_lane();
        let fixed = q.add_lane();
        // Heap entry for cycle c (pushed while the window is far away).
        let c = BUCKETS as u64 + 50;
        q.push(Cycle(c), 0u32);
        q.push(Cycle(c - 1), 99);
        assert_eq!(q.pop(), Some((Cycle(c - 1), 99)));
        // Now interleave ring and lane pushes at cycle c.
        q.push(Cycle(c), 1);
        q.push_lane(fixed, Cycle(c), 2);
        q.push(Cycle(c), 3);
        q.push_lane(zero, Cycle(c), 4);
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(c)));
        // Heap entry is oldest, then strict insertion order across sources.
        assert_eq!(buf, [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn lane_splices_into_partially_popped_cycle() {
        // A lane push *between* single pops at the same cycle must count
        // the already-popped calendar events into its insertion point.
        let mut q = EventQueue::new();
        let lane = q.add_lane();
        q.push(Cycle(4), 1);
        q.push(Cycle(4), 2);
        assert_eq!(q.pop(), Some((Cycle(4), 1)));
        q.push_lane(lane, Cycle(4), 3);
        q.push(Cycle(4), 4);
        assert_eq!(q.pop(), Some((Cycle(4), 2)));
        assert_eq!(q.pop(), Some((Cycle(4), 3)));
        let mut buf = Vec::new();
        assert_eq!(q.drain_cycle_into(&mut buf), Some(Cycle(4)));
        assert_eq!(buf, [4]);
    }

    /// Drives an [`EventQueue`] whose fixed-latency pushes go through lanes
    /// against the reference model where every push is generic, simulating
    /// the real usage pattern: `now` advances monotonically and each lane
    /// always receives `now + const_lat`.
    fn differential_lane_run(seed: u64, ops: usize, horizon: u64, pop_one: bool) {
        const LANE_LATS: [u64; 2] = [0, 25];
        let mut rng = SimRng::new(seed);
        let mut wheeled = EventQueue::new();
        let lanes: Vec<usize> = LANE_LATS.iter().map(|_| wheeled.add_lane()).collect();
        let mut reference = BinaryHeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut buf = Vec::new();
        for _ in 0..ops {
            if rng.chance(0.6) || wheeled.is_empty() {
                if rng.chance(0.5) {
                    // A fixed-latency completion relative to `now`.
                    let li = rng.next_below(LANE_LATS.len() as u64) as usize;
                    let at = Cycle(now + LANE_LATS[li]);
                    wheeled.push_lane(lanes[li], at, next_id);
                    reference.push(at, next_id);
                } else {
                    let at = Cycle(now + rng.next_below(horizon));
                    wheeled.push(at, next_id);
                    reference.push(at, next_id);
                }
                next_id += 1;
            } else if pop_one {
                assert_eq!(wheeled.next_cycle(), reference.next_cycle());
                let got = wheeled.pop();
                assert_eq!(got, reference.pop());
                if let Some((at, _)) = got {
                    now = at.0;
                }
            } else {
                buf.clear();
                let at = wheeled.drain_cycle_into(&mut buf).expect("non-empty");
                now = at.0;
                for &got in &buf {
                    assert_eq!(reference.pop(), Some((at, got)));
                }
                assert_ne!(wheeled.next_cycle(), Some(at), "cycle not fully drained");
            }
            assert_eq!(wheeled.len(), reference.len());
        }
        loop {
            let got = wheeled.pop();
            assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn lanes_match_reference_model() {
        for seed in 500..504 {
            differential_lane_run(seed, 4_000, 300, true);
            differential_lane_run(seed, 4_000, 300, false);
        }
        // Dense ties: most events land on the same few cycles, so every
        // drain exercises the splice merge.
        for seed in 504..508 {
            differential_lane_run(seed, 4_000, 3, false);
        }
        // Far-future generic pushes force heap/lane/ring three-way merges.
        for seed in 508..512 {
            differential_lane_run(seed, 4_000, BUCKETS as u64 * 3, false);
        }
    }
}
