//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a min-heap keyed by [`Cycle`] with FIFO tie-breaking:
//! two events scheduled for the same cycle pop in the order they were pushed.
//! Determinism matters here — the whole simulator must replay bit-identically
//! from a seed so experiments are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::Cycle;

/// One scheduled entry in the heap. Ordered so that the *earliest* cycle and,
/// within a cycle, the *smallest* sequence number pops first from a max-heap.
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both keys: BinaryHeap is a max-heap and we want a min-heap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(1), 'a');
/// assert_eq!(q.next_cycle(), Some(Cycle(1)));
/// assert_eq!(q.pop(), Some((Cycle(1), 'a')));
/// assert_eq!(q.pop(), Some((Cycle(3), 'b')));
/// assert!(q.is_empty());
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty event queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at cycle `at`.
    ///
    /// Events pushed for the same cycle pop in push order.
    pub fn push(&mut self, at: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The cycle of the earliest pending event, or `None` if empty.
    #[must_use]
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_cycle", &self.next_cycle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_cycle() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn interleaved_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "a");
        q.push(Cycle(1), "b");
        assert_eq!(q.pop(), Some((Cycle(1), "b")));
        q.push(Cycle(2), "c");
        q.push(Cycle(5), "d");
        assert_eq!(q.pop(), Some((Cycle(2), "c")));
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        assert_eq!(q.pop(), Some((Cycle(5), "d")));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(Cycle(1), ());
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn next_cycle_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_cycle(), None);
        q.push(Cycle(9), ());
        q.push(Cycle(4), ());
        assert_eq!(q.next_cycle(), Some(Cycle(4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u32> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
