//! Deterministic FNV-1a hashing for hot-path hash maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed per-process and
//! costs tens of cycles per small key. Simulator-internal maps keyed by
//! small integers — like the walk-merge table keyed by `(tenant, vpn)` —
//! neither face adversarial keys nor expose iteration order, so the far
//! cheaper FNV-1a is safe and keeps lookups deterministic across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// A [`Hasher`] implementing 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, n: u64) {
        // One multiply per word instead of eight: fold the whole word in.
        let mut h = self.0;
        h ^= n;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        self.0 = h;
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`]; plug into `HashMap::with_hasher` or the
/// [`FnvMap`] alias.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` using deterministic FNV-1a hashing.
pub type FnvMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        fn fnv(bytes: &[u8]) -> u64 {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        }
        // Reference values for FNV-1a 64.
        assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FnvMap<(u8, u64), u32> = FnvMap::default();
        m.insert((1, 42), 7);
        m.insert((2, 42), 8);
        assert_eq!(m.get(&(1, 42)), Some(&7));
        assert_eq!(m.remove(&(2, 42)), Some(8));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        // Unlike SipHash there is no per-process key: the same key must hash
        // identically in two fresh maps (this is what keeps iteration-free
        // lookups reproducible across runs and hosts).
        fn hash_of(key: (u8, u64)) -> u64 {
            use std::hash::{BuildHasher, Hash};
            let mut h = FnvBuildHasher::default().build_hasher();
            key.hash(&mut h);
            h.finish()
        }
        assert_eq!(hash_of((3, 0xdead_beef)), hash_of((3, 0xdead_beef)));
        assert_ne!(hash_of((3, 0xdead_beef)), hash_of((4, 0xdead_beef)));
    }

    #[test]
    fn survives_growth_well_past_the_initial_capacity() {
        // 4096 inserts force several rehash/grow cycles from the default
        // empty table; every key must survive each move.
        let mut m: FnvMap<(u8, u64), usize> = FnvMap::default();
        for i in 0..4096_usize {
            m.insert(((i % 251) as u8, i as u64), i);
        }
        assert_eq!(m.len(), 4096);
        for i in 0..4096_usize {
            assert_eq!(m.get(&((i % 251) as u8, i as u64)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn remove_then_reinsert_reuses_slots() {
        let mut m: FnvMap<(u8, u64), usize> = FnvMap::default();
        for i in 0..512_usize {
            m.insert((0, i as u64), i);
        }
        for i in (0..512_usize).step_by(2) {
            assert_eq!(m.remove(&(0, i as u64)), Some(i));
        }
        assert_eq!(m.len(), 256);
        for i in (0..512_usize).step_by(2) {
            assert_eq!(m.get(&(0, i as u64)), None);
            m.insert((0, i as u64), i + 1000);
        }
        assert_eq!(m.len(), 512);
        assert_eq!(m.get(&(0, 2)), Some(&1002));
        assert_eq!(m.get(&(0, 3)), Some(&3));
    }

    #[test]
    fn colliding_keys_are_both_retrievable() {
        use std::hash::{BuildHasher, Hash};
        // A (u8, u64) tuple hashes as write_u8(a) then write_u64(b), i.e.
        // hash = ((I ^ a)·P ^ b)·P. Two keys collide iff the inner term
        // matches, so pick b2 = ((I^a1)·P ^ b1) ^ ((I^a2)·P): a full 64-bit
        // hash collision, not merely a same-bucket one.
        const I: u64 = 0xcbf2_9ce4_8422_2325;
        const P: u64 = 0x0000_0100_0000_01b3;
        let (a1, b1, a2) = (1_u8, 42_u64, 2_u8);
        let b2 = (u64::from(a1) ^ I).wrapping_mul(P) ^ b1 ^ (u64::from(a2) ^ I).wrapping_mul(P);

        fn hash_of(key: (u8, u64)) -> u64 {
            let mut h = FnvBuildHasher::default().build_hasher();
            key.hash(&mut h);
            h.finish()
        }
        assert_eq!(hash_of((a1, b1)), hash_of((a2, b2)), "construction broke");

        let mut m: FnvMap<(u8, u64), &str> = FnvMap::default();
        m.insert((a1, b1), "first");
        m.insert((a2, b2), "second");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&(a1, b1)), Some(&"first"));
        assert_eq!(m.get(&(a2, b2)), Some(&"second"));
        assert_eq!(m.remove(&(a1, b1)), Some("first"));
        assert_eq!(m.get(&(a2, b2)), Some(&"second"));
    }
}
