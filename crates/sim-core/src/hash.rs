//! Deterministic FNV-1a hashing for hot-path hash maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed per-process and
//! costs tens of cycles per small key. Simulator-internal maps keyed by
//! small integers — like the walk-merge table keyed by `(tenant, vpn)` —
//! neither face adversarial keys nor expose iteration order, so the far
//! cheaper FNV-1a is safe and keeps lookups deterministic across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// A [`Hasher`] implementing 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, n: u64) {
        // One multiply per word instead of eight: fold the whole word in.
        let mut h = self.0;
        h ^= n;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        self.0 = h;
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`]; plug into `HashMap::with_hasher` or the
/// [`FnvMap`] alias.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` using deterministic FNV-1a hashing.
pub type FnvMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        fn fnv(bytes: &[u8]) -> u64 {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        }
        // Reference values for FNV-1a 64.
        assert_eq!(fnv(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FnvMap<(u8, u64), u32> = FnvMap::default();
        m.insert((1, 42), 7);
        m.insert((2, 42), 8);
        assert_eq!(m.get(&(1, 42)), Some(&7));
        assert_eq!(m.remove(&(2, 42)), Some(8));
        assert_eq!(m.len(), 1);
    }
}
