//! Strongly-typed identifiers and addresses.
//!
//! Every quantity that flows between subsystems gets its own newtype
//! ([`Cycle`], [`TenantId`], [`VirtAddr`], [`PhysAddr`], …) so the type
//! system statically rules out, e.g., indexing a TLB with a physical address
//! or mixing up a walker id with a tenant id.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in GPU core clock cycles.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::Cycle;
///
/// let start = Cycle(100);
/// let finish = start + 250;
/// assert_eq!(finish, Cycle(350));
/// assert_eq!(finish - start, 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle, i.e. the start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Saturating difference: cycles elapsed from `earlier` to `self`,
    /// clamped at zero if `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction underflow")
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// Identifier of a co-running tenant (application / virtual address space).
///
/// The paper tags every translation request with a tenant id; for two tenants
/// this is a single bit of hardware state.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::TenantId;
///
/// let t = TenantId(1);
/// assert_eq!(t.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u8);

impl TenantId {
    /// The tenant id as a `usize`, for indexing per-tenant tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// A virtual (guest) byte address within one tenant's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page number for a page of `page_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    ///
    /// # Examples
    ///
    /// ```
    /// use walksteal_sim_core::{VirtAddr, Vpn};
    ///
    /// assert_eq!(VirtAddr(0x5042).vpn(4096), Vpn(0x5));
    /// ```
    #[must_use]
    pub fn vpn(self, page_bytes: u64) -> Vpn {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Vpn(self.0 >> page_bytes.trailing_zeros())
    }

    /// The byte offset within a page of `page_bytes` bytes.
    #[must_use]
    pub fn page_offset(self, page_bytes: u64) -> u64 {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.0 & (page_bytes - 1)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va {:#x}", self.0)
    }
}

/// A physical (device-memory) byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The cache-line address for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa {:#x}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The base virtual address of this page for pages of `page_bytes` bytes.
    #[must_use]
    pub fn base_addr(self, page_bytes: u64) -> VirtAddr {
        VirtAddr(self.0 << page_bytes.trailing_zeros())
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn {:#x}", self.0)
    }
}

/// A physical page (frame) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl Ppn {
    /// The base physical address of this frame for pages of `page_bytes` bytes.
    #[must_use]
    pub fn base_addr(self, page_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 << page_bytes.trailing_zeros())
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn {:#x}", self.0)
    }
}

/// A cache-line-granularity physical address (physical address divided by the
/// line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

/// Identifier of a streaming multiprocessor (SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(pub u16);

impl SmId {
    /// The SM id as a `usize`, for indexing per-SM tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm {}", self.0)
    }
}

/// Identifier of a warp within one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u16);

impl WarpId {
    /// The warp id as a `usize`, for indexing per-warp tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warp {}", self.0)
    }
}

/// Identifier of a page-table walker in the shared walker pool.
///
/// Indexes the FWA and WTM hardware tables of the DWS design (4 bits for the
/// paper's default 16 walkers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WalkerId(pub u8);

impl WalkerId {
    /// The walker id as a `usize`, for indexing the FWA / WTM tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WalkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "walker {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(15) - c, 5);
        let mut d = Cycle(1);
        d += 2;
        assert_eq!(d, Cycle(3));
        assert_eq!(Cycle(7).max(Cycle(4)), Cycle(7));
        assert_eq!(Cycle(4).max(Cycle(7)), Cycle(7));
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle(10).saturating_since(Cycle(4)), 6);
        assert_eq!(Cycle(4).saturating_since(Cycle(10)), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_sub_underflow_panics() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn vpn_and_offset_4k() {
        let va = VirtAddr(0x1234_5678);
        assert_eq!(va.vpn(4096), Vpn(0x12345));
        assert_eq!(va.page_offset(4096), 0x678);
    }

    #[test]
    fn vpn_and_offset_64k() {
        let va = VirtAddr(0x1234_5678);
        assert_eq!(va.vpn(65536), Vpn(0x1234));
        assert_eq!(va.page_offset(65536), 0x5678);
    }

    #[test]
    fn vpn_round_trip() {
        let va = VirtAddr(0xdead_b000);
        let vpn = va.vpn(4096);
        assert_eq!(vpn.base_addr(4096), VirtAddr(0xdead_b000));
    }

    #[test]
    fn ppn_base_addr() {
        assert_eq!(Ppn(3).base_addr(4096), PhysAddr(3 * 4096));
    }

    #[test]
    fn line_addr() {
        assert_eq!(PhysAddr(0x100).line(128), LineAddr(2));
        assert_eq!(PhysAddr(0x17f).line(128), LineAddr(2));
        assert_eq!(PhysAddr(0x180).line(128), LineAddr(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_panics() {
        let _ = VirtAddr(0).vpn(1000);
    }

    #[test]
    fn display_impls_are_nonempty() {
        // C-DEBUG-NONEMPTY: even trivial values render something useful.
        assert_eq!(Cycle(0).to_string(), "cycle 0");
        assert_eq!(TenantId(0).to_string(), "tenant 0");
        assert_eq!(VirtAddr(0).to_string(), "va 0x0");
        assert_eq!(WalkerId(9).to_string(), "walker 9");
        assert_eq!(SmId(2).to_string(), "sm 2");
        assert_eq!(WarpId(5).to_string(), "warp 5");
    }

    #[test]
    fn indices() {
        assert_eq!(TenantId(3).index(), 3);
        assert_eq!(WalkerId(15).index(), 15);
        assert_eq!(SmId(29).index(), 29);
        assert_eq!(WarpId(31).index(), 31);
    }
}
