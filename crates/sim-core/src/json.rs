//! Minimal JSON reading/writing with no external crates.
//!
//! The simulator persists [`SimResult`](../../walksteal_multitenant) values
//! in its on-disk experiment cache and prints them from the CLI tools. The
//! build must work with zero network access, so instead of `serde_json`
//! this module provides a small document model ([`Json`]), a writer
//! ([`Json::dump`] / [`Json::pretty`]), and a recursive-descent parser
//! ([`Json::parse`]).
//!
//! Numbers are split into unsigned integers and floats so `u64` counters
//! round-trip exactly. Floats are written with Rust's shortest-round-trip
//! formatting (`{:?}`), so parsing the output recovers the identical bit
//! pattern; non-finite floats are written as `null` (matching common JSON
//! serializer behavior) and read back as NaN.
//!
//! # Examples
//!
//! ```
//! use walksteal_sim_core::Json;
//!
//! let doc = Json::Obj(vec![
//!     ("cycles".to_string(), Json::UInt(1234)),
//!     ("ipc".to_string(), Json::Num(0.75)),
//! ]);
//! let text = doc.dump();
//! assert_eq!(text, r#"{"cycles":1234,"ipc":0.75}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(1234));
//! ```

use std::fmt::Write as _;

/// A JSON document.
///
/// Objects keep insertion order (they are association lists, not maps), so
/// serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, written without a decimal point.
    UInt(u64),
    /// A float, written with shortest-round-trip formatting.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`. Integers convert; `null` reads as NaN (the
    /// writer emits `null` for non-finite floats).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same f64.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input, including
    /// trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Take the longest plain run in one slice to avoid per-char work.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-1.5", "0.1"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e300, f64::MIN_POSITIVE, 123.456e-7] {
            let v = Json::Num(x);
            let back = Json::parse(&v.dump()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let n = u64::MAX;
        let v = Json::UInt(n);
        assert_eq!(Json::parse(&v.dump()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "he said \"hi\\bye\"\nline2\ttab\u{1}";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.dump()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Num(2.5)])),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Null)])),
            ("d".into(), Json::Arr(vec![])),
            ("e".into(), Json::Obj(vec![])),
        ]);
        let compact = doc.dump();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_beyond_f64_precision_round_trip_exactly() {
        // 2^53 + 1 is the first integer an f64 cannot represent; a parser
        // that routes integers through f64 silently turns it into 2^53.
        // The cache format leans on UInt staying exact for event counters.
        for n in [(1_u64 << 53) + 1, u64::MAX, u64::MAX - 1] {
            let text = Json::UInt(n).dump();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, Json::UInt(n), "{n}");
        }
        #[allow(clippy::cast_precision_loss)]
        let lossy = ((1_u64 << 53) + 1) as f64 as u64;
        assert_ne!(lossy, (1 << 53) + 1, "f64 round-trip would have lied");
    }

    #[test]
    fn nested_document_with_escapes_and_large_ints_round_trips() {
        // One document combining every hard case the cache envelope can
        // contain: maps inside arrays inside maps, keys needing escapes,
        // values mixing control characters with >2^53 counters.
        let doc = Json::Obj(vec![
            (
                "path\\with \"quotes\"".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("events".into(), Json::UInt((1 << 53) + 1)),
                        ("note".into(), Json::Str("line1\nline2\t\u{1}end".into())),
                    ]),
                    Json::Arr(vec![Json::UInt(u64::MAX), Json::Null, Json::Bool(false)]),
                ]),
            ),
            ("empty".into(), Json::Obj(vec![("a".into(), Json::Arr(vec![]))])),
        ]);
        for text in [doc.dump(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "from {text}");
        }
        // And the compact form itself is stable through a second cycle.
        let once = doc.dump();
        assert_eq!(Json::parse(&once).unwrap().dump(), once);
    }

    #[test]
    fn escaped_object_keys_survive() {
        let doc = Json::Obj(vec![("tab\tkey\"\\".into(), Json::UInt(1))]);
        let back = Json::parse(&doc.dump()).unwrap();
        assert_eq!(back.get("tab\tkey\"\\").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = Json::parse(r#"{"x": 3, "y": [1, 2], "s": "hi", "b": true}"#).unwrap();
        assert_eq!(doc.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("y").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{1: 2}"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" :\n[ 1 ,\t2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }
}
