//! Discrete-event simulation kernel for the `walksteal` GPU simulator.
//!
//! This crate provides the building blocks shared by every other crate in the
//! workspace:
//!
//! * [`ids`] — strongly-typed identifiers and addresses ([`Cycle`],
//!   [`TenantId`], [`VirtAddr`], …) so that, e.g., a virtual address can never
//!   be passed where a physical one is expected.
//! * [`event`] — a deterministic discrete-event queue ([`EventQueue`]) with
//!   FIFO tie-breaking for events scheduled at the same cycle.
//! * [`rng`] — a small, fast, seedable random-number generator ([`SimRng`])
//!   so simulations replay bit-identically from a seed.
//! * [`stats`] — counters, running means, histograms, and the geometric /
//!   arithmetic mean helpers used throughout the paper's evaluation.
//! * [`json`] — a dependency-free JSON reader/writer ([`Json`]) for the
//!   experiment cache and CLI output, so the workspace builds offline.
//! * [`error`] — structured run failures ([`SimError`]) and watchdog
//!   budgets ([`RunBudget`]) so a runaway simulation aborts with a partial
//!   diagnostic instead of hanging its caller.
//! * [`trace`] — zero-cost-when-off walk-lifecycle tracing ([`Tracer`],
//!   [`TraceEvent`], [`Observer`]) with JSONL and ring-buffer sinks.
//! * [`metrics`] — a registry of named counters, histograms, and time
//!   series ([`MetricsRegistry`]) collected alongside traces.
//!
//! # Examples
//!
//! ```
//! use walksteal_sim_core::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "ten");
//! q.push(Cycle(5), "five");
//! q.push(Cycle(10), "ten again");
//!
//! assert_eq!(q.pop(), Some((Cycle(5), "five")));
//! // Same-cycle events come out in insertion order.
//! assert_eq!(q.pop(), Some((Cycle(10), "ten")));
//! assert_eq!(q.pop(), Some((Cycle(10), "ten again")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod error;
pub mod event;
pub mod hash;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod trace;

pub use error::{BudgetKind, ConfigError, RunBudget, RunDiag, SimError};
pub use event::{BinaryHeapQueue, EventQueue};
pub use hash::{FnvBuildHasher, FnvHasher, FnvMap};
pub use ids::{Cycle, LineAddr, PhysAddr, Ppn, SmId, TenantId, VirtAddr, Vpn, WalkerId, WarpId};
pub use json::Json;
pub use metrics::{MetricsRegistry, SharedMetrics};
pub use rng::SimRng;
pub use stats::{amean, gmean, Counter, Histogram, RunningMean};
pub use trace::{
    JsonlTracer, NullTracer, Observer, RingTracer, TraceEvent, TraceFilter, TraceKind, Tracer,
};
