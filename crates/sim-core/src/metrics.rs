//! A registry of named counters, histograms, and time series.
//!
//! The registry is attached to a simulation through
//! [`crate::trace::Observer`]; when absent, instrumentation sites cost a
//! single branch. When present, metrics are keyed by a `&'static str` name
//! plus an optional tenant index, looked up by linear scan — registration
//! order is deterministic and the metric set is small, so the scan is cheap
//! and, unlike hashing, allocation-free.
//!
//! # Examples
//!
//! ```
//! use walksteal_sim_core::metrics::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.inc("steal_success", Some(1));
//! m.add("steal_success", Some(1), 2);
//! m.observe("walk_latency", Some(0), 180);
//! m.sample("queue_depth", 100, 7.0);
//!
//! assert_eq!(m.counter("steal_success", Some(1)), 3);
//! assert_eq!(m.histogram("walk_latency", Some(0)).unwrap().total(), 1);
//! assert_eq!(m.series("queue_depth").unwrap(), &[(100, 7.0)]);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::json::Json;
use crate::stats::Histogram;

/// Key of one metric: a static name plus an optional tenant index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    name: &'static str,
    tenant: Option<u8>,
}

impl Key {
    fn label(&self) -> String {
        match self.tenant {
            Some(t) => format!("{}[t{}]", self.name, t),
            None => self.name.to_string(),
        }
    }
}

/// Histogram shape used by [`MetricsRegistry::observe`]: 128 buckets of 32
/// cycles each (plus the implicit overflow bucket), sized for walk latencies.
const DEFAULT_HIST_BUCKETS: usize = 128;
const DEFAULT_HIST_WIDTH: u64 = 32;

/// Counters, histograms, and time series collected during a run.
///
/// All accessors auto-register on first use, so instrumentation sites don't
/// need a setup phase.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(Key, u64)>,
    hists: Vec<(Key, Histogram)>,
    series: Vec<(&'static str, Vec<(u64, f64)>)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, name: &'static str, tenant: Option<u8>) {
        self.add(name, tenant, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &'static str, tenant: Option<u8>, n: u64) {
        let key = Key { name, tenant };
        if let Some((_, v)) = self.counters.iter_mut().find(|(k, _)| *k == key) {
            *v += n;
            return;
        }
        self.counters.push((key, n));
    }

    /// Current value of a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &'static str, tenant: Option<u8>) -> u64 {
        let key = Key { name, tenant };
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, v)| v)
    }

    /// Records `sample` into a histogram with the default latency shape.
    pub fn observe(&mut self, name: &'static str, tenant: Option<u8>, sample: u64) {
        self.observe_shaped(name, tenant, sample, DEFAULT_HIST_BUCKETS, DEFAULT_HIST_WIDTH);
    }

    /// Records `sample` into a histogram, creating it with the given shape
    /// on first use (the shape of an existing histogram is not changed).
    pub fn observe_shaped(
        &mut self,
        name: &'static str,
        tenant: Option<u8>,
        sample: u64,
        buckets: usize,
        width: u64,
    ) {
        let key = Key { name, tenant };
        if let Some((_, h)) = self.hists.iter_mut().find(|(k, _)| *k == key) {
            h.record(sample);
            return;
        }
        let mut h = Histogram::new(buckets, width);
        h.record(sample);
        self.hists.push((key, h));
    }

    /// A recorded histogram, if any samples were observed.
    #[must_use]
    pub fn histogram(&self, name: &'static str, tenant: Option<u8>) -> Option<&Histogram> {
        let key = Key { name, tenant };
        self.hists.iter().find(|(k, _)| *k == key).map(|(_, h)| h)
    }

    /// Appends a `(cycle, value)` point to a time series.
    pub fn sample(&mut self, name: &'static str, cycle: u64, value: f64) {
        if let Some((_, points)) = self.series.iter_mut().find(|(n, _)| *n == name) {
            points.push((cycle, value));
            return;
        }
        self.series.push((name, vec![(cycle, value)]));
    }

    /// A recorded time series, oldest point first.
    #[must_use]
    pub fn series(&self, name: &'static str) -> Option<&[(u64, f64)]> {
        self.series
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, points)| points.as_slice())
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.series.is_empty()
    }

    /// Snapshot of everything recorded, for reports:
    /// `{"counters": {...}, "histograms": {...}, "series": {...}}`.
    ///
    /// Histograms export `count`, `mean`, `max`, `p50`, `p95`, and `p99`
    /// rather than raw buckets.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.label(), Json::UInt(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    k.label(),
                    Json::Obj(vec![
                        ("count".to_string(), Json::UInt(h.total())),
                        ("mean".to_string(), Json::Num(h.mean())),
                        ("max".to_string(), Json::UInt(h.max())),
                        ("p50".to_string(), Json::UInt(h.percentile(0.50))),
                        ("p95".to_string(), Json::UInt(h.percentile(0.95))),
                        ("p99".to_string(), Json::UInt(h.percentile(0.99))),
                    ]),
                )
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|(n, points)| {
                (
                    (*n).to_string(),
                    Json::Arr(
                        points
                            .iter()
                            .map(|&(c, v)| Json::Arr(vec![Json::UInt(c), Json::Num(v)]))
                            .collect(),
                    ),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("histograms".to_string(), Json::Obj(hists)),
            ("series".to_string(), Json::Obj(series)),
        ])
    }
}

/// A cloneable handle to a [`MetricsRegistry`].
///
/// The simulation consumes itself on `run()`, so callers that want the
/// collected metrics afterwards attach a handle and keep a clone:
///
/// ```
/// use walksteal_sim_core::metrics::SharedMetrics;
///
/// let metrics = SharedMetrics::new();
/// let sink = metrics.clone(); // handed to the simulation
/// sink.inc("steal_success", None);
/// assert_eq!(metrics.counter("steal_success", None), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedMetrics(Rc<RefCell<MetricsRegistry>>);

impl SharedMetrics {
    /// A handle to a fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        SharedMetrics::default()
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&self, name: &'static str, tenant: Option<u8>) {
        self.0.borrow_mut().inc(name, tenant);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &'static str, tenant: Option<u8>, n: u64) {
        self.0.borrow_mut().add(name, tenant, n);
    }

    /// Records `sample` into a histogram with the default latency shape.
    pub fn observe(&self, name: &'static str, tenant: Option<u8>, sample: u64) {
        self.0.borrow_mut().observe(name, tenant, sample);
    }

    /// Appends a `(cycle, value)` point to a time series.
    pub fn sample(&self, name: &'static str, cycle: u64, value: f64) {
        self.0.borrow_mut().sample(name, cycle, value);
    }

    /// Current value of a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &'static str, tenant: Option<u8>) -> u64 {
        self.0.borrow().counter(name, tenant)
    }

    /// Runs `f` against the underlying registry, for reads that need more
    /// than a scalar (histograms, series).
    pub fn with<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Snapshot of everything recorded (see [`MetricsRegistry::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        self.0.borrow().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_sees_sink_writes() {
        let metrics = SharedMetrics::new();
        let sink = metrics.clone();
        sink.inc("c", Some(0));
        sink.observe("h", None, 12);
        sink.sample("s", 5, 1.5);
        assert_eq!(metrics.counter("c", Some(0)), 1);
        assert_eq!(metrics.with(|m| m.histogram("h", None).unwrap().total()), 1);
        assert_eq!(metrics.with(|m| m.series("s").unwrap().to_vec()), vec![(5, 1.5)]);
    }

    #[test]
    fn counters_accumulate_per_key() {
        let mut m = MetricsRegistry::new();
        m.inc("steals", Some(0));
        m.inc("steals", Some(0));
        m.inc("steals", Some(1));
        m.inc("rollovers", None);
        assert_eq!(m.counter("steals", Some(0)), 2);
        assert_eq!(m.counter("steals", Some(1)), 1);
        assert_eq!(m.counter("rollovers", None), 1);
        assert_eq!(m.counter("steals", None), 0, "tenant is part of the key");
        assert_eq!(m.counter("absent", Some(0)), 0);
    }

    #[test]
    fn histograms_and_series_record() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        for v in [10, 20, 30] {
            m.observe("lat", Some(0), v);
        }
        let h = m.histogram("lat", Some(0)).unwrap();
        assert_eq!(h.total(), 3);
        assert!((h.mean() - 20.0).abs() < 16.0, "bucketed mean near 20");

        m.sample("depth", 0, 1.0);
        m.sample("depth", 10, 2.0);
        assert_eq!(m.series("depth").unwrap().len(), 2);
        assert!(m.series("absent").is_none());
        assert!(!m.is_empty());
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let mut m = MetricsRegistry::new();
        m.inc("c", None);
        m.observe("h", Some(1), 5);
        m.sample("s", 7, 0.5);
        let json = m.to_json();
        assert_eq!(json.get("counters").unwrap().get("c").unwrap().as_u64(), Some(1));
        let h = json.get("histograms").unwrap().get("h[t1]").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            json.get("series").unwrap().get("s").unwrap().as_array().unwrap().len(),
            1
        );
    }
}
