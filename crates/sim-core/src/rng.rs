//! Deterministic random-number generation for simulations.
//!
//! [`SimRng`] is a tiny splitmix64/xorshift-style generator. We deliberately
//! avoid thread-local or OS entropy: every stochastic decision in the
//! simulator derives from an explicit seed so whole experiments replay
//! bit-identically. The workload generators (`walksteal-workloads`) draw from
//! this same type, so the entire workspace is free of external RNG crates
//! and builds with zero network access.

/// A small deterministic pseudo-random generator (xorshift64* seeded through
/// splitmix64).
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from `seed`. Any seed (including zero) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Run the seed through splitmix64 once so that small, similar seeds
        // (0, 1, 2, ...) yield uncorrelated streams, and so state is nonzero.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng {
            state: z | 1, // xorshift state must be nonzero
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used to give each (tenant, SM, warp) its own stream without the
    /// streams being shifted copies of one another.
    #[must_use]
    pub fn split(&self, stream: u64) -> SimRng {
        SimRng::new(self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // simulation purposes and avoids a division on the hot path.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A geometrically distributed count with success probability `p`
    /// (mean `1/p`), clamped to at least 1.
    ///
    /// Used for, e.g., compute-burst lengths between memory instructions.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn next_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        if p >= 1.0 {
            return 1;
        }
        self.next_geometric_ln((1.0 - p).ln())
    }

    /// [`next_geometric`](Self::next_geometric) with `(1 - p).ln()`
    /// precomputed by the caller. Callers drawing many variates with a fixed
    /// `p` (e.g. one per warp op) hoist the constant out of the loop; the
    /// result is bit-identical since the same `f64` feeds the division.
    pub fn next_geometric_ln(&mut self, ln_one_minus_p: f64) -> u64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let n = (u.ln() / ln_one_minus_p).ceil();
        (n as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn split_streams_are_independent() {
        let root = SimRng::new(99);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let same = (0..100).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SimRng::new(123);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = SimRng::new(77);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.next_geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut r = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(r.next_geometric(1.0), 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(8);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.1)));
    }
}
