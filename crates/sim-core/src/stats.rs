//! Statistics primitives used across the simulator and the evaluation
//! harness: counters, running means, histograms, and the geometric /
//! arithmetic means the paper reports.

use std::fmt;

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::Counter;
///
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter (saturating).
    pub fn add(&mut self, n: u64) {
        self.count = self.count.saturating_add(n);
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// The current count.
    #[must_use]
    pub fn count(self) -> u64 {
        self.count
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.count = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.count)
    }
}

/// Incrementally computed arithmetic mean over `f64` samples.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.push(1.0);
/// m.push(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// Creates an empty running mean.
    #[must_use]
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        self.sum += sample;
        self.n += 1;
    }

    /// The arithmetic mean of all samples, or 0.0 if none were pushed.
    #[must_use]
    pub fn mean(self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// The sum of all samples.
    #[must_use]
    pub fn sum(self) -> f64 {
        self.sum
    }

    /// Number of samples.
    #[must_use]
    pub fn len(self) -> u64 {
        self.n
    }

    /// Whether no samples have been pushed.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.n == 0
    }
}

/// A fixed-bucket histogram of integer samples (e.g., queue depths or
/// latencies). The final bucket is an overflow bucket.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::Histogram;
///
/// let mut h = Histogram::new(4, 10); // 4 buckets of width 10: [0,10), [10,20), ...
/// h.record(5);
/// h.record(35);
/// h.record(1000); // lands in the overflow bucket (the last one)
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(3), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    width: u64,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `width` is zero.
    #[must_use]
    pub fn new(buckets: usize, width: u64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(width > 0, "bucket width must be positive");
        Histogram {
            buckets: vec![0; buckets],
            width,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = ((sample / self.width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
        self.sum += u128::from(sample);
        self.max = self.max.max(sample);
    }

    /// Count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded samples, or 0.0 if none.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample (0 if none).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-th percentile (`0.0..=1.0`) using bucket lower bounds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return i as u64 * self.width;
            }
        }
        (self.buckets.len() as u64 - 1) * self.width
    }
}

/// Geometric mean of strictly positive values; non-positive entries are
/// skipped. Returns 1.0 for an empty (or all-skipped) input — the identity of
/// a normalized-speedup product.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::gmean;
///
/// let g = gmean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(gmean(&[]), 1.0);
/// ```
#[must_use]
pub fn gmean(values: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean; returns 0.0 for an empty input.
///
/// # Examples
///
/// ```
/// use walksteal_sim_core::amean;
///
/// assert_eq!(amean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(amean(&[]), 0.0);
/// ```
#[must_use]
pub fn amean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.count(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.count(), 10);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.count(), u64::MAX);
    }

    #[test]
    fn running_mean_empty_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
        assert!(RunningMean::new().is_empty());
    }

    #[test]
    fn running_mean_accumulates() {
        let mut m = RunningMean::new();
        for i in 1..=10 {
            m.push(i as f64);
        }
        assert_eq!(m.mean(), 5.5);
        assert_eq!(m.sum(), 55.0);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(3, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(25);
        h.record(99999);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max(), 99999);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(10, 1);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(100, 1);
        for i in 0..100 {
            h.record(i);
        }
        assert_eq!(h.percentile(0.5), 49);
        assert_eq!(h.percentile(1.0), 99);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn histogram_empty_percentile_is_zero() {
        let h = Histogram::new(4, 2);
        assert_eq!(h.percentile(0.9), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        let _ = Histogram::new(0, 1);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = gmean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_skips_nonpositive() {
        let g = gmean(&[2.0, 0.0, -3.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn amean_basics() {
        assert_eq!(amean(&[4.0]), 4.0);
        assert!((amean(&[1.0, 2.0]) - 1.5).abs() < 1e-12);
    }
}
