//! Walk-lifecycle tracing: typed events, filters, and pluggable sinks.
//!
//! The simulator's hot paths report what they are doing through an
//! [`Observer`] — a bundle of an optional [`Tracer`] sink and an optional
//! [`crate::metrics::MetricsRegistry`]. Both default to *off*, in which case
//! every instrumentation site reduces to a single branch on a `None`
//! discriminant: no event is constructed, nothing allocates, and simulation
//! output is bit-identical to an uninstrumented build.
//!
//! Events are typed ([`TraceEvent`]) and serialize to one JSON object per
//! line (JSONL) via [`TraceEvent::to_json`] / [`TraceEvent::from_json`], so a
//! trace written by [`JsonlTracer`] can be re-read and *replayed*: the
//! `timeline` renderer in the experiments crate reconstructs the paper's
//! PW-share curve (Fig. 9) and interleave breakdown (Table III) exactly from
//! the event stream alone.
//!
//! # Examples
//!
//! ```
//! use walksteal_sim_core::trace::{RingTracer, TraceEvent, TraceFilter, Tracer};
//!
//! let filter: TraceFilter = "walk,steal".parse().unwrap();
//! let mut ring = RingTracer::unbounded().with_filter(filter);
//! let ev = TraceEvent::WalkEnqueue { cycle: 7, tenant: 0, vpn: 42 };
//! assert!(ring.wants(ev.kind()));
//! ring.record(&ev);
//! assert_eq!(ring.events(), vec![ev]);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::str::FromStr;

use crate::json::Json;
use crate::metrics::SharedMetrics;

/// Category of a [`TraceEvent`], used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Walk lifecycle: enqueue, reject, walker-assign, complete.
    Walk,
    /// A walker servicing a foreign tenant's walk.
    Steal,
    /// Page-walk-cache probes.
    Pwc,
    /// Per-level PTE fetches issued to the memory system.
    Pte,
    /// DWS++ epoch rollovers (`ENQ_EPOCH` rates, `DIFF_THRES` updates).
    Epoch,
    /// Periodic queue-depth / walker-occupancy samples.
    Queue,
    /// Run bracketing (start / end).
    Meta,
}

impl TraceKind {
    /// Every kind, in serialization order.
    pub const ALL: [TraceKind; 7] = [
        TraceKind::Walk,
        TraceKind::Steal,
        TraceKind::Pwc,
        TraceKind::Pte,
        TraceKind::Epoch,
        TraceKind::Queue,
        TraceKind::Meta,
    ];

    fn bit(self) -> u8 {
        match self {
            TraceKind::Walk => 1 << 0,
            TraceKind::Steal => 1 << 1,
            TraceKind::Pwc => 1 << 2,
            TraceKind::Pte => 1 << 3,
            TraceKind::Epoch => 1 << 4,
            TraceKind::Queue => 1 << 5,
            TraceKind::Meta => 1 << 6,
        }
    }

    /// The name used by [`TraceFilter`]'s `FromStr` syntax.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Walk => "walk",
            TraceKind::Steal => "steal",
            TraceKind::Pwc => "pwc",
            TraceKind::Pte => "pte",
            TraceKind::Epoch => "epoch",
            TraceKind::Queue => "queue",
            TraceKind::Meta => "meta",
        }
    }
}

/// A set of [`TraceKind`]s, parsed from comma-separated names
/// (`"walk,epoch,steal"`, or `"all"`).
///
/// [`TraceKind::Meta`] events (run start/end) are always included — a trace
/// without its run bracket cannot be replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter(u8);

impl TraceFilter {
    /// Every event kind.
    pub const ALL: TraceFilter = TraceFilter(0x7f);

    /// Only the run bracket (Meta), which every filter includes.
    pub const NONE: TraceFilter = TraceFilter(1 << 6);

    /// Whether `kind` passes this filter.
    #[must_use]
    pub fn contains(self, kind: TraceKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// This filter plus `kind`.
    #[must_use]
    pub fn with(self, kind: TraceKind) -> TraceFilter {
        TraceFilter(self.0 | kind.bit())
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::ALL
    }
}

impl fmt::Display for TraceFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TraceFilter::ALL {
            return write!(f, "all");
        }
        let mut first = true;
        for kind in TraceKind::ALL {
            if self.contains(kind) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{}", kind.name())?;
                first = false;
            }
        }
        Ok(())
    }
}

impl FromStr for TraceFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut filter = TraceFilter::NONE;
        for part in s.split(',') {
            let part = part.trim();
            match part.to_ascii_lowercase().as_str() {
                "" => continue,
                "all" => return Ok(TraceFilter::ALL),
                name => {
                    let kind = TraceKind::ALL
                        .into_iter()
                        .find(|k| k.name() == name)
                        .ok_or_else(|| {
                            format!(
                                "unknown trace kind {part:?} (expected one of \
                                 walk, steal, pwc, pte, epoch, queue, meta, all)"
                            )
                        })?;
                    filter = filter.with(kind);
                }
            }
        }
        Ok(filter)
    }
}

/// A typed event from the walk lifecycle. One event serializes to one JSONL
/// line; see [`TraceEvent::to_json`] for the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Simulation started.
    RunStart {
        /// Always 0; present so every line carries a cycle.
        cycle: u64,
        /// Co-running tenants.
        n_tenants: u32,
        /// Page-table walkers in the subsystem.
        n_walkers: u32,
        /// RNG seed of the run.
        seed: u64,
    },
    /// A walk was accepted into the subsystem.
    WalkEnqueue {
        /// Arrival cycle.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Virtual page being translated.
        vpn: u64,
    },
    /// A walk was rejected (queue full; the requester will retry).
    WalkReject {
        /// Cycle of the rejected attempt.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Virtual page being translated.
        vpn: u64,
    },
    /// A walker began servicing a walk.
    WalkAssign {
        /// Dispatch cycle.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Virtual page being translated.
        vpn: u64,
        /// Servicing walker.
        walker: u8,
        /// Whether the walker is owned by another tenant.
        stolen: bool,
        /// Cycles spent queued before dispatch.
        queue_wait: u64,
        /// Other-tenant walks dispatched onto eligible walkers while this
        /// one waited (the paper's interleaving metric, per walk).
        interleaved: u64,
    },
    /// A walker owned by one tenant picked up another tenant's walk.
    /// Emitted alongside the corresponding stolen [`TraceEvent::WalkAssign`].
    Steal {
        /// Dispatch cycle.
        cycle: u64,
        /// The walker doing the stealing.
        walker: u8,
        /// The walker's owner (the thief tenant).
        owner: u8,
        /// The tenant whose walk was stolen (the beneficiary).
        tenant: u8,
        /// Virtual page of the stolen walk.
        vpn: u64,
    },
    /// Page-walk-cache probe at dispatch.
    PwcProbe {
        /// Dispatch cycle.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Virtual page being translated.
        vpn: u64,
        /// Top page-table levels skipped thanks to the PWC hit.
        hit_levels: u8,
        /// Total levels in this tenant's page table.
        levels: u8,
    },
    /// One page-table-entry fetch issued to the memory system.
    PteFetch {
        /// Cycle the fetch was issued.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Servicing walker.
        walker: u8,
        /// Page-table level (0 = root).
        level: u8,
        /// Memory-system latency of the fetch.
        latency: u64,
    },
    /// A walk finished.
    WalkComplete {
        /// Completion cycle.
        cycle: u64,
        /// Requesting tenant.
        tenant: u8,
        /// Translated virtual page.
        vpn: u64,
        /// Walker that serviced it.
        walker: u8,
        /// Whether a foreign-owned walker serviced it.
        stolen: bool,
        /// Cycles from arrival to completion.
        latency: u64,
    },
    /// DWS++ epoch rollover: per-tenant `ENQ_EPOCH` arrival counts for the
    /// epoch just ended, and the resulting `DIFF_THRES`.
    EpochUpdate {
        /// Cycle of the arrival that closed the epoch.
        cycle: u64,
        /// `ENQ_EPOCH` per tenant, before the reset.
        enq_epoch: Vec<u32>,
        /// New `DIFF_THRES`; `None` disables imbalance stealing this epoch.
        diff_thres: Option<f64>,
    },
    /// Periodic sample of queue depth and walker occupancy.
    QueueSample {
        /// Sample cycle.
        cycle: u64,
        /// Walks queued (not in service).
        queued: u64,
        /// Walkers busy.
        busy: u64,
        /// Walkers busy servicing each tenant.
        busy_per_tenant: Vec<u32>,
    },
    /// Simulation ended.
    RunEnd {
        /// Final cycle (the run's `cycles` figure).
        cycle: u64,
        /// Events processed by the event loop.
        events: u64,
    },
}

impl TraceEvent {
    /// The filtering category of this event.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::RunStart { .. } | TraceEvent::RunEnd { .. } => TraceKind::Meta,
            TraceEvent::WalkEnqueue { .. }
            | TraceEvent::WalkReject { .. }
            | TraceEvent::WalkAssign { .. }
            | TraceEvent::WalkComplete { .. } => TraceKind::Walk,
            TraceEvent::Steal { .. } => TraceKind::Steal,
            TraceEvent::PwcProbe { .. } => TraceKind::Pwc,
            TraceEvent::PteFetch { .. } => TraceKind::Pte,
            TraceEvent::EpochUpdate { .. } => TraceKind::Epoch,
            TraceEvent::QueueSample { .. } => TraceKind::Queue,
        }
    }

    /// The cycle stamped on this event.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::RunStart { cycle, .. }
            | TraceEvent::WalkEnqueue { cycle, .. }
            | TraceEvent::WalkReject { cycle, .. }
            | TraceEvent::WalkAssign { cycle, .. }
            | TraceEvent::Steal { cycle, .. }
            | TraceEvent::PwcProbe { cycle, .. }
            | TraceEvent::PteFetch { cycle, .. }
            | TraceEvent::WalkComplete { cycle, .. }
            | TraceEvent::EpochUpdate { cycle, .. }
            | TraceEvent::QueueSample { cycle, .. }
            | TraceEvent::RunEnd { cycle, .. } => *cycle,
        }
    }

    /// Serializes to a JSON object with an `"ev"` discriminant, e.g.
    /// `{"ev":"walk_assign","cycle":12,"tenant":0,...}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        fn obj(ev: &str, fields: Vec<(String, Json)>) -> Json {
            let mut all = vec![("ev".to_string(), Json::Str(ev.to_string()))];
            all.extend(fields);
            Json::Obj(all)
        }
        fn u(v: u64) -> Json {
            Json::UInt(v)
        }
        match self {
            TraceEvent::RunStart {
                cycle,
                n_tenants,
                n_walkers,
                seed,
            } => obj(
                "run_start",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("n_tenants".into(), u(u64::from(*n_tenants))),
                    ("n_walkers".into(), u(u64::from(*n_walkers))),
                    ("seed".into(), u(*seed)),
                ],
            ),
            TraceEvent::WalkEnqueue { cycle, tenant, vpn } => obj(
                "walk_enqueue",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                ],
            ),
            TraceEvent::WalkReject { cycle, tenant, vpn } => obj(
                "walk_reject",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                ],
            ),
            TraceEvent::WalkAssign {
                cycle,
                tenant,
                vpn,
                walker,
                stolen,
                queue_wait,
                interleaved,
            } => obj(
                "walk_assign",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                    ("walker".into(), u(u64::from(*walker))),
                    ("stolen".into(), Json::Bool(*stolen)),
                    ("queue_wait".into(), u(*queue_wait)),
                    ("interleaved".into(), u(*interleaved)),
                ],
            ),
            TraceEvent::Steal {
                cycle,
                walker,
                owner,
                tenant,
                vpn,
            } => obj(
                "steal",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("walker".into(), u(u64::from(*walker))),
                    ("owner".into(), u(u64::from(*owner))),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                ],
            ),
            TraceEvent::PwcProbe {
                cycle,
                tenant,
                vpn,
                hit_levels,
                levels,
            } => obj(
                "pwc_probe",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                    ("hit_levels".into(), u(u64::from(*hit_levels))),
                    ("levels".into(), u(u64::from(*levels))),
                ],
            ),
            TraceEvent::PteFetch {
                cycle,
                tenant,
                walker,
                level,
                latency,
            } => obj(
                "pte_fetch",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("walker".into(), u(u64::from(*walker))),
                    ("level".into(), u(u64::from(*level))),
                    ("latency".into(), u(*latency)),
                ],
            ),
            TraceEvent::WalkComplete {
                cycle,
                tenant,
                vpn,
                walker,
                stolen,
                latency,
            } => obj(
                "walk_complete",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("tenant".into(), u(u64::from(*tenant))),
                    ("vpn".into(), u(*vpn)),
                    ("walker".into(), u(u64::from(*walker))),
                    ("stolen".into(), Json::Bool(*stolen)),
                    ("latency".into(), u(*latency)),
                ],
            ),
            TraceEvent::EpochUpdate {
                cycle,
                enq_epoch,
                diff_thres,
            } => obj(
                "epoch_update",
                vec![
                    ("cycle".into(), u(*cycle)),
                    (
                        "enq_epoch".into(),
                        Json::Arr(enq_epoch.iter().map(|&c| u(u64::from(c))).collect()),
                    ),
                    (
                        "diff_thres".into(),
                        diff_thres.map_or(Json::Null, Json::Num),
                    ),
                ],
            ),
            TraceEvent::QueueSample {
                cycle,
                queued,
                busy,
                busy_per_tenant,
            } => obj(
                "queue_sample",
                vec![
                    ("cycle".into(), u(*cycle)),
                    ("queued".into(), u(*queued)),
                    ("busy".into(), u(*busy)),
                    (
                        "busy_per_tenant".into(),
                        Json::Arr(busy_per_tenant.iter().map(|&c| u(u64::from(c))).collect()),
                    ),
                ],
            ),
            TraceEvent::RunEnd { cycle, events } => obj(
                "run_end",
                vec![("cycle".into(), u(*cycle)), ("events".into(), u(*events))],
            ),
        }
    }

    /// Deserializes an event written by [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the object is missing its `"ev"`
    /// discriminant or a required field.
    pub fn from_json(json: &Json) -> Result<TraceEvent, String> {
        fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace event missing field {key:?}"))
        }
        fn u8_field(json: &Json, key: &str) -> Result<u8, String> {
            u64_field(json, key).and_then(|v| {
                u8::try_from(v).map_err(|_| format!("trace field {key:?} out of range: {v}"))
            })
        }
        fn u32_field(json: &Json, key: &str) -> Result<u32, String> {
            u64_field(json, key).and_then(|v| {
                u32::try_from(v).map_err(|_| format!("trace field {key:?} out of range: {v}"))
            })
        }
        fn bool_field(json: &Json, key: &str) -> Result<bool, String> {
            json.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("trace event missing field {key:?}"))
        }
        fn u32_arr(json: &Json, key: &str) -> Result<Vec<u32>, String> {
            json.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("trace event missing field {key:?}"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| format!("trace field {key:?} has a non-u32 element"))
                })
                .collect()
        }
        let ev = json
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| "trace event missing \"ev\" discriminant".to_string())?;
        let cycle = u64_field(json, "cycle")?;
        match ev {
            "run_start" => Ok(TraceEvent::RunStart {
                cycle,
                n_tenants: u32_field(json, "n_tenants")?,
                n_walkers: u32_field(json, "n_walkers")?,
                seed: u64_field(json, "seed")?,
            }),
            "walk_enqueue" => Ok(TraceEvent::WalkEnqueue {
                cycle,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
            }),
            "walk_reject" => Ok(TraceEvent::WalkReject {
                cycle,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
            }),
            "walk_assign" => Ok(TraceEvent::WalkAssign {
                cycle,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
                walker: u8_field(json, "walker")?,
                stolen: bool_field(json, "stolen")?,
                queue_wait: u64_field(json, "queue_wait")?,
                interleaved: u64_field(json, "interleaved")?,
            }),
            "steal" => Ok(TraceEvent::Steal {
                cycle,
                walker: u8_field(json, "walker")?,
                owner: u8_field(json, "owner")?,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
            }),
            "pwc_probe" => Ok(TraceEvent::PwcProbe {
                cycle,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
                hit_levels: u8_field(json, "hit_levels")?,
                levels: u8_field(json, "levels")?,
            }),
            "pte_fetch" => Ok(TraceEvent::PteFetch {
                cycle,
                tenant: u8_field(json, "tenant")?,
                walker: u8_field(json, "walker")?,
                level: u8_field(json, "level")?,
                latency: u64_field(json, "latency")?,
            }),
            "walk_complete" => Ok(TraceEvent::WalkComplete {
                cycle,
                tenant: u8_field(json, "tenant")?,
                vpn: u64_field(json, "vpn")?,
                walker: u8_field(json, "walker")?,
                stolen: bool_field(json, "stolen")?,
                latency: u64_field(json, "latency")?,
            }),
            "epoch_update" => Ok(TraceEvent::EpochUpdate {
                cycle,
                enq_epoch: u32_arr(json, "enq_epoch")?,
                diff_thres: match json.get("diff_thres") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_f64()
                            .ok_or_else(|| "trace field \"diff_thres\" not a number".to_string())?,
                    ),
                },
            }),
            "queue_sample" => Ok(TraceEvent::QueueSample {
                cycle,
                queued: u64_field(json, "queued")?,
                busy: u64_field(json, "busy")?,
                busy_per_tenant: u32_arr(json, "busy_per_tenant")?,
            }),
            "run_end" => Ok(TraceEvent::RunEnd {
                cycle,
                events: u64_field(json, "events")?,
            }),
            other => Err(format!("unknown trace event type {other:?}")),
        }
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Instrumentation sites call [`Observer::trace`], which constructs the
/// event only when a tracer is attached *and* [`Tracer::wants`] passes —
/// `wants` must therefore be cheap.
pub trait Tracer {
    /// Whether this sink wants events of `kind`. Called before the event is
    /// constructed; return `false` to skip construction entirely.
    fn wants(&self, kind: TraceKind) -> bool;

    /// Records one event. Only called when [`Tracer::wants`] returned true.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output. Called at run end.
    fn flush(&mut self) {}
}

/// A tracer that records nothing. Attaching it is equivalent to attaching no
/// tracer at all; it exists so generic code always has a `Tracer` to name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn wants(&self, _kind: TraceKind) -> bool {
        false
    }

    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Writes one JSON object per line (JSONL) to any [`Write`] sink.
///
/// Write errors latch: the first error stops further output and is
/// retrievable via [`JsonlTracer::io_error`].
pub struct JsonlTracer<W: Write> {
    out: W,
    filter: TraceFilter,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// A tracer writing every event kind to `out`.
    pub fn new(out: W) -> Self {
        JsonlTracer {
            out,
            filter: TraceFilter::ALL,
            lines: 0,
            error: None,
        }
    }

    /// Restricts the recorded kinds to `filter`.
    #[must_use]
    pub fn with_filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first write error, if any output failed.
    #[must_use]
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first latched write error, or the flush error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Tracer for JsonlTracer<W> {
    fn wants(&self, kind: TraceKind) -> bool {
        self.error.is_none() && self.filter.contains(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{}", ev.to_json().dump()) {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// An in-memory ring buffer of the last `capacity` events.
///
/// Clones share the buffer, so tests can keep a handle while the simulation
/// owns the tracer:
///
/// ```
/// use walksteal_sim_core::trace::{RingTracer, TraceEvent, Tracer};
///
/// let ring = RingTracer::unbounded();
/// let mut sink = ring.clone(); // handed to the simulation
/// sink.record(&TraceEvent::RunEnd { cycle: 10, events: 3 });
/// assert_eq!(ring.events().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: Rc<RefCell<VecDeque<TraceEvent>>>,
    capacity: usize,
    filter: TraceFilter,
}

impl RingTracer {
    /// A ring keeping only the last `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            buf: Rc::new(RefCell::new(VecDeque::new())),
            capacity,
            filter: TraceFilter::ALL,
        }
    }

    /// A ring that keeps every event.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Restricts the recorded kinds to `filter`.
    #[must_use]
    pub fn with_filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// A snapshot of the buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }
}

impl Tracer for RingTracer {
    fn wants(&self, kind: TraceKind) -> bool {
        self.filter.contains(kind)
    }

    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() >= self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// The observability bundle threaded through the simulator: an optional
/// [`Tracer`] and an optional [`SharedMetrics`] registry handle.
///
/// With both off (the default), every instrumentation site is a branch on a
/// `None` — no event construction, no allocation, bit-identical output.
#[derive(Default)]
pub struct Observer {
    /// The attached trace sink, if any.
    pub tracer: Option<Box<dyn Tracer>>,
    /// The attached metrics registry handle, if any.
    pub metrics: Option<SharedMetrics>,
}

impl Observer {
    /// An observer with tracing and metrics off.
    #[must_use]
    pub fn off() -> Self {
        Observer::default()
    }

    /// An observer with the given trace sink attached.
    #[must_use]
    pub fn with_tracer(tracer: Box<dyn Tracer>) -> Self {
        Observer {
            tracer: Some(tracer),
            metrics: None,
        }
    }

    /// Whether both tracing and metrics are off.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.tracer.is_none() && self.metrics.is_none()
    }

    /// Records the event built by `f` if a tracer is attached and wants
    /// `kind`. `f` runs only in that case, so instrumentation sites pay one
    /// branch when tracing is off.
    #[inline]
    pub fn trace(&mut self, kind: TraceKind, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(kind) {
                let ev = f();
                t.record(&ev);
            }
        }
    }

    /// The metrics handle, when metrics collection is on.
    #[inline]
    pub fn metrics(&self) -> Option<&SharedMetrics> {
        self.metrics.as_ref()
    }

    /// Flushes the attached tracer, if any.
    pub fn flush(&mut self) {
        if let Some(t) = self.tracer.as_mut() {
            t.flush();
        }
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("tracer", &self.tracer.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                cycle: 0,
                n_tenants: 2,
                n_walkers: 16,
                seed: 42,
            },
            TraceEvent::WalkEnqueue {
                cycle: 5,
                tenant: 0,
                vpn: 100,
            },
            TraceEvent::WalkReject {
                cycle: 6,
                tenant: 1,
                vpn: 200,
            },
            TraceEvent::WalkAssign {
                cycle: 7,
                tenant: 0,
                vpn: 100,
                walker: 3,
                stolen: true,
                queue_wait: 2,
                interleaved: 1,
            },
            TraceEvent::Steal {
                cycle: 7,
                walker: 3,
                owner: 1,
                tenant: 0,
                vpn: 100,
            },
            TraceEvent::PwcProbe {
                cycle: 7,
                tenant: 0,
                vpn: 100,
                hit_levels: 2,
                levels: 4,
            },
            TraceEvent::PteFetch {
                cycle: 9,
                tenant: 0,
                walker: 3,
                level: 2,
                latency: 150,
            },
            TraceEvent::WalkComplete {
                cycle: 300,
                tenant: 0,
                vpn: 100,
                walker: 3,
                stolen: true,
                latency: 295,
            },
            TraceEvent::EpochUpdate {
                cycle: 400,
                enq_epoch: vec![120, 80],
                diff_thres: Some(0.4),
            },
            TraceEvent::EpochUpdate {
                cycle: 600,
                enq_epoch: vec![199, 1],
                diff_thres: None,
            },
            TraceEvent::QueueSample {
                cycle: 500,
                queued: 12,
                busy: 16,
                busy_per_tenant: vec![9, 7],
            },
            TraceEvent::RunEnd {
                cycle: 1000,
                events: 12345,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for ev in sample_events() {
            let json = ev.to_json();
            let back = TraceEvent::from_json(&json).expect("round trip");
            assert_eq!(back, ev, "mismatch for {}", json.dump());
            // And through the textual form, as the JSONL reader will see it.
            let reparsed = Json::parse(&json.dump()).expect("reparse");
            assert_eq!(TraceEvent::from_json(&reparsed).unwrap(), ev);
        }
    }

    #[test]
    fn filter_parses_and_displays() {
        let f: TraceFilter = "walk,epoch,steal".parse().unwrap();
        assert!(f.contains(TraceKind::Walk));
        assert!(f.contains(TraceKind::Epoch));
        assert!(f.contains(TraceKind::Steal));
        assert!(!f.contains(TraceKind::Pte));
        assert!(!f.contains(TraceKind::Queue));
        // Meta is always included so traces stay replayable.
        assert!(f.contains(TraceKind::Meta));
        assert_eq!(f.to_string(), "walk,steal,epoch,meta");
        assert_eq!(f.to_string().parse::<TraceFilter>().unwrap(), f);

        assert_eq!("all".parse::<TraceFilter>().unwrap(), TraceFilter::ALL);
        assert_eq!(TraceFilter::ALL.to_string(), "all");
        assert!(" Walk , STEAL ".parse::<TraceFilter>().is_ok());
        assert!("walk,bogus".parse::<TraceFilter>().is_err());
    }

    #[test]
    fn jsonl_tracer_writes_one_line_per_event() {
        let mut tracer = JsonlTracer::new(Vec::new());
        for ev in sample_events() {
            if tracer.wants(ev.kind()) {
                tracer.record(&ev);
            }
        }
        assert_eq!(tracer.lines(), sample_events().len() as u64);
        let bytes = tracer.finish().expect("no io errors on a Vec");
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn jsonl_tracer_respects_filter() {
        let filter: TraceFilter = "walk".parse().unwrap();
        let mut tracer = JsonlTracer::new(Vec::new()).with_filter(filter);
        for ev in sample_events() {
            if tracer.wants(ev.kind()) {
                tracer.record(&ev);
            }
        }
        let bytes = tracer.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        for line in text.lines() {
            let ev = TraceEvent::from_json(&Json::parse(line).unwrap()).unwrap();
            assert!(matches!(ev.kind(), TraceKind::Walk | TraceKind::Meta));
        }
    }

    #[test]
    fn ring_tracer_shares_buffer_and_caps_length() {
        let ring = RingTracer::new(3);
        let mut sink = ring.clone();
        for ev in sample_events() {
            sink.record(&ev);
        }
        assert_eq!(ring.len(), 3);
        let tail = sample_events();
        assert_eq!(ring.events(), tail[tail.len() - 3..].to_vec());
    }

    #[test]
    fn observer_off_never_builds_events() {
        let mut obs = Observer::off();
        assert!(obs.is_off());
        obs.trace(TraceKind::Walk, || panic!("built an event while off"));

        let mut obs = Observer::with_tracer(Box::new(NullTracer));
        obs.trace(TraceKind::Walk, || panic!("NullTracer wants nothing"));
    }
}
