//! Related-work translation designs raced against DWS/DWS++ ("policy
//! arena").
//!
//! Three L2-TLB organizations from the multi-tenant-translation literature,
//! each modeled beside the paper's own presets and selectable per
//! [`PolicyPreset`](../../walksteal_multitenant/config/enum.PolicyPreset.html):
//!
//! * [`SubEntryTlb`] — MIG-style sub-entry sharing (arXiv 2404.18361): each
//!   physical L2 TLB entry covers a 4-page aligned virtual region and holds
//!   one sub-entry per page; sub-entries from *different tenants* may share
//!   one physical entry when their region tags coincide, and replacement is
//!   sharing-aware (shared entries are evicted last).
//! * [`MosaicTlb`] — Mosaic-style transparent large pages
//!   (arXiv 1804.11265): a contiguity-reserving allocator keeps each
//!   8-page-aligned group physically contiguous, so once enough base pages
//!   of a group are filled the range *coalesces* into a fully-associative
//!   large-page array; evicting a coalesced range *splinters* it back into
//!   base entries.
//! * [`DeadGuardTlb`] — dead-entry prediction (arXiv 2606.00486): a small
//!   table of saturating counters learns which fill signatures produce
//!   entries that die without reuse, and bypasses those fills so live
//!   entries keep their ways.
//!
//! All three expose the same probe/fill/invalidate/share surface as the SoA
//! [`Tlb`] through the [`ArenaTlb`] facade, so the simulation's L2 seam
//! selects an organization per preset without touching the hot path of the
//! existing presets.

use walksteal_sim_core::{Cycle, FnvMap, Ppn, SimRng, TenantId, Vpn};

use crate::page::PageSize;
use crate::tlb::{Tlb, TlbConfig};

/// Which arena organization a preset selects (stored in `GpuConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArenaTlbKind {
    /// [`SubEntryTlb`]: sub-entry sharing for MIG-style partitioning.
    SubEntry,
    /// [`MosaicTlb`]: transparent large-page coalescing.
    Mosaic,
    /// [`DeadGuardTlb`]: dead-entry fill prediction.
    DeadGuard,
}

/// Valid bit in a packed sub-entry meta word; the low byte is the tenant id.
const META_VALID: u16 = 0x100;

/// Sub-entries per physical [`SubEntryTlb`] entry (a 4-page region).
pub const SUB_ENTRIES: usize = 4;

/// Pages per Mosaic coalescing group; the reservation allocator keeps each
/// aligned group of this many base pages physically contiguous.
pub const MOSAIC_GROUP: u64 = 8;

/// Distinct base-page fills of one group required before it coalesces.
pub const MOSAIC_COALESCE_THRESHOLD: u32 = 4;

/// Entries in the fully-associative large-page array of a [`MosaicTlb`].
pub const MOSAIC_LARGE_ENTRIES: usize = 64;

/// An L2 TLB whose entries are split into per-page sub-entries with
/// sharing-aware replacement.
///
/// Geometry: `cfg.entries()` *physical* entries, each tagged by a 4-page
/// aligned region (`vpn >> 2`) and holding [`SUB_ENTRIES`] sub-entries, one
/// per page of the region (`vpn & 3`). Capacity in translations is thus 4×
/// the same-geometry [`Tlb`] when spatial locality cooperates. A sub-entry
/// belongs to one tenant; an entry whose sub-entries span tenants is
/// *shared* and protected by replacement (victim order: invalid entries,
/// then unshared LRU, then shared LRU).
///
/// # Examples
///
/// ```
/// use walksteal_vm::{Replacement, SubEntryTlb, TlbConfig};
/// use walksteal_sim_core::{Cycle, Ppn, TenantId, Vpn};
///
/// let cfg = TlbConfig { sets: 8, ways: 4, replacement: Replacement::Random };
/// let mut t = SubEntryTlb::new(cfg, 2);
/// t.fill(TenantId(0), Vpn(8), Ppn(1), Cycle(0));
/// t.fill(TenantId(0), Vpn(9), Ppn(2), Cycle(0)); // same region, same entry
/// assert_eq!(t.probe(TenantId(0), Vpn(9)), Some(Ppn(2)));
/// // A second tenant in the same region shares the physical entry.
/// t.fill(TenantId(1), Vpn(10), Ppn(3), Cycle(0));
/// assert_eq!(t.shared_fills(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SubEntryTlb {
    cfg: TlbConfig,
    /// Region tag per physical entry (`vpn >> 2`).
    tags: Vec<u64>,
    /// Packed `valid|tenant` word per sub-entry (`entries * SUB_ENTRIES`).
    sub_meta: Vec<u16>,
    sub_ppn: Vec<Ppn>,
    /// Cross-tenant flag per physical entry, kept in sync by fills and
    /// invalidations: set iff the entry's valid sub-entries span > 1 tenant.
    shared: Vec<bool>,
    last_use: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Fills that joined a tenant's sub-entry to an entry already holding
    /// another tenant's — the design's capacity win.
    shared_fills: u64,
    /// Valid sub-entries per tenant, kept incrementally.
    occupancy: Vec<usize>,
    occupancy_integral: Vec<f64>,
    last_update: Cycle,
    rng: SimRng,
}

impl SubEntryTlb {
    /// Creates an empty sub-entry TLB able to track `n_tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways` is zero, or
    /// `n_tenants` is zero.
    #[must_use]
    pub fn new(cfg: TlbConfig, n_tenants: usize) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be positive");
        assert!(n_tenants > 0, "need at least one tenant");
        let entries = cfg.entries();
        SubEntryTlb {
            cfg,
            tags: vec![0; entries],
            sub_meta: vec![0; entries * SUB_ENTRIES],
            sub_ppn: vec![Ppn(0); entries * SUB_ENTRIES],
            shared: vec![false; entries],
            last_use: vec![0; entries],
            tick: 0,
            hits: 0,
            misses: 0,
            shared_fills: 0,
            occupancy: vec![0; n_tenants],
            occupancy_integral: vec![0.0; n_tenants],
            last_update: Cycle::ZERO,
            rng: SimRng::new(0x5e7_1b ^ (cfg.sets * 31 + cfg.ways) as u64),
        }
    }

    fn entry_range(&self, region: u64) -> std::ops::Range<usize> {
        let set = (region as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    fn entry_valid(&self, e: usize) -> bool {
        self.sub_meta[e * SUB_ENTRIES..(e + 1) * SUB_ENTRIES]
            .iter()
            .any(|&m| m & META_VALID != 0)
    }

    /// Recomputes the cross-tenant flag of entry `e` from its sub-entries.
    fn refresh_shared(&mut self, e: usize) {
        let mut first: Option<u8> = None;
        let mut spans = false;
        for &m in &self.sub_meta[e * SUB_ENTRIES..(e + 1) * SUB_ENTRIES] {
            if m & META_VALID != 0 {
                let t = m as u8;
                match first {
                    None => first = Some(t),
                    Some(f) if f != t => spans = true,
                    Some(_) => {}
                }
            }
        }
        self.shared[e] = spans;
    }

    /// Sub-entry index of `(tenant, vpn)`, if resident.
    fn find(&self, tenant: TenantId, vpn: Vpn) -> Option<usize> {
        let region = vpn.0 >> 2;
        let slot = (vpn.0 & 3) as usize;
        let want = META_VALID | u16::from(tenant.0);
        for e in self.entry_range(region) {
            if self.tags[e] == region
                && self.entry_valid(e)
                && self.sub_meta[e * SUB_ENTRIES + slot] == want
            {
                return Some(e * SUB_ENTRIES + slot);
            }
        }
        None
    }

    /// Looks up `(tenant, vpn)`, updating LRU and hit/miss statistics.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        self.tick += 1;
        if let Some(i) = self.find(tenant, vpn) {
            self.last_use[i / SUB_ENTRIES] = self.tick;
            self.hits += 1;
            return Some(self.sub_ppn[i]);
        }
        self.misses += 1;
        None
    }

    fn advance_time(&mut self, now: Cycle) {
        let dt = now.saturating_since(self.last_update) as f64;
        if dt > 0.0 {
            for (acc, &occ) in self.occupancy_integral.iter_mut().zip(&self.occupancy) {
                *acc += occ as f64 * dt;
            }
            self.last_update = self.last_update.max(now);
        }
    }

    /// Inserts a translation at time `now`. A fill first tries the tenant's
    /// own sub-entry (in-place update), then a free sub-entry of any entry
    /// tagged with the region — joining a foreign tenant's entry marks it
    /// shared — and only then allocates a fresh physical entry, preferring
    /// to evict unshared entries.
    pub fn fill(&mut self, tenant: TenantId, vpn: Vpn, ppn: Ppn, now: Cycle) {
        self.advance_time(now);
        self.tick += 1;
        let tick = self.tick;
        let region = vpn.0 >> 2;
        let slot = (vpn.0 & 3) as usize;
        let want = META_VALID | u16::from(tenant.0);

        if let Some(i) = self.find(tenant, vpn) {
            self.sub_ppn[i] = ppn;
            self.last_use[i / SUB_ENTRIES] = tick;
            return;
        }
        // Join an existing entry for this region whose slot is free.
        for e in self.entry_range(region) {
            if self.tags[e] == region
                && self.entry_valid(e)
                && self.sub_meta[e * SUB_ENTRIES + slot] & META_VALID == 0
            {
                let foreign = self.sub_meta[e * SUB_ENTRIES..(e + 1) * SUB_ENTRIES]
                    .iter()
                    .any(|&m| m & META_VALID != 0 && m != want);
                self.sub_meta[e * SUB_ENTRIES + slot] = want;
                self.sub_ppn[e * SUB_ENTRIES + slot] = ppn;
                self.last_use[e] = tick;
                self.occupancy[tenant.index()] += 1;
                if foreign {
                    self.shared_fills += 1;
                    self.shared[e] = true;
                }
                return;
            }
        }
        // Allocate a physical entry: invalid first, then unshared LRU, then
        // shared LRU (sharing-aware protection).
        let range = self.entry_range(region);
        let mut victim = None;
        for e in range.clone() {
            if !self.entry_valid(e) {
                victim = Some(e);
                break;
            }
        }
        if victim.is_none() {
            for protect_shared in [true, false] {
                let mut best: Option<(u64, usize)> = None;
                for e in range.clone() {
                    if protect_shared && self.shared[e] {
                        continue;
                    }
                    if best.is_none_or(|(key, _)| self.last_use[e] < key) {
                        best = Some((self.last_use[e], e));
                    }
                }
                if let Some((_, e)) = best {
                    victim = Some(e);
                    break;
                }
            }
        }
        let e = victim.expect("a set always yields a victim");
        for s in 0..SUB_ENTRIES {
            let m = self.sub_meta[e * SUB_ENTRIES + s];
            if m & META_VALID != 0 {
                self.occupancy[TenantId(m as u8).index()] -= 1;
                self.sub_meta[e * SUB_ENTRIES + s] = 0;
            }
        }
        self.tags[e] = region;
        self.shared[e] = false;
        self.sub_meta[e * SUB_ENTRIES + slot] = want;
        self.sub_ppn[e * SUB_ENTRIES + slot] = ppn;
        self.last_use[e] = tick;
        self.occupancy[tenant.index()] += 1;
        // Keep the rng clocked like the Random-replacement Tlb would be, so
        // swapping organizations doesn't silently correlate streams.
        let _ = self.rng.next_below(self.cfg.ways as u64);
    }

    /// Invalidates every sub-entry owned by `tenant` at time `now`. Returns
    /// how many sub-entries were dropped.
    pub fn invalidate_tenant(&mut self, tenant: TenantId, now: Cycle) -> usize {
        self.advance_time(now);
        let want = META_VALID | u16::from(tenant.0);
        let mut dropped = 0;
        for e in 0..self.cfg.entries() {
            let mut touched = false;
            for s in 0..SUB_ENTRIES {
                if self.sub_meta[e * SUB_ENTRIES + s] == want {
                    self.sub_meta[e * SUB_ENTRIES + s] = 0;
                    dropped += 1;
                    touched = true;
                }
            }
            if touched {
                self.refresh_shared(e);
            }
        }
        self.occupancy[tenant.index()] -= dropped;
        dropped
    }

    /// Current number of valid sub-entries owned by `tenant`.
    #[must_use]
    pub fn occupancy_of(&self, tenant: TenantId) -> usize {
        self.occupancy[tenant.index()]
    }

    /// Time-averaged fraction of sub-entry capacity occupied by `tenant`
    /// over `[0, now]`.
    #[must_use]
    pub fn share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        let mut integral = self.occupancy_integral[tenant.index()];
        let dt = now.saturating_since(self.last_update) as f64;
        integral += self.occupancy[tenant.index()] as f64 * dt;
        let denom = now.0 as f64 * (self.cfg.entries() * SUB_ENTRIES) as f64;
        if denom == 0.0 {
            0.0
        } else {
            integral / denom
        }
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fills that joined a foreign tenant's physical entry.
    #[must_use]
    pub fn shared_fills(&self) -> u64 {
        self.shared_fills
    }

    /// Current number of entries whose sub-entries span tenants.
    #[must_use]
    pub fn shared_entries(&self) -> usize {
        self.shared.iter().filter(|&&s| s).count()
    }

    /// Structural invariants: every tracked `shared` flag matches the
    /// tenant span of its entry's valid sub-entries, and the incremental
    /// occupancy counters match a recount.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut recount = vec![0usize; self.occupancy.len()];
        for e in 0..self.cfg.entries() {
            let mut tenants = Vec::new();
            for s in 0..SUB_ENTRIES {
                let m = self.sub_meta[e * SUB_ENTRIES + s];
                if m & META_VALID != 0 {
                    let t = m as u8;
                    recount[TenantId(t).index()] += 1;
                    if !tenants.contains(&t) {
                        tenants.push(t);
                    }
                }
            }
            let spans = tenants.len() > 1;
            if spans != self.shared[e] {
                return Err(format!(
                    "entry {e}: sub-entries span {} tenant(s) but shared flag is {}",
                    tenants.len(),
                    self.shared[e]
                ));
            }
        }
        if recount != self.occupancy {
            return Err(format!(
                "occupancy drift: counted {recount:?}, tracked {:?}",
                self.occupancy
            ));
        }
        Ok(())
    }
}

/// One coalesced range in the fully-associative large-page array.
#[derive(Debug, Clone, Copy)]
struct LargeEntry {
    tenant: TenantId,
    /// `vpn >> 3`: the aligned [`MOSAIC_GROUP`]-page group.
    group: u64,
    /// Frame of the group's first base page; page `i` of the group lives at
    /// `base + i * granules` thanks to the reservation allocator.
    base: Ppn,
    last_use: u64,
}

/// Packs a Mosaic directory / dead-guard liveness key into one word.
#[inline]
fn tenant_key(tenant: TenantId, v: u64) -> u64 {
    debug_assert!(v < 1 << 56, "vpn/group overflows packed key");
    (u64::from(tenant.0) << 56) | v
}

/// A multi-page-size L2 TLB path: 4 KB base entries in a standard [`Tlb`]
/// plus a fully-associative array of transparently coalesced
/// [`MOSAIC_GROUP`]-page ranges.
///
/// A directory counts distinct base-page fills per aligned group; at
/// [`MOSAIC_COALESCE_THRESHOLD`] fills the group coalesces into one large
/// entry (its base entries are invalidated — a translation is never mapped
/// twice). Evicting a large entry *splinters* it: all of its base
/// translations are re-filled into the base TLB, so no reach is silently
/// lost. Contiguity is guaranteed by
/// [`PageTable::with_reservation`](crate::PageTable::with_reservation),
/// which maps each aligned group contiguously on first touch.
#[derive(Debug, Clone)]
pub struct MosaicTlb {
    base: Tlb,
    large: Vec<Option<LargeEntry>>,
    /// Distinct-fill popmask per `(tenant, group)` not yet coalesced.
    dir: FnvMap<u64, u8>,
    /// 4 KB frames per base page (1 for 4 KB pages).
    granules: u64,
    tick: u64,
    large_hits: u64,
    coalesces: u64,
    splinters: u64,
}

impl MosaicTlb {
    /// Creates an empty Mosaic TLB; `page_size` fixes the frame granularity
    /// of one base page.
    #[must_use]
    pub fn new(cfg: TlbConfig, n_tenants: usize, page_size: PageSize) -> Self {
        MosaicTlb {
            base: Tlb::new(cfg, n_tenants),
            large: vec![None; MOSAIC_LARGE_ENTRIES],
            dir: FnvMap::default(),
            granules: page_size.bytes() / 4096,
            tick: 0,
            large_hits: 0,
            coalesces: 0,
            splinters: 0,
        }
    }

    fn find_large(&self, tenant: TenantId, group: u64) -> Option<usize> {
        self.large.iter().position(|slot| {
            matches!(slot, Some(e) if e.tenant == tenant && e.group == group)
        })
    }

    /// Looks up `(tenant, vpn)`: the large array first, then base entries.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        self.tick += 1;
        let group = vpn.0 / MOSAIC_GROUP;
        if let Some(i) = self.find_large(tenant, group) {
            let e = self.large[i].as_mut().expect("found slot is occupied");
            e.last_use = self.tick;
            self.large_hits += 1;
            let offset = vpn.0 % MOSAIC_GROUP;
            return Some(Ppn(e.base.0 + offset * self.granules));
        }
        self.base.probe(tenant, vpn)
    }

    /// Inserts a base translation at time `now`, coalescing its group into
    /// the large array once enough distinct base pages have been filled.
    pub fn fill(&mut self, tenant: TenantId, vpn: Vpn, ppn: Ppn, now: Cycle) {
        self.tick += 1;
        let group = vpn.0 / MOSAIC_GROUP;
        if let Some(i) = self.find_large(tenant, group) {
            // Already coalesced: the range covers this page.
            self.large[i].as_mut().expect("occupied").last_use = self.tick;
            return;
        }
        let key = tenant_key(tenant, group);
        let mask = self.dir.entry(key).or_insert(0);
        *mask |= 1 << (vpn.0 % MOSAIC_GROUP);
        if u32::from(mask.count_ones()) < MOSAIC_COALESCE_THRESHOLD.min(MOSAIC_GROUP as u32) {
            self.base.fill(tenant, vpn, ppn, now);
            return;
        }
        // Coalesce: the reservation allocator placed page `i` of the group
        // at `base + i * granules`, so the triggering fill pins the base.
        self.dir.remove(&key);
        let base = Ppn(ppn.0 - (vpn.0 % MOSAIC_GROUP) * self.granules);
        let slot = match self.large.iter().position(Option::is_none) {
            Some(i) => i,
            None => {
                let i = self
                    .large
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.as_ref().expect("full array").last_use)
                    .map(|(i, _)| i)
                    .expect("large array is non-empty");
                let victim = self.large[i].expect("full array");
                self.splinter(victim, now);
                i
            }
        };
        self.large[slot] = Some(LargeEntry {
            tenant,
            group,
            base,
            last_use: self.tick,
        });
        self.coalesces += 1;
        // A translation is never mapped twice: drop the group's base
        // entries now that the large entry covers them.
        for page in 0..MOSAIC_GROUP {
            self.base
                .invalidate_one(tenant, Vpn(group * MOSAIC_GROUP + page), now);
        }
    }

    /// Re-fills every base translation of an evicted large entry.
    fn splinter(&mut self, victim: LargeEntry, now: Cycle) {
        for page in 0..MOSAIC_GROUP {
            self.base.fill(
                victim.tenant,
                Vpn(victim.group * MOSAIC_GROUP + page),
                Ppn(victim.base.0 + page * self.granules),
                now,
            );
        }
        self.splinters += 1;
    }

    /// Invalidates everything `tenant` owns — base entries, coalesced
    /// ranges (dropped, not splintered: the tenant is gone), and directory
    /// state. Returns how many base-page translations were dropped.
    pub fn invalidate_tenant(&mut self, tenant: TenantId, now: Cycle) -> usize {
        let mut dropped = self.base.invalidate_tenant(tenant, now);
        for slot in &mut self.large {
            if matches!(slot, Some(e) if e.tenant == tenant) {
                *slot = None;
                dropped += MOSAIC_GROUP as usize;
            }
        }
        self.dir.retain(|&k, _| (k >> 56) as u8 != tenant.0);
        dropped
    }

    /// Time-averaged share of base-TLB capacity (approximation: coalesced
    /// ranges live outside the share integral, documented in EXPERIMENTS).
    #[must_use]
    pub fn share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        self.base.share_of(tenant, now)
    }

    /// Probe hits since construction (base + large-array hits).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.base.hits() + self.large_hits
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.base.misses()
    }

    /// Coalesce events since construction.
    #[must_use]
    pub fn coalesces(&self) -> u64 {
        self.coalesces
    }

    /// Splinter events (large-entry evictions) since construction.
    #[must_use]
    pub fn splinters(&self) -> u64 {
        self.splinters
    }

    /// Hits served by the large-page array.
    #[must_use]
    pub fn large_hits(&self) -> u64 {
        self.large_hits
    }

    /// Structural invariants: no base page covered by a live large entry is
    /// also resident in the base TLB, and no directory popmask coexists
    /// with a large entry for the same group.
    pub fn check_invariants(&self) -> Result<(), String> {
        for e in self.large.iter().flatten() {
            for page in 0..MOSAIC_GROUP {
                let vpn = Vpn(e.group * MOSAIC_GROUP + page);
                if self.base.contains(e.tenant, vpn) {
                    return Err(format!(
                        "tenant {} vpn {} mapped both coalesced and in the base TLB",
                        e.tenant.0, vpn.0
                    ));
                }
            }
            if self.dir.contains_key(&tenant_key(e.tenant, e.group)) {
                return Err(format!(
                    "tenant {} group {} has both a large entry and a directory mask",
                    e.tenant.0, e.group
                ));
            }
        }
        Ok(())
    }
}

/// Dead-entry counter table size of a [`DeadGuardTlb`].
const DEAD_GUARD_SIGNATURES: usize = 1024;

/// A shared L2 TLB guarded by a dead-entry fill predictor.
///
/// Every fill carries a signature (hashed from its VPN and tenant); a table
/// of 2-bit saturating counters, trained by evictions, predicts whether the
/// filled entry would die without a single reuse. Predicted-dead fills are
/// bypassed — the walk result still returns to the warp, but no way is
/// spent on it — which protects live entries from one tenant's streaming
/// fill storm. Every 8th bypass decrements the deciding counter so a
/// signature can win back fill rights when its behavior changes.
#[derive(Debug, Clone)]
pub struct DeadGuardTlb {
    base: Tlb,
    counters: Vec<u8>,
    /// Reused-since-fill flag per resident `(tenant, vpn)` (packed key).
    live: FnvMap<u64, bool>,
    bypasses: u64,
    dead_evictions: u64,
}

impl DeadGuardTlb {
    /// Creates an empty dead-guard TLB.
    #[must_use]
    pub fn new(cfg: TlbConfig, n_tenants: usize) -> Self {
        DeadGuardTlb {
            base: Tlb::new(cfg, n_tenants),
            counters: vec![0; DEAD_GUARD_SIGNATURES],
            live: FnvMap::default(),
            bypasses: 0,
            dead_evictions: 0,
        }
    }

    fn signature(tenant: TenantId, vpn: Vpn) -> usize {
        let h = vpn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 54) as usize ^ usize::from(tenant.0)) % DEAD_GUARD_SIGNATURES
    }

    /// Looks up `(tenant, vpn)`; a hit marks the entry live.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        let hit = self.base.probe(tenant, vpn);
        if hit.is_some() {
            self.live.insert(tenant_key(tenant, vpn.0), true);
        }
        hit
    }

    /// Inserts a translation at time `now` unless the predictor says the
    /// entry would die unreferenced, in which case the fill is bypassed.
    pub fn fill(&mut self, tenant: TenantId, vpn: Vpn, ppn: Ppn, now: Cycle) {
        let sig = Self::signature(tenant, vpn);
        if self.counters[sig] >= 2 {
            self.bypasses += 1;
            if self.bypasses % 8 == 0 {
                self.counters[sig] -= 1;
            }
            return;
        }
        if let Some((t, v)) = self.base.fill(tenant, vpn, ppn, now) {
            let reused = self.live.remove(&tenant_key(t, v.0)).unwrap_or(false);
            let s = Self::signature(t, v);
            if reused {
                self.counters[s] = self.counters[s].saturating_sub(1);
            } else {
                self.counters[s] = (self.counters[s] + 1).min(3);
                self.dead_evictions += 1;
            }
        }
        self.live.insert(tenant_key(tenant, vpn.0), false);
    }

    /// Invalidates every entry owned by `tenant` (no predictor training:
    /// a departure flush says nothing about entry liveness).
    pub fn invalidate_tenant(&mut self, tenant: TenantId, now: Cycle) -> usize {
        let dropped = self.base.invalidate_tenant(tenant, now);
        self.live.retain(|&k, _| (k >> 56) as u8 != tenant.0);
        dropped
    }

    /// Time-averaged fraction of TLB capacity occupied by `tenant`.
    #[must_use]
    pub fn share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        self.base.share_of(tenant, now)
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.base.hits()
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.base.misses()
    }

    /// Fills suppressed by the predictor.
    #[must_use]
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Evictions of entries that were never reused after their fill.
    #[must_use]
    pub fn dead_evictions(&self) -> u64 {
        self.dead_evictions
    }

    /// Structural invariants: predictor counters stay within their 2-bit
    /// range and no liveness record outlives a departed tenant's entries.
    pub fn check_invariants(&self) -> Result<(), String> {
        if let Some(&c) = self.counters.iter().find(|&&c| c > 3) {
            return Err(format!("dead-entry counter {c} escaped its 2-bit range"));
        }
        Ok(())
    }
}

/// Unified facade over the three arena organizations, mirroring the probe /
/// fill / invalidate / share surface of the SoA [`Tlb`] so the simulation's
/// L2 seam is organization-agnostic.
#[derive(Debug, Clone)]
pub enum ArenaTlb {
    /// Sub-entry sharing (arXiv 2404.18361).
    SubEntry(SubEntryTlb),
    /// Transparent large-page coalescing (arXiv 1804.11265).
    Mosaic(MosaicTlb),
    /// Dead-entry fill prediction (arXiv 2606.00486).
    DeadGuard(DeadGuardTlb),
}

impl ArenaTlb {
    /// Builds the organization `kind` selects over the same geometry the
    /// shared L2 TLB would use.
    #[must_use]
    pub fn new(kind: ArenaTlbKind, cfg: TlbConfig, n_tenants: usize, page_size: PageSize) -> Self {
        match kind {
            ArenaTlbKind::SubEntry => ArenaTlb::SubEntry(SubEntryTlb::new(cfg, n_tenants)),
            ArenaTlbKind::Mosaic => ArenaTlb::Mosaic(MosaicTlb::new(cfg, n_tenants, page_size)),
            ArenaTlbKind::DeadGuard => ArenaTlb::DeadGuard(DeadGuardTlb::new(cfg, n_tenants)),
        }
    }

    /// Which organization this is.
    #[must_use]
    pub fn kind(&self) -> ArenaTlbKind {
        match self {
            ArenaTlb::SubEntry(_) => ArenaTlbKind::SubEntry,
            ArenaTlb::Mosaic(_) => ArenaTlbKind::Mosaic,
            ArenaTlb::DeadGuard(_) => ArenaTlbKind::DeadGuard,
        }
    }

    /// Looks up `(tenant, vpn)`, updating replacement state and statistics.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        match self {
            ArenaTlb::SubEntry(t) => t.probe(tenant, vpn),
            ArenaTlb::Mosaic(t) => t.probe(tenant, vpn),
            ArenaTlb::DeadGuard(t) => t.probe(tenant, vpn),
        }
    }

    /// Resolves a same-cycle batch of probes; state evolution is identical
    /// to calling [`probe`](Self::probe) once per element in order (pinned
    /// by `tests/batch_differential.rs`).
    pub fn probe_batch(&mut self, probes: &[(TenantId, Vpn)], out: &mut Vec<Option<Ppn>>) {
        out.clear();
        out.reserve(probes.len());
        for &(tenant, vpn) in probes {
            out.push(self.probe(tenant, vpn));
        }
    }

    /// Inserts a translation at time `now` under the organization's fill
    /// policy (which may bypass or coalesce it).
    pub fn fill(&mut self, tenant: TenantId, vpn: Vpn, ppn: Ppn, now: Cycle) {
        match self {
            ArenaTlb::SubEntry(t) => t.fill(tenant, vpn, ppn, now),
            ArenaTlb::Mosaic(t) => t.fill(tenant, vpn, ppn, now),
            ArenaTlb::DeadGuard(t) => t.fill(tenant, vpn, ppn, now),
        }
    }

    /// Flushes everything `tenant` owns (tenant departure). Returns how
    /// many translations were dropped.
    pub fn invalidate_tenant(&mut self, tenant: TenantId, now: Cycle) -> usize {
        match self {
            ArenaTlb::SubEntry(t) => t.invalidate_tenant(tenant, now),
            ArenaTlb::Mosaic(t) => t.invalidate_tenant(tenant, now),
            ArenaTlb::DeadGuard(t) => t.invalidate_tenant(tenant, now),
        }
    }

    /// Time-averaged fraction of capacity occupied by `tenant`.
    #[must_use]
    pub fn share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        match self {
            ArenaTlb::SubEntry(t) => t.share_of(tenant, now),
            ArenaTlb::Mosaic(t) => t.share_of(tenant, now),
            ArenaTlb::DeadGuard(t) => t.share_of(tenant, now),
        }
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        match self {
            ArenaTlb::SubEntry(t) => t.hits(),
            ArenaTlb::Mosaic(t) => t.hits(),
            ArenaTlb::DeadGuard(t) => t.hits(),
        }
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        match self {
            ArenaTlb::SubEntry(t) => t.misses(),
            ArenaTlb::Mosaic(t) => t.misses(),
            ArenaTlb::DeadGuard(t) => t.misses(),
        }
    }

    /// Structural invariants of the selected organization.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            ArenaTlb::SubEntry(t) => t.check_invariants(),
            ArenaTlb::Mosaic(t) => t.check_invariants(),
            ArenaTlb::DeadGuard(t) => t.check_invariants(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::Replacement;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    fn sub(sets: usize, ways: usize) -> SubEntryTlb {
        SubEntryTlb::new(
            TlbConfig {
                sets,
                ways,
                replacement: Replacement::Lru,
            },
            2,
        )
    }

    #[test]
    fn sub_entry_miss_fill_hit() {
        let mut t = sub(2, 2);
        assert_eq!(t.probe(T0, Vpn(5)), None);
        t.fill(T0, Vpn(5), Ppn(9), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(5)), Some(Ppn(9)));
        assert_eq!((t.hits(), t.misses()), (1, 1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_same_region_shares_one_physical_entry() {
        let mut t = sub(2, 2);
        // VPNs 8..12 form one region.
        for v in 8..12 {
            t.fill(T0, Vpn(v), Ppn(v), Cycle(0));
        }
        assert_eq!(t.occupancy_of(T0), 4);
        for v in 8..12 {
            assert_eq!(t.probe(T0, Vpn(v)), Some(Ppn(v)), "vpn {v}");
        }
        assert_eq!(t.shared_entries(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_cross_tenant_sharing_sets_flag() {
        let mut t = sub(2, 2);
        t.fill(T0, Vpn(8), Ppn(1), Cycle(0));
        t.fill(T1, Vpn(9), Ppn(2), Cycle(0));
        assert_eq!(t.shared_fills(), 1);
        assert_eq!(t.shared_entries(), 1);
        assert_eq!(t.probe(T0, Vpn(8)), Some(Ppn(1)));
        assert_eq!(t.probe(T1, Vpn(9)), Some(Ppn(2)));
        // Same page, different tenant: no aliasing through the shared entry.
        assert_eq!(t.probe(T1, Vpn(8)), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_same_vpn_two_tenants_use_distinct_entries() {
        let mut t = sub(2, 2);
        t.fill(T0, Vpn(8), Ppn(1), Cycle(0));
        t.fill(T1, Vpn(8), Ppn(2), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(8)), Some(Ppn(1)));
        assert_eq!(t.probe(T1, Vpn(8)), Some(Ppn(2)));
        // The slot collides, so the second fill allocated a fresh entry.
        assert_eq!(t.shared_entries(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_replacement_protects_shared_entries() {
        // One set, two ways. Way A becomes shared, way B unshared; a
        // conflicting fill must evict the unshared way even though the
        // shared one is older.
        let mut t = sub(1, 2);
        t.fill(T0, Vpn(0), Ppn(1), Cycle(0));
        t.fill(T1, Vpn(1), Ppn(2), Cycle(0)); // region 0 now shared
        t.fill(T0, Vpn(4), Ppn(3), Cycle(0)); // region 1, unshared
        t.fill(T0, Vpn(8), Ppn(4), Cycle(0)); // region 2: needs a victim
        assert_eq!(t.probe(T0, Vpn(0)), Some(Ppn(1)), "shared entry survives");
        assert_eq!(t.probe(T0, Vpn(4)), None, "unshared entry evicted");
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_in_place_refill_updates_ppn() {
        let mut t = sub(2, 2);
        t.fill(T0, Vpn(5), Ppn(9), Cycle(0));
        t.fill(T0, Vpn(5), Ppn(11), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(5)), Some(Ppn(11)));
        assert_eq!(t.occupancy_of(T0), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_invalidate_tenant_clears_only_that_tenant() {
        let mut t = sub(2, 2);
        t.fill(T0, Vpn(8), Ppn(1), Cycle(0));
        t.fill(T1, Vpn(9), Ppn(2), Cycle(0));
        assert_eq!(t.invalidate_tenant(T0, Cycle(10)), 1);
        assert_eq!(t.occupancy_of(T0), 0);
        assert_eq!(t.probe(T1, Vpn(9)), Some(Ppn(2)));
        // The entry no longer spans tenants.
        assert_eq!(t.shared_entries(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn sub_entry_share_integrates_over_time() {
        let mut t = sub(1, 1); // 1 entry, 4 sub-entries
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        let share = t.share_of(T0, Cycle(100));
        assert!((share - 0.25).abs() < 1e-9, "share {share}");
    }

    fn mosaic() -> MosaicTlb {
        MosaicTlb::new(
            TlbConfig {
                sets: 4,
                ways: 4,
                replacement: Replacement::Lru,
            },
            2,
            PageSize::Small4K,
        )
    }

    /// Fills `group` with contiguous frames at `base`, triggering coalesce.
    fn coalesce_group(t: &mut MosaicTlb, tenant: TenantId, group: u64, base: u64) {
        for page in 0..u64::from(MOSAIC_COALESCE_THRESHOLD) {
            t.fill(
                tenant,
                Vpn(group * MOSAIC_GROUP + page),
                Ppn(base + page),
                Cycle(0),
            );
        }
    }

    #[test]
    fn mosaic_coalesces_after_threshold_fills() {
        let mut t = mosaic();
        coalesce_group(&mut t, T0, 0, 100);
        assert_eq!(t.coalesces(), 1);
        // Every page of the group now hits — even never-filled ones
        // (contiguity makes the translation exact).
        for page in 0..MOSAIC_GROUP {
            assert_eq!(t.probe(T0, Vpn(page)), Some(Ppn(100 + page)), "page {page}");
        }
        assert!(t.large_hits() >= MOSAIC_GROUP);
        t.check_invariants().unwrap();
    }

    #[test]
    fn mosaic_coalesce_drops_base_entries() {
        let mut t = mosaic();
        coalesce_group(&mut t, T0, 0, 100);
        // The invariant checker verifies no double mapping directly.
        t.check_invariants().unwrap();
        assert_eq!(t.probe(T0, Vpn(2)), Some(Ppn(102)));
    }

    #[test]
    fn mosaic_splinter_restores_base_pages() {
        let mut t = mosaic();
        // Fill the whole large array plus one more group.
        for g in 0..=MOSAIC_LARGE_ENTRIES as u64 {
            coalesce_group(&mut t, T0, g, 1000 + g * MOSAIC_GROUP);
        }
        assert_eq!(t.splinters(), 1);
        // Group 0 was the LRU victim; its base translations are restored.
        for page in 0..MOSAIC_GROUP {
            assert_eq!(
                t.probe(T0, Vpn(page)),
                Some(Ppn(1000 + page)),
                "splintered page {page}"
            );
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn mosaic_groups_are_per_tenant() {
        let mut t = mosaic();
        coalesce_group(&mut t, T0, 0, 100);
        assert_eq!(t.probe(T1, Vpn(0)), None, "no cross-tenant aliasing");
        t.check_invariants().unwrap();
    }

    #[test]
    fn mosaic_invalidate_tenant_drops_large_and_dir_state() {
        let mut t = mosaic();
        coalesce_group(&mut t, T0, 0, 100);
        t.fill(T0, Vpn(64), Ppn(500), Cycle(0)); // partial group in dir
        coalesce_group(&mut t, T1, 2, 200);
        assert!(t.invalidate_tenant(T0, Cycle(10)) > 0);
        assert_eq!(t.probe(T0, Vpn(0)), None);
        assert_eq!(t.probe(T1, Vpn(16)), Some(Ppn(200)), "other tenant intact");
        t.check_invariants().unwrap();
    }

    #[test]
    fn dead_guard_learns_to_bypass_dead_fills() {
        let mut t = DeadGuardTlb::new(
            TlbConfig {
                sets: 1,
                ways: 2,
                replacement: Replacement::Lru,
            },
            1,
        );
        // A streaming fill pattern: every entry dies without reuse. The
        // predictor must start bypassing some fills.
        for v in 0..4000u64 {
            t.fill(T0, Vpn(v), Ppn(v), Cycle(v));
        }
        assert!(t.dead_evictions() > 0);
        assert!(t.bypasses() > 0, "predictor never engaged");
        t.check_invariants().unwrap();
    }

    #[test]
    fn dead_guard_reuse_trains_counters_down() {
        let mut t = DeadGuardTlb::new(
            TlbConfig {
                sets: 1,
                ways: 2,
                replacement: Replacement::Lru,
            },
            1,
        );
        // Fill, reuse, then evict: the eviction must not count as dead.
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(0)), Some(Ppn(0)));
        t.fill(T0, Vpn(1), Ppn(1), Cycle(1));
        t.fill(T0, Vpn(2), Ppn(2), Cycle(2)); // evicts vpn 0 (reused)
        assert_eq!(t.dead_evictions(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn dead_guard_bypass_reprieve_decrements() {
        let mut t = DeadGuardTlb::new(
            TlbConfig {
                sets: 1,
                ways: 1,
                replacement: Replacement::Lru,
            },
            1,
        );
        for v in 0..20_000u64 {
            t.fill(T0, Vpn(v), Ppn(v), Cycle(v));
        }
        // With the reprieve, bypassed signatures keep re-earning fills, so
        // both counters stay bounded and fills keep landing.
        assert!(t.hits() == 0 && t.bypasses() > 0 && t.dead_evictions() > 1000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn facade_dispatches_all_kinds() {
        let cfg = TlbConfig {
            sets: 4,
            ways: 4,
            replacement: Replacement::Random,
        };
        for kind in [
            ArenaTlbKind::SubEntry,
            ArenaTlbKind::Mosaic,
            ArenaTlbKind::DeadGuard,
        ] {
            let mut t = ArenaTlb::new(kind, cfg, 2, PageSize::Small4K);
            assert_eq!(t.kind(), kind);
            assert_eq!(t.probe(T0, Vpn(3)), None);
            t.fill(T0, Vpn(3), Ppn(7), Cycle(0));
            assert_eq!(t.probe(T0, Vpn(3)), Some(Ppn(7)), "{kind:?}");
            assert_eq!((t.hits(), t.misses()), (1, 1), "{kind:?}");
            assert!(t.share_of(T0, Cycle(100)) > 0.0, "{kind:?}");
            assert_eq!(t.invalidate_tenant(T0, Cycle(10)), 1, "{kind:?}");
            assert_eq!(t.probe(T0, Vpn(3)), None, "{kind:?}");
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn facade_probe_batch_matches_scalar() {
        let cfg = TlbConfig {
            sets: 4,
            ways: 2,
            replacement: Replacement::Lru,
        };
        for kind in [
            ArenaTlbKind::SubEntry,
            ArenaTlbKind::Mosaic,
            ArenaTlbKind::DeadGuard,
        ] {
            let mut a = ArenaTlb::new(kind, cfg, 2, PageSize::Small4K);
            let mut b = ArenaTlb::new(kind, cfg, 2, PageSize::Small4K);
            for v in [0u64, 1, 8, 9] {
                a.fill(T0, Vpn(v), Ppn(v + 100), Cycle(0));
                b.fill(T0, Vpn(v), Ppn(v + 100), Cycle(0));
            }
            let probes: Vec<(TenantId, Vpn)> = [0u64, 0, 3, 8, 9, 9, 1, 40]
                .into_iter()
                .map(|v| (T0, Vpn(v)))
                .collect();
            let mut batched = Vec::new();
            a.probe_batch(&probes, &mut batched);
            let scalar: Vec<Option<Ppn>> = probes.iter().map(|&(t, v)| b.probe(t, v)).collect();
            assert_eq!(batched, scalar, "{kind:?}");
            assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()), "{kind:?}");
        }
    }
}
