//! Physical-frame allocation.
//!
//! A single bump allocator hands out device-memory frames to every tenant's
//! page tables and data pages. Tenants therefore occupy *disjoint* physical
//! addresses (as real per-process GPU allocations do), while their frames
//! still interleave across cache sets and DRAM channels — which is exactly
//! what makes the shared L2 and DRAM contended resources.

use walksteal_sim_core::Ppn;

/// A bump allocator over physical page frames.
///
/// # Examples
///
/// ```
/// use walksteal_vm::FrameAlloc;
///
/// let mut frames = FrameAlloc::new();
/// let a = frames.alloc();
/// let b = frames.alloc();
/// assert_ne!(a, b);
/// assert_eq!(frames.allocated(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameAlloc {
    next: u64,
}

impl FrameAlloc {
    /// Creates an allocator with no frames handed out.
    #[must_use]
    pub fn new() -> Self {
        FrameAlloc::default()
    }

    /// Allocates the next free frame.
    pub fn alloc(&mut self) -> Ppn {
        let ppn = Ppn(self.next);
        self.next += 1;
        ppn
    }

    /// Allocates `n` consecutive frames, returning the first. Large data
    /// pages span multiple 4 KB frame granules; reserving all of them keeps
    /// their cache-line ranges disjoint from every other allocation.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn alloc_contiguous(&mut self, n: u64) -> Ppn {
        assert!(n > 0, "must allocate at least one frame");
        let ppn = Ppn(self.next);
        self.next += n;
        ppn
    }

    /// Total frames allocated so far.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_unique_and_sequential() {
        let mut f = FrameAlloc::new();
        assert_eq!(f.alloc(), Ppn(0));
        assert_eq!(f.alloc(), Ppn(1));
        assert_eq!(f.alloc(), Ppn(2));
        assert_eq!(f.allocated(), 3);
    }
}
