//! Reusable, non-panicking invariant checks for the page-walk subsystem.
//!
//! These are the N-tenant scheduler properties the test suite asserts
//! (`tests/properties.rs`) factored into library form so the scenario
//! fuzzer can evaluate the same checks without unwinding: every function
//! returns `Err(description)` instead of panicking, which lets the
//! delta-debugging shrinker re-run a failing scenario thousands of times
//! cheaply and lets the test suite keep its panic semantics by unwrapping.
//!
//! The checks only look at the subsystem's public inspection views
//! ([`WalkSubsystem::pend_walks`], [`WalkSubsystem::walker_queue_depths`],
//! [`WalkSubsystem::walker_owners`], [`WalkSubsystem::walker_stolen_bits`],
//! [`WalkSubsystem::stats`]), so they hold for any scheduler
//! implementation behind the `PartScheduler` trait.

use walksteal_sim_core::TenantId;

use crate::walk::WalkSubsystem;

/// Conservation and occupancy invariants of the partitioned scheduler,
/// checked against its own PEND_WALKS / queue-depth / ownership views:
///
/// * per tenant, `enqueued == completed + PEND_WALKS`;
/// * per tenant, `PEND_WALKS == occupancy of the tenant's own walkers'
///   queues + its in-service walks` (stolen walks run elsewhere but queue
///   only at home);
/// * every enqueue attempt was either accepted or rejected;
/// * the aggregate queue occupancy agrees with the per-walker view.
///
/// For non-partitioned policies (shared queue, private pools) the
/// per-tenant PEND_WALKS views do not exist; only the attempt-accounting
/// check applies there.
///
/// `attempts` is the caller-counted number of `try_enqueue` /
/// `try_enqueue_batch` element attempts so far; `at` labels the check
/// point in the error message.
///
/// The per-tenant ownership decomposition assumes walker ownership has not
/// changed while walks were queued. After a mid-run repartition
/// ([`WalkSubsystem::set_active_tenants`]) a departing tenant's queued
/// walks drain from walkers now owned by someone else, transiently
/// violating it — use [`check_accounting`] across that window instead.
pub fn check_scheduler(ws: &WalkSubsystem, attempts: u64, at: &str) -> Result<(), String> {
    check_accounting(ws, attempts, at)?;

    let (Some(pend), Some(depths), Some(owners)) =
        (ws.pend_walks(), ws.walker_queue_depths(), ws.walker_owners())
    else {
        return Ok(()); // Not partitioned: no per-tenant views to check.
    };
    let busy = ws.busy_per_tenant();

    for (t, &p) in pend.iter().enumerate() {
        // PEND_WALKS is exactly the tenant's queued walks (which live only
        // in its own walkers' queues) plus its in-service walks (wherever
        // they run, stolen or not).
        let queued: usize = depths
            .iter()
            .zip(&owners)
            .filter(|&(_, &o)| o == TenantId(t as u8))
            .map(|(&d, _)| d)
            .sum();
        if p as usize != queued + busy[t] {
            return Err(format!(
                "{at}: tenant {t} PEND_WALKS {p} != owned-queue occupancy \
                 {queued} + in-service {}",
                busy[t]
            ));
        }
    }
    Ok(())
}

/// The ownership-free subset of [`check_scheduler`]: attempt and walk
/// conservation plus aggregate-occupancy agreement. These hold across
/// mid-run repartitions and tenant attach/detach, where the full ownership
/// decomposition does not: a walk accepted into the subsystem is either
/// completed, cancelled by a departure
/// ([`WalkSubsystem::cancel_tenant`]), or still pending.
pub fn check_accounting(ws: &WalkSubsystem, attempts: u64, at: &str) -> Result<(), String> {
    let stats = ws.stats();

    // Every enqueue attempt was either accepted or rejected.
    let accepted: u64 = stats.enqueued.iter().sum();
    let rejected: u64 = stats.rejected.iter().sum();
    if attempts != accepted + rejected {
        return Err(format!(
            "{at}: attempts unaccounted: {attempts} attempted, \
             {accepted} accepted + {rejected} rejected"
        ));
    }

    let (Some(pend), Some(depths)) = (ws.pend_walks(), ws.walker_queue_depths()) else {
        // Not partitioned: no PEND_WALKS views, but aggregate conservation
        // still holds — accepted walks are completed, cancelled, queued, or
        // in service.
        let completed: u64 = stats.completed.iter().sum();
        let cancelled: u64 = stats.cancelled.iter().sum();
        let outstanding = (ws.queued_len() + ws.busy_walkers()) as u64;
        if accepted != completed + cancelled + outstanding {
            return Err(format!(
                "{at}: aggregate walk conservation: enqueued {accepted} != \
                 completed {completed} + cancelled {cancelled} + outstanding \
                 {outstanding}"
            ));
        }
        return Ok(());
    };

    for (t, &p) in pend.iter().enumerate() {
        // Every accepted walk is completed, cancelled, or still pending,
        // per tenant — the form that survives tenant attach/detach.
        if stats.enqueued[t] != stats.completed[t] + stats.cancelled[t] + u64::from(p) {
            return Err(format!(
                "{at}: tenant {t} walk conservation (PEND_WALKS): \
                 enqueued {} != completed {} + cancelled {} + pending {p}",
                stats.enqueued[t], stats.completed[t], stats.cancelled[t]
            ));
        }
    }

    // The aggregate queue occupancy agrees with the per-walker view.
    let per_walker: usize = depths.iter().sum();
    if ws.queued_len() != per_walker {
        return Err(format!(
            "{at}: queued_len {} != sum of walker queue depths {per_walker}",
            ws.queued_len()
        ));
    }
    Ok(())
}

/// The FWA no-consecutive-steals rule, checked from the outside: a walker
/// whose previous walk was stolen and whose own queue had work must not
/// have picked up another stolen walk.
///
/// `pre_depths` and `pre_stolen` are the [`WalkSubsystem::walker_queue_depths`]
/// and [`WalkSubsystem::walker_stolen_bits`] views captured immediately
/// before the `on_walker_done` call whose follow-on dispatch landed on
/// walker `w`; the post-dispatch stolen bits are read from `ws`.
pub fn check_no_consecutive_steal(
    ws: &WalkSubsystem,
    pre_depths: &[usize],
    pre_stolen: &[bool],
    w: usize,
) -> Result<(), String> {
    let Some(post_stolen) = ws.walker_stolen_bits() else {
        return Ok(()); // Not partitioned: stealing does not exist.
    };
    if post_stolen[w] && pre_depths[w] > 0 && pre_stolen[w] {
        return Err(format!(
            "walker {w} stole twice in a row with its own queue non-empty"
        ));
    }
    Ok(())
}

/// Two subsystems driven in lockstep must expose identical inspection
/// views: PEND_WALKS, per-walker queue depths, stolen bits, walker
/// ownership, aggregate occupancy, and busy-walker counts.
pub fn check_views_agree(a: &WalkSubsystem, b: &WalkSubsystem, at: &str) -> Result<(), String> {
    if a.pend_walks() != b.pend_walks() {
        return Err(format!(
            "{at}: PEND_WALKS diverged: {:?} vs {:?}",
            a.pend_walks(),
            b.pend_walks()
        ));
    }
    if a.walker_queue_depths() != b.walker_queue_depths() {
        return Err(format!(
            "{at}: walker queue depths diverged: {:?} vs {:?}",
            a.walker_queue_depths(),
            b.walker_queue_depths()
        ));
    }
    if a.walker_stolen_bits() != b.walker_stolen_bits() {
        return Err(format!(
            "{at}: walker stolen bits diverged: {:?} vs {:?}",
            a.walker_stolen_bits(),
            b.walker_stolen_bits()
        ));
    }
    if a.walker_owners() != b.walker_owners() {
        return Err(format!(
            "{at}: walker ownership diverged: {:?} vs {:?}",
            a.walker_owners(),
            b.walker_owners()
        ));
    }
    if a.queued_len() != b.queued_len() {
        return Err(format!(
            "{at}: queued_len diverged: {} vs {}",
            a.queued_len(),
            b.queued_len()
        ));
    }
    if a.busy_walkers() != b.busy_walkers() {
        return Err(format!(
            "{at}: busy_walkers diverged: {} vs {}",
            a.busy_walkers(),
            b.busy_walkers()
        ));
    }
    Ok(())
}

/// Terminal-state check after all outstanding walks drained: nothing left
/// in flight or queued, and the scheduler invariants still hold.
pub fn check_drained(ws: &WalkSubsystem, attempts: u64, at: &str) -> Result<(), String> {
    check_scheduler(ws, attempts, at)?;
    if ws.busy_walkers() != 0 {
        return Err(format!("{at}: {} walks left in flight", ws.busy_walkers()));
    }
    if ws.queued_len() != 0 {
        return Err(format!("{at}: {} walks left queued", ws.queued_len()));
    }
    Ok(())
}
