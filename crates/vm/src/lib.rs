//! GPU virtual-memory substrate — and the paper's contribution.
//!
//! This crate models the full address-translation path of a multi-tenant
//! GPU:
//!
//! * [`page::PageSize`] — 4 KB base pages and 64 KB large pages.
//! * [`frame::FrameAlloc`] — physical-frame allocation (tenants get disjoint
//!   physical address spaces).
//! * [`page_table::PageTable`] — a real multi-level radix page table,
//!   populated on first touch; walks read per-level entry addresses that are
//!   cacheable in the shared L2.
//! * [`tlb::Tlb`] — set-associative, LRU TLBs tagged by (tenant, vpn); used
//!   for both the private per-SM L1 TLBs and the shared L2 TLB.
//! * [`pwc::PwCache`] — the page-walk cache: longest-prefix match over
//!   upper page-table levels, reducing a walk to 1–3 memory accesses.
//! * [`walk`] — the page-walk subsystem: a pool of page-table walkers fed by
//!   walk queues under a pluggable scheduling policy. This is where the
//!   paper's **dynamic walk stealing (DWS)** and **DWS++** live, alongside
//!   the baseline shared queue, static partitioning, and private pools, and
//!   the FWA / TWM / WTM hardware tables that implement stealing.
//! * [`mask`] — a MASK-style token mechanism (TLB-fill throttling + PTE L2
//!   bypass) used as a comparison point (paper Fig. 11).
//! * [`arena`] — related-work L2-TLB organizations raced against DWS/DWS++:
//!   sub-entry sharing ([`SubEntryTlb`]), Mosaic-style transparent
//!   large-page coalescing ([`MosaicTlb`]), and dead-entry fill prediction
//!   ([`DeadGuardTlb`]), all behind the [`ArenaTlb`] facade.
//!
//! # Examples
//!
//! ```
//! use walksteal_vm::{FrameAlloc, PageSize, PageTable};
//! use walksteal_sim_core::{TenantId, Vpn};
//!
//! let mut frames = FrameAlloc::new();
//! let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
//! let path = pt.walk_path(Vpn(0x1234), &mut frames);
//! // A 4-level table needs four entry reads on a cold walk.
//! assert_eq!(path.entry_addrs.len(), 4);
//! // The mapping is stable: walking again yields the same frame.
//! assert_eq!(pt.walk_path(Vpn(0x1234), &mut frames).ppn, path.ppn);
//! ```

pub mod arena;
pub mod frame;
pub mod invariants;
pub mod mask;
pub mod page;
pub mod page_table;
pub mod pwc;
pub mod tlb;
pub mod walk;

pub use arena::{
    ArenaTlb, ArenaTlbKind, DeadGuardTlb, MosaicTlb, SubEntryTlb, MOSAIC_COALESCE_THRESHOLD,
    MOSAIC_GROUP, MOSAIC_LARGE_ENTRIES, SUB_ENTRIES,
};
pub use frame::FrameAlloc;
pub use mask::{MaskConfig, MaskState};
pub use page::PageSize;
pub use page_table::{PageTable, WalkPath};
pub use pwc::{PwCache, PwcHit};
pub use tlb::{Replacement, Tlb, TlbConfig};
pub use walk::{
    CompletedWalk, DispatchedWalk, DwsPlusPlusParams, SchedulerImpl, StealMode, WalkConfig,
    WalkPolicyKind, WalkQueueFull, WalkRequest, WalkStats, WalkSubsystem,
};
