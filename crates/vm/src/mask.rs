//! A MASK-style comparison policy (Ausavarungnirun et al., ASPLOS '18).
//!
//! MASK redesigns the GPU memory hierarchy for multi-application
//! concurrency. The paper compares DWS against it (Fig. 11); MASK is
//! *orthogonal* to walk scheduling — it targets the shared L2 TLB and the
//! contention between data and page-table entries in the caches. This module
//! reimplements its two mechanisms relevant to that comparison:
//!
//! 1. **TLB-fill tokens**: per epoch, each tenant receives a share of L2-TLB
//!    fill tokens proportional to how much it benefits from the shared TLB
//!    (its epoch hit rate). A walk completed by a tenant without tokens
//!    fills only the requester's L1 TLB, protecting the shared TLB from
//!    thrashing fills.
//! 2. **PTE cache bypassing**: page-table accesses of a token-throttled
//!    tenant bypass the shared L2 cache, protecting data lines from PTE
//!    pollution.
//!
//! This is a faithful-in-spirit reimplementation from the mechanism
//! descriptions, not the authors' source; see DESIGN.md (substitution 3).

use std::cell::Cell;

use walksteal_mem::AccessKind;
use walksteal_sim_core::{Cycle, TenantId};

/// Parameters of the MASK-style mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskConfig {
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Total L2-TLB fill tokens distributed per epoch.
    pub tokens_per_epoch: u64,
    /// Hit-rate floor below which a tenant's PTE accesses bypass the L2
    /// cache.
    pub bypass_hit_rate: f64,
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig {
            epoch_cycles: 100_000,
            tokens_per_epoch: 2_000,
            bypass_hit_rate: 0.5,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct TenantEpoch {
    probes: u64,
    hits: u64,
}

/// Runtime state of the MASK-style policy.
///
/// # Examples
///
/// ```
/// use walksteal_vm::{MaskConfig, MaskState};
/// use walksteal_sim_core::{Cycle, TenantId};
///
/// let mut mask = MaskState::new(MaskConfig::default(), 2);
/// // Before any history, fills are allowed.
/// assert!(mask.try_take_fill_token(TenantId(0)));
/// mask.on_l2_tlb_probe(TenantId(0), true, Cycle(10));
/// ```
#[derive(Debug, Clone)]
pub struct MaskState {
    cfg: MaskConfig,
    epoch: Vec<TenantEpoch>,
    /// Fill tokens remaining this epoch, per tenant. `Cell` so that token
    /// consumption can happen through the shared reference the walk
    /// subsystem holds while dispatching.
    tokens: Vec<Cell<i64>>,
    bypass: Vec<bool>,
    epoch_start: Cycle,
}

impl MaskState {
    /// Creates MASK state for `n_tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `n_tenants` is zero.
    #[must_use]
    pub fn new(cfg: MaskConfig, n_tenants: usize) -> Self {
        assert!(n_tenants > 0, "need at least one tenant");
        let fair = (cfg.tokens_per_epoch / n_tenants as u64) as i64;
        MaskState {
            cfg,
            epoch: vec![TenantEpoch::default(); n_tenants],
            tokens: (0..n_tenants).map(|_| Cell::new(fair)).collect(),
            bypass: vec![false; n_tenants],
            epoch_start: Cycle::ZERO,
        }
    }

    /// Records an L2-TLB probe outcome and rolls the epoch if due.
    pub fn on_l2_tlb_probe(&mut self, tenant: TenantId, hit: bool, now: Cycle) {
        let e = &mut self.epoch[tenant.index()];
        e.probes += 1;
        if hit {
            e.hits += 1;
        }
        if now.saturating_since(self.epoch_start) >= self.cfg.epoch_cycles {
            self.roll_epoch(now);
        }
    }

    /// Redistributes tokens in proportion to each tenant's epoch hit rate
    /// and refreshes the PTE-bypass decision.
    fn roll_epoch(&mut self, now: Cycle) {
        let rates: Vec<f64> = self
            .epoch
            .iter()
            .map(|e| {
                if e.probes == 0 {
                    // No evidence: treat as average benefit.
                    0.5
                } else {
                    e.hits as f64 / e.probes as f64
                }
            })
            .collect();
        let sum: f64 = rates.iter().sum();
        for (i, rate) in rates.iter().enumerate() {
            let share = if sum > 0.0 {
                rate / sum
            } else {
                1.0 / rates.len() as f64
            };
            self.tokens[i].set((self.cfg.tokens_per_epoch as f64 * share) as i64);
            self.bypass[i] = *rate < self.cfg.bypass_hit_rate;
        }
        for e in &mut self.epoch {
            *e = TenantEpoch::default();
        }
        self.epoch_start = now;
    }

    /// Consumes one L2-TLB fill token for `tenant`; returns whether the fill
    /// may proceed. Without a token the walk result fills only the L1 TLB.
    pub fn try_take_fill_token(&self, tenant: TenantId) -> bool {
        let t = &self.tokens[tenant.index()];
        if t.get() > 0 {
            t.set(t.get() - 1);
            true
        } else {
            false
        }
    }

    /// How the walkers should access page-table entries for `tenant`.
    #[must_use]
    pub fn pt_access_kind(&self, tenant: TenantId) -> AccessKind {
        if self.bypass[tenant.index()] {
            AccessKind::PageTableBypass
        } else {
            AccessKind::PageTable
        }
    }

    /// Remaining fill tokens for `tenant` this epoch.
    #[must_use]
    pub fn tokens_of(&self, tenant: TenantId) -> i64 {
        self.tokens[tenant.index()].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    fn cfg() -> MaskConfig {
        MaskConfig {
            epoch_cycles: 100,
            tokens_per_epoch: 10,
            bypass_hit_rate: 0.5,
        }
    }

    #[test]
    fn tokens_start_fair() {
        let m = MaskState::new(cfg(), 2);
        assert_eq!(m.tokens_of(T0), 5);
        assert_eq!(m.tokens_of(T1), 5);
    }

    #[test]
    fn tokens_deplete() {
        let m = MaskState::new(cfg(), 2);
        for _ in 0..5 {
            assert!(m.try_take_fill_token(T0));
        }
        assert!(!m.try_take_fill_token(T0));
        // Tenant 1 unaffected.
        assert!(m.try_take_fill_token(T1));
    }

    #[test]
    fn epoch_shifts_tokens_toward_high_hit_rate_tenant() {
        let mut m = MaskState::new(cfg(), 2);
        // Tenant 0 hits everything; tenant 1 misses everything.
        for i in 0..50 {
            m.on_l2_tlb_probe(T0, true, Cycle(i));
            m.on_l2_tlb_probe(T1, false, Cycle(i));
        }
        m.on_l2_tlb_probe(T0, true, Cycle(200)); // crosses epoch boundary
        assert!(
            m.tokens_of(T0) > m.tokens_of(T1),
            "{} vs {}",
            m.tokens_of(T0),
            m.tokens_of(T1)
        );
    }

    #[test]
    fn low_hit_rate_tenant_bypasses_l2_for_ptes() {
        let mut m = MaskState::new(cfg(), 2);
        for i in 0..50 {
            m.on_l2_tlb_probe(T0, true, Cycle(i));
            m.on_l2_tlb_probe(T1, false, Cycle(i));
        }
        m.on_l2_tlb_probe(T0, true, Cycle(200));
        assert_eq!(m.pt_access_kind(T0), AccessKind::PageTable);
        assert_eq!(m.pt_access_kind(T1), AccessKind::PageTableBypass);
    }

    #[test]
    fn no_history_means_no_bypass() {
        let m = MaskState::new(cfg(), 2);
        assert_eq!(m.pt_access_kind(T0), AccessKind::PageTable);
    }
}
