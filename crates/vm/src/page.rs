//! Page geometry: base (4 KB) and large (64 KB) pages.

/// Supported page sizes.
///
/// GPUs support large pages (the paper evaluates 64 KB pages in Fig. 14);
/// large pages widen TLB reach and shorten walks by one level.
///
/// # Examples
///
/// ```
/// use walksteal_vm::PageSize;
///
/// assert_eq!(PageSize::Small4K.bytes(), 4096);
/// assert_eq!(PageSize::Large64K.bytes(), 65536);
/// assert_eq!(PageSize::Small4K.levels(), 4);
/// assert_eq!(PageSize::Large64K.levels(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KB base pages: 12-bit offset, 4 radix levels of 9 bits.
    #[default]
    Small4K,
    /// 64 KB large pages: 16-bit offset, 3 radix levels of 9 bits.
    Large64K,
}

impl PageSize {
    /// Bytes per page.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4096,
            PageSize::Large64K => 65536,
        }
    }

    /// Number of radix levels in the page table for this page size.
    #[must_use]
    pub fn levels(self) -> usize {
        match self {
            PageSize::Small4K => 4,
            PageSize::Large64K => 3,
        }
    }

    /// Index bits consumed per radix level.
    #[must_use]
    pub fn bits_per_level(self) -> u32 {
        9
    }

    /// Cache lines per page for `line_bytes`-byte lines.
    #[must_use]
    pub fn lines(self, line_bytes: u64) -> u64 {
        self.bytes() / line_bytes
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Small4K => write!(f, "4KB"),
            PageSize::Large64K => write!(f, "64KB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Large64K.bytes(), 65536);
        assert_eq!(PageSize::Small4K.levels(), 4);
        assert_eq!(PageSize::Large64K.levels(), 3);
        assert_eq!(PageSize::Small4K.bits_per_level(), 9);
    }

    #[test]
    fn lines_per_page() {
        assert_eq!(PageSize::Small4K.lines(128), 32);
        assert_eq!(PageSize::Large64K.lines(128), 512);
    }

    #[test]
    fn display() {
        assert_eq!(PageSize::Small4K.to_string(), "4KB");
        assert_eq!(PageSize::Large64K.to_string(), "64KB");
    }
}
