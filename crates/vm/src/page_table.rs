//! A multi-level radix page table, populated on first touch.
//!
//! Each tenant owns one [`PageTable`]. A walk over a [`Vpn`] yields the
//! physical addresses of the page-table entries read at each level (these
//! are what the walkers fetch through the L2/DRAM) plus the final frame
//! number. Interior nodes and leaf frames are allocated lazily from a shared
//! [`FrameAlloc`] the first time a page is touched — mirroring first-touch
//! demand allocation.

use walksteal_sim_core::{FnvMap, PhysAddr, Ppn, TenantId, Vpn};

use crate::frame::FrameAlloc;
use crate::page::PageSize;

/// Size of one page-table entry in bytes.
pub const PTE_BYTES: u64 = 8;

/// Packs an interior-node map key into one word (single-`u64` FNV hash).
/// Prefixes stay far below 2^60: a level-`L` prefix is the VPN shifted
/// right by at least one 9-bit radix step.
#[inline]
fn node_key(level: usize, prefix: u64) -> u64 {
    debug_assert!(level < 16 && prefix < 1 << 60, "node key fields overflow");
    ((level as u64) << 60) | prefix
}

/// The result of resolving a [`Vpn`] through the radix tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalkPath {
    /// Physical address of the entry read at each level, root first.
    /// A walker that hits the page-walk cache skips a prefix of these.
    pub entry_addrs: Vec<PhysAddr>,
    /// Physical address of each *node* visited, root first. Entry `i` of
    /// `entry_addrs` lies within node `i`. Used to fill the page-walk cache.
    pub node_addrs: Vec<PhysAddr>,
    /// The translated frame.
    pub ppn: Ppn,
}

/// One tenant's multi-level page table.
///
/// # Examples
///
/// ```
/// use walksteal_vm::{FrameAlloc, PageSize, PageTable};
/// use walksteal_sim_core::{TenantId, Vpn};
///
/// let mut frames = FrameAlloc::new();
/// let mut pt = PageTable::new(TenantId(0), PageSize::Small4K);
/// let first = pt.walk_path(Vpn(7), &mut frames);
/// let again = pt.walk_path(Vpn(7), &mut frames);
/// assert_eq!(first, again); // mappings are stable
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    tenant: TenantId,
    page_size: PageSize,
    root: Ppn,
    root_allocated: bool,
    /// Interior nodes, keyed by [`node_key`] (level packed with the
    /// index-prefix). Level 0 is the root's children, i.e. the node
    /// *reached from* the root at a given prefix. FNV-hashed: probed per
    /// walk level on the hot path, never iterated.
    nodes: FnvMap<u64, Ppn>,
    /// Leaf mappings (FNV-hashed likewise).
    leaves: FnvMap<Vpn, Ppn>,
    /// Last `(packed key, node)` resolved per interior level. Consecutive
    /// walks nearly always repeat the upper-level prefixes, and interior
    /// nodes are never remapped once allocated, so a key match answers the
    /// map probe exactly (and implies no allocation would have happened).
    node_memo: [(u64, Ppn); 4],
    touched_pages: u64,
    /// First touch of any page maps its whole aligned group of this many
    /// pages contiguously (1 = plain first-touch allocation). The
    /// contiguity guarantee behind Mosaic-style coalescing: page `i` of a
    /// group always lands `i * granules` frames past the group's base.
    reserve_pages: u64,
}

/// Sentinel memo key that can never equal a real [`node_key`] (real keys
/// keep bit 63 clear: levels stay below 8).
const MEMO_EMPTY: u64 = u64::MAX;

impl PageTable {
    /// Creates an empty page table for `tenant`.
    #[must_use]
    pub fn new(tenant: TenantId, page_size: PageSize) -> Self {
        PageTable {
            tenant,
            page_size,
            root: Ppn(0),
            root_allocated: false,
            // Pre-sized so steady-state walks never pay a rehash; both maps
            // grow past default capacity within the first simulated epoch.
            nodes: FnvMap::with_capacity_and_hasher(1 << 12, Default::default()),
            leaves: FnvMap::with_capacity_and_hasher(1 << 14, Default::default()),
            node_memo: [(MEMO_EMPTY, Ppn(0)); 4],
            touched_pages: 0,
            reserve_pages: 1,
        }
    }

    /// As [`new`](Self::new), but the first touch of any page eagerly maps
    /// its whole aligned group of `reserve_pages` pages to contiguous
    /// frames (Mosaic-style contiguity reservation).
    ///
    /// # Panics
    ///
    /// Panics if `reserve_pages` is not a power of two.
    #[must_use]
    pub fn with_reservation(tenant: TenantId, page_size: PageSize, reserve_pages: u64) -> Self {
        assert!(
            reserve_pages.is_power_of_two(),
            "reservation group must be a power of two"
        );
        let mut pt = PageTable::new(tenant, page_size);
        pt.reserve_pages = reserve_pages;
        pt
    }

    /// The tenant owning this table.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The page size this table maps.
    #[must_use]
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of distinct pages touched (and thus mapped) so far.
    #[must_use]
    pub fn touched_pages(&self) -> u64 {
        self.touched_pages
    }

    /// Looks up the mapping for `vpn` without allocating.
    #[must_use]
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        self.leaves.get(&vpn).copied()
    }

    /// The radix index used at `level` (0 = root) for `vpn`.
    fn index_at(&self, vpn: Vpn, level: usize) -> u64 {
        let bits = u64::from(self.page_size.bits_per_level());
        let levels = self.page_size.levels() as u64;
        let shift = bits * (levels - 1 - level as u64);
        (vpn.0 >> shift) & ((1 << bits) - 1)
    }

    /// The index-prefix consumed by levels `0..=level` of `vpn`.
    ///
    /// Two VPNs share the page-table node *entered after* `level` iff their
    /// prefixes at `level` are equal — this is the page-walk-cache key.
    #[must_use]
    pub fn prefix_at(&self, vpn: Vpn, level: usize) -> u64 {
        let bits = u64::from(self.page_size.bits_per_level());
        let levels = self.page_size.levels() as u64;
        let shift = bits * (levels - 1 - level as u64);
        vpn.0 >> shift
    }

    /// Resolves `vpn` through the tree, allocating any missing interior
    /// nodes and the leaf frame from `frames` (first touch).
    ///
    /// Returns the per-level entry addresses the walker must read, the node
    /// addresses (for page-walk-cache fills), and the final frame.
    pub fn walk_path(&mut self, vpn: Vpn, frames: &mut FrameAlloc) -> WalkPath {
        let mut out = WalkPath::default();
        self.walk_path_into(vpn, frames, &mut out);
        out
    }

    /// As [`walk_path`](Self::walk_path), but writes into `out`, reusing its
    /// buffers. The walker dispatch path calls this once per walk, so it
    /// must not allocate in steady state.
    pub fn walk_path_into(&mut self, vpn: Vpn, frames: &mut FrameAlloc, out: &mut WalkPath) {
        if !self.root_allocated {
            self.root = frames.alloc();
            self.root_allocated = true;
        }
        let levels = self.page_size.levels();
        let bits = u64::from(self.page_size.bits_per_level());
        out.entry_addrs.clear();
        out.node_addrs.clear();
        let mut node = self.root;
        for level in 0..levels {
            let shift = bits * (levels - 1 - level) as u64;
            let index = (vpn.0 >> shift) & ((1 << bits) - 1);
            // One 4 KB frame holds a 512-entry node regardless of data page
            // size; entries are PTE_BYTES each.
            let node_base = PhysAddr(node.0 << 12);
            out.node_addrs.push(node_base);
            out.entry_addrs.push(PhysAddr(node_base.0 + index * PTE_BYTES));
            if level + 1 < levels {
                let key = node_key(level, vpn.0 >> shift);
                let memo = &mut self.node_memo[level];
                node = if memo.0 == key {
                    memo.1
                } else {
                    let n = *self.nodes.entry(key).or_insert_with(|| frames.alloc());
                    *memo = (key, n);
                    n
                };
            }
        }
        // Leaf frames are allocated in 4 KB granules; a large data page
        // reserves all of its granules so its cache lines never alias
        // another allocation's.
        let granules = self.page_size.bytes() / 4096;
        if self.reserve_pages > 1 {
            out.ppn = match self.leaves.get(&vpn) {
                Some(&ppn) => ppn,
                None => {
                    // Map the whole aligned group contiguously, so every
                    // page of the group gets a frame offset equal to its
                    // page offset — the contiguity Mosaic coalescing needs.
                    let group_base = vpn.0 & !(self.reserve_pages - 1);
                    let frame_base = frames.alloc_contiguous(granules * self.reserve_pages);
                    for i in 0..self.reserve_pages {
                        self.leaves
                            .insert(Vpn(group_base + i), Ppn(frame_base.0 + i * granules));
                    }
                    self.touched_pages += self.reserve_pages;
                    Ppn(frame_base.0 + (vpn.0 - group_base) * granules)
                }
            };
            return;
        }
        let touched = &mut self.touched_pages;
        out.ppn = *self.leaves.entry(vpn).or_insert_with(|| {
            *touched += 1;
            frames.alloc_contiguous(granules)
        });
    }

    /// The node physical address a walk would continue from after consuming
    /// levels `0..=level` — i.e. what a page-walk-cache hit at `level`
    /// provides. Returns `None` if that subtree has not been allocated yet.
    #[must_use]
    pub fn node_after(&self, vpn: Vpn, level: usize) -> Option<PhysAddr> {
        let prefix = self.prefix_at(vpn, level);
        self.nodes
            .get(&node_key(level, prefix))
            .map(|ppn| PhysAddr(ppn.0 << 12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> (PageTable, FrameAlloc) {
        (
            PageTable::new(TenantId(0), PageSize::Small4K),
            FrameAlloc::new(),
        )
    }

    #[test]
    fn walk_has_one_entry_per_level() {
        let (mut pt, mut f) = pt();
        let p = pt.walk_path(Vpn(0xABCDE), &mut f);
        assert_eq!(p.entry_addrs.len(), 4);
        assert_eq!(p.node_addrs.len(), 4);
    }

    #[test]
    fn large_pages_walk_three_levels() {
        let mut pt = PageTable::new(TenantId(0), PageSize::Large64K);
        let mut f = FrameAlloc::new();
        let p = pt.walk_path(Vpn(0x123), &mut f);
        assert_eq!(p.entry_addrs.len(), 3);
    }

    #[test]
    fn mapping_is_stable() {
        let (mut pt, mut f) = pt();
        let a = pt.walk_path(Vpn(42), &mut f);
        let b = pt.walk_path(Vpn(42), &mut f);
        assert_eq!(a, b);
        assert_eq!(pt.touched_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let (mut pt, mut f) = pt();
        let a = pt.walk_path(Vpn(1), &mut f).ppn;
        let b = pt.walk_path(Vpn(2), &mut f).ppn;
        assert_ne!(a, b);
        assert_eq!(pt.touched_pages(), 2);
    }

    #[test]
    fn neighboring_pages_share_upper_nodes() {
        let (mut pt, mut f) = pt();
        let a = pt.walk_path(Vpn(0x100), &mut f);
        let b = pt.walk_path(Vpn(0x101), &mut f);
        // Same leaf-level node, different entry within it.
        assert_eq!(a.node_addrs[3], b.node_addrs[3]);
        assert_ne!(a.entry_addrs[3], b.entry_addrs[3]);
        // And the same root.
        assert_eq!(a.node_addrs[0], b.node_addrs[0]);
    }

    #[test]
    fn far_pages_diverge_at_the_root() {
        let (mut pt, mut f) = pt();
        // Differ in the top 9 bits of a 36-bit VPN.
        let a = pt.walk_path(Vpn(0), &mut f);
        let b = pt.walk_path(Vpn(1 << 27), &mut f);
        assert_eq!(a.node_addrs[0], b.node_addrs[0]); // shared root node
        assert_ne!(a.entry_addrs[0], b.entry_addrs[0]); // different root entry
        assert_ne!(a.node_addrs[1], b.node_addrs[1]);
    }

    #[test]
    fn translate_is_non_allocating() {
        let (mut pt, mut f) = pt();
        assert_eq!(pt.translate(Vpn(5)), None);
        let p = pt.walk_path(Vpn(5), &mut f);
        assert_eq!(pt.translate(Vpn(5)), Some(p.ppn));
    }

    #[test]
    fn node_after_matches_walk() {
        let (mut pt, mut f) = pt();
        let p = pt.walk_path(Vpn(0x2_0000), &mut f);
        // A PWC hit at level 2 yields the node read at level 3.
        assert_eq!(pt.node_after(Vpn(0x2_0000), 2), Some(p.node_addrs[3]));
        // An unwalked subtree has no node.
        assert_eq!(pt.node_after(Vpn(0x7777_0000), 2), None);
    }

    #[test]
    fn entry_addrs_lie_within_their_node_frame() {
        let (mut pt, mut f) = pt();
        let p = pt.walk_path(Vpn(0x1FF), &mut f);
        for (e, n) in p.entry_addrs.iter().zip(&p.node_addrs) {
            assert!(e.0 >= n.0 && e.0 < n.0 + 4096, "entry outside node frame");
        }
    }

    #[test]
    fn reservation_maps_aligned_groups_contiguously() {
        let mut pt = PageTable::with_reservation(TenantId(0), PageSize::Small4K, 8);
        let mut f = FrameAlloc::new();
        let base = pt.walk_path(Vpn(11), &mut f).ppn;
        // First touch of vpn 11 mapped its whole group 8..16; page i of the
        // group sits i frames past the group base.
        assert_eq!(pt.touched_pages(), 8);
        let group_base = Ppn(base.0 - 3);
        for i in 0..8u64 {
            assert_eq!(
                pt.translate(Vpn(8 + i)),
                Some(Ppn(group_base.0 + i)),
                "page {i}"
            );
        }
        // Touching another page of the same group allocates nothing new.
        assert_eq!(pt.walk_path(Vpn(8), &mut f).ppn, group_base);
        assert_eq!(pt.touched_pages(), 8);
    }

    #[test]
    fn reservation_of_one_matches_plain_first_touch() {
        let (mut plain, mut f1) = pt();
        let mut res = PageTable::with_reservation(TenantId(0), PageSize::Small4K, 1);
        let mut f2 = FrameAlloc::new();
        for v in [7u64, 3, 900, 7] {
            assert_eq!(
                plain.walk_path(Vpn(v), &mut f1),
                res.walk_path(Vpn(v), &mut f2)
            );
        }
        assert_eq!(plain.touched_pages(), res.touched_pages());
    }

    #[test]
    fn index_at_slices_vpn() {
        let (pt, _) = pt();
        // VPN bits: [L0:9][L1:9][L2:9][L3:9]
        let vpn = Vpn((1 << 27) | (2 << 18) | (3 << 9) | 4);
        assert_eq!(pt.index_at(vpn, 0), 1);
        assert_eq!(pt.index_at(vpn, 1), 2);
        assert_eq!(pt.index_at(vpn, 2), 3);
        assert_eq!(pt.index_at(vpn, 3), 4);
    }
}
