//! The page-walk cache (PWC): cached partial translations.
//!
//! Before a walker starts a walk, the PWC is probed for the longest prefix
//! of the virtual page number that has a cached upper-level page-table node.
//! A hit lets the walk skip the upper levels, reducing a four-level walk to
//! 1–3 memory accesses (Barr et al., ISCA '10; paper §II).
//!
//! The PWC is shared by all walkers, so under multi-tenancy it is itself a
//! (minor) contended resource: walks from one tenant can evict another's
//! partial translations.

use walksteal_sim_core::{FnvMap, PhysAddr, TenantId, Vpn};

/// Result of a PWC probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcHit {
    /// The deepest level (0 = root) whose result was cached. The walk
    /// resumes *after* this level.
    pub level: usize,
    /// Physical address of the page-table node to continue from.
    pub node_addr: PhysAddr,
}

/// Valid bit in a packed [`PwCache::meta`] word; the remaining bits hold
/// the tenant id (bits 4..12) and level (bits 0..4).
const META_VALID: u16 = 0x8000;

/// Levels representable in a packed meta word.
const MAX_LEVELS: usize = 16;

#[inline]
fn pack_meta(tenant: TenantId, level: usize) -> u16 {
    debug_assert!(level < MAX_LEVELS, "page-table level {level} too deep");
    META_VALID | (u16::from(tenant.0) << 4) | level as u16
}

/// Index into the per-(tenant, level) live-entry counters.
#[inline]
fn live_slot(tenant: TenantId, level: usize) -> usize {
    usize::from(tenant.0) * MAX_LEVELS + level
}

/// Packs a (meta, prefix) lookup key into one word so the index map hashes
/// a single `u64`. Prefixes consume at most 9 bits per level over a 36-bit
/// VPN space, far below the 48-bit field.
#[inline]
fn index_key(meta: u16, prefix: u64) -> u64 {
    debug_assert!(prefix < 1 << 48, "PWC prefix overflows packed key");
    (u64::from(meta) << 48) | prefix
}

/// A fully-associative, LRU page-walk cache.
///
/// Entries are keyed by (tenant, level, VPN-prefix) and hold the physical
/// address of the page-table node a walk reaches after consuming that
/// prefix.
///
/// # Examples
///
/// ```
/// use walksteal_vm::PwCache;
/// use walksteal_sim_core::{PhysAddr, TenantId, Vpn};
///
/// let mut pwc = PwCache::new(4);
/// let vpn = Vpn(0x1 << 27); // level-0 prefix (top 9 bits of 36) is 0x1
/// assert!(pwc.probe(TenantId(0), vpn, 4).is_none());
/// // Cache the node reached after level 0 for this prefix.
/// pwc.fill(TenantId(0), 0, 0x1, PhysAddr(0x9000));
/// let hit = pwc.probe(TenantId(0), vpn, 4).unwrap();
/// assert_eq!(hit.level, 0);
/// assert_eq!(hit.node_addr, PhysAddr(0x9000));
/// ```
#[derive(Debug, Clone)]
pub struct PwCache {
    /// Hot probe tags, struct-of-arrays: a probe at one level compares
    /// `capacity` contiguous prefixes plus packed `valid|tenant|level`
    /// words instead of striding over 40-byte entries.
    prefixes: Vec<u64>,
    meta: Vec<u16>,
    /// Cold payload, touched only on hit/fill.
    node_addrs: Vec<PhysAddr>,
    /// Intrusive LRU list over slots: head = eviction victim, tail = most
    /// recently used. Equivalent to a first-minimum scan of use stamps:
    /// stamps are unique, and never-touched (invalid) slots keep their
    /// initial index order at the front.
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    lru_head: u32,
    lru_tail: u32,
    /// Valid entries per (tenant, level), so probes skip levels where this
    /// tenant has nothing cached without scanning.
    live: Vec<u32>,
    /// Exact lookup index `index_key(meta, prefix) -> slot`. Entries are
    /// unique per key (fills refresh in place), so the map answers the same
    /// entry a linear first-match scan would.
    index: FnvMap<u64, u32>,
    hits: u64,
    misses: u64,
}

impl PwCache {
    /// Creates a PWC with `capacity` entries (128 in the paper's baseline).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PwCache {
            prefixes: vec![0; capacity],
            meta: vec![0; capacity],
            node_addrs: vec![PhysAddr(0); capacity],
            lru_prev: (0..capacity as u32)
                .map(|i| i.checked_sub(1).unwrap_or(u32::MAX))
                .collect(),
            lru_next: (1..=capacity as u32)
                .map(|i| if i == capacity as u32 { u32::MAX } else { i })
                .collect(),
            lru_head: 0,
            lru_tail: capacity as u32 - 1,
            live: vec![0; (usize::from(u8::MAX) + 1) * MAX_LEVELS],
            index: FnvMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Moves slot `i` to the most-recently-used end of the LRU list.
    fn lru_touch(&mut self, i: u32) {
        if self.lru_tail == i {
            return;
        }
        // Unlink.
        let (prev, next) = (self.lru_prev[i as usize], self.lru_next[i as usize]);
        if prev == u32::MAX {
            self.lru_head = next;
        } else {
            self.lru_next[prev as usize] = next;
        }
        if next != u32::MAX {
            self.lru_prev[next as usize] = prev;
        }
        // Append at tail.
        self.lru_prev[i as usize] = self.lru_tail;
        self.lru_next[i as usize] = u32::MAX;
        self.lru_next[self.lru_tail as usize] = i;
        self.lru_tail = i;
    }

    /// The VPN prefix consumed by levels `0..=level` for a table of
    /// `levels` levels with 9 index bits per level.
    fn prefix_of(vpn: Vpn, level: usize, levels: usize) -> u64 {
        let shift = 9 * (levels - 1 - level) as u64;
        vpn.0 >> shift
    }

    /// Finds the longest-prefix match for `vpn` in a `levels`-level table.
    ///
    /// Checks the deepest cacheable level first (`levels - 2`, i.e. the
    /// prefix that leaves only the leaf access) down to the root.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn, levels: usize) -> Option<PwcHit> {
        // Levels `0..levels-1` produce reusable node pointers; the final
        // level's result is the translation itself (that goes in the TLB).
        for level in (0..levels.saturating_sub(1)).rev() {
            if self.live[live_slot(tenant, level)] == 0 {
                continue;
            }
            let prefix = Self::prefix_of(vpn, level, levels);
            let want = pack_meta(tenant, level);
            if let Some(&i) = self.index.get(&index_key(want, prefix)) {
                self.lru_touch(i);
                self.hits += 1;
                return Some(PwcHit {
                    level,
                    node_addr: self.node_addrs[i as usize],
                });
            }
        }
        self.misses += 1;
        None
    }

    /// Resolves a same-cycle batch of probes for one tenant in one pass,
    /// appending one result per VPN to `out` (cleared first).
    ///
    /// A probe never inserts or evicts, so every repeat of a VPN within
    /// the batch resolves to the entry its first lookup found: consecutive
    /// repeats skip the per-level prefix search and replay only the
    /// per-probe bookkeeping (LRU touch, hit/miss counters). State
    /// evolution is identical to calling [`probe`](Self::probe) once per
    /// element in order (pinned by `tests/batch_differential.rs`).
    pub fn probe_batch(
        &mut self,
        tenant: TenantId,
        vpns: &[Vpn],
        levels: usize,
        out: &mut Vec<Option<PwcHit>>,
    ) {
        out.clear();
        out.reserve(vpns.len());
        let mut memo: Option<(Vpn, Option<(u32, PwcHit)>)> = None;
        for &vpn in vpns {
            let found = match memo {
                Some((v, f)) if v == vpn => f,
                _ => {
                    let mut f = None;
                    for level in (0..levels.saturating_sub(1)).rev() {
                        if self.live[live_slot(tenant, level)] == 0 {
                            continue;
                        }
                        let prefix = Self::prefix_of(vpn, level, levels);
                        let want = pack_meta(tenant, level);
                        if let Some(&i) = self.index.get(&index_key(want, prefix)) {
                            f = Some((
                                i,
                                PwcHit {
                                    level,
                                    node_addr: self.node_addrs[i as usize],
                                },
                            ));
                            break;
                        }
                    }
                    memo = Some((vpn, f));
                    f
                }
            };
            if let Some((i, hit)) = found {
                self.lru_touch(i);
                self.hits += 1;
                out.push(Some(hit));
            } else {
                self.misses += 1;
                out.push(None);
            }
        }
    }

    /// Inserts (or refreshes) a partial translation: after consuming
    /// `prefix` at `level`, the walk continues from `node_addr`.
    pub fn fill(&mut self, tenant: TenantId, level: usize, prefix: u64, node_addr: PhysAddr) {
        let want = pack_meta(tenant, level);
        if let Some(&i) = self.index.get(&index_key(want, prefix)) {
            self.node_addrs[i as usize] = node_addr;
            self.lru_touch(i);
            return;
        }
        let victim = self.lru_head as usize;
        let old = self.meta[victim];
        if old & META_VALID != 0 {
            let old_tenant = TenantId((old >> 4) as u8);
            let old_level = (old & 0xf) as usize;
            self.live[live_slot(old_tenant, old_level)] -= 1;
            self.index.remove(&index_key(old, self.prefixes[victim]));
        }
        self.prefixes[victim] = prefix;
        self.meta[victim] = want;
        self.node_addrs[victim] = node_addr;
        self.live[live_slot(tenant, level)] += 1;
        self.index.insert(index_key(want, prefix), victim as u32);
        self.lru_touch(victim as u32);
    }

    /// Convenience: fills all cacheable levels of a completed walk.
    ///
    /// `node_addrs[i]` is the node visited at level `i`; the entry for level
    /// `i` caches `node_addrs[i + 1]` (the node the prefix leads to).
    pub fn fill_walk(&mut self, tenant: TenantId, vpn: Vpn, node_addrs: &[PhysAddr]) {
        let levels = node_addrs.len();
        for level in 0..levels.saturating_sub(1) {
            let prefix = Self::prefix_of(vpn, level, levels);
            self.fill(tenant, level, prefix, node_addrs[level + 1]);
        }
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses (no prefix at all) since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    #[test]
    fn cold_probe_misses() {
        let mut pwc = PwCache::new(8);
        assert!(pwc.probe(T0, Vpn(0), 4).is_none());
        assert_eq!(pwc.misses(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut pwc = PwCache::new(8);
        let vpn = Vpn(0x12345); // 4-level: prefixes at L0 = vpn>>27, L1 = >>18, L2 = >>9
        pwc.fill(T0, 0, vpn.0 >> 27, PhysAddr(0x1000));
        pwc.fill(T0, 2, vpn.0 >> 9, PhysAddr(0x3000));
        let hit = pwc.probe(T0, vpn, 4).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.node_addr, PhysAddr(0x3000));
    }

    #[test]
    fn fill_walk_caches_all_upper_levels() {
        let mut pwc = PwCache::new(8);
        let nodes = [
            PhysAddr(0x1000),
            PhysAddr(0x2000),
            PhysAddr(0x3000),
            PhysAddr(0x4000),
        ];
        pwc.fill_walk(T0, Vpn(0x777), &nodes);
        // Deepest cached level is 2 -> continue at node_addrs[3].
        let hit = pwc.probe(T0, Vpn(0x777), 4).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.node_addr, PhysAddr(0x4000));
        assert_eq!(pwc.occupancy(), 3);
    }

    #[test]
    fn sibling_page_hits_shared_prefix() {
        let mut pwc = PwCache::new(8);
        let nodes = [
            PhysAddr(0x1000),
            PhysAddr(0x2000),
            PhysAddr(0x3000),
            PhysAddr(0x4000),
        ];
        pwc.fill_walk(T0, Vpn(0x200), &nodes);
        // VPN 0x201 shares all upper levels with 0x200.
        let hit = pwc.probe(T0, Vpn(0x201), 4).unwrap();
        assert_eq!(hit.level, 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let mut pwc = PwCache::new(8);
        pwc.fill(T0, 2, 0x5, PhysAddr(0x1000));
        assert!(pwc.probe(T1, Vpn(0x5 << 9), 4).is_none());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut pwc = PwCache::new(2);
        pwc.fill(T0, 0, 1, PhysAddr(0x1));
        pwc.fill(T0, 0, 2, PhysAddr(0x2));
        // Touch prefix 1 so prefix 2 is LRU.
        assert!(pwc.probe(T0, Vpn(1 << 27), 4).is_some());
        pwc.fill(T0, 0, 3, PhysAddr(0x3));
        assert!(pwc.probe(T0, Vpn(2 << 27), 4).is_none(), "prefix 2 evicted");
        assert!(pwc.probe(T0, Vpn(1 << 27), 4).is_some());
    }

    #[test]
    fn refill_updates_in_place() {
        let mut pwc = PwCache::new(2);
        pwc.fill(T0, 1, 7, PhysAddr(0x1));
        pwc.fill(T0, 1, 7, PhysAddr(0x9));
        assert_eq!(pwc.occupancy(), 1);
        let hit = pwc.probe(T0, Vpn(7 << 18), 4).unwrap();
        assert_eq!(hit.node_addr, PhysAddr(0x9));
    }

    #[test]
    fn three_level_tables_probe_two_levels() {
        let mut pwc = PwCache::new(4);
        // For 3 levels, cacheable levels are 0 and 1.
        pwc.fill(T0, 1, 0x3, PhysAddr(0x5000));
        let hit = pwc.probe(T0, Vpn(0x3 << 9), 3).unwrap();
        assert_eq!(hit.level, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = PwCache::new(0);
    }
}
