//! The page-walk cache (PWC): cached partial translations.
//!
//! Before a walker starts a walk, the PWC is probed for the longest prefix
//! of the virtual page number that has a cached upper-level page-table node.
//! A hit lets the walk skip the upper levels, reducing a four-level walk to
//! 1–3 memory accesses (Barr et al., ISCA '10; paper §II).
//!
//! The PWC is shared by all walkers, so under multi-tenancy it is itself a
//! (minor) contended resource: walks from one tenant can evict another's
//! partial translations.

use walksteal_sim_core::{PhysAddr, TenantId, Vpn};

/// Result of a PWC probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcHit {
    /// The deepest level (0 = root) whose result was cached. The walk
    /// resumes *after* this level.
    pub level: usize,
    /// Physical address of the page-table node to continue from.
    pub node_addr: PhysAddr,
}

#[derive(Debug, Clone, Copy)]
struct PwcEntry {
    tenant: TenantId,
    level: usize,
    prefix: u64,
    node_addr: PhysAddr,
    last_use: u64,
    valid: bool,
}

/// A fully-associative, LRU page-walk cache.
///
/// Entries are keyed by (tenant, level, VPN-prefix) and hold the physical
/// address of the page-table node a walk reaches after consuming that
/// prefix.
///
/// # Examples
///
/// ```
/// use walksteal_vm::PwCache;
/// use walksteal_sim_core::{PhysAddr, TenantId, Vpn};
///
/// let mut pwc = PwCache::new(4);
/// let vpn = Vpn(0x1 << 27); // level-0 prefix (top 9 bits of 36) is 0x1
/// assert!(pwc.probe(TenantId(0), vpn, 4).is_none());
/// // Cache the node reached after level 0 for this prefix.
/// pwc.fill(TenantId(0), 0, 0x1, PhysAddr(0x9000));
/// let hit = pwc.probe(TenantId(0), vpn, 4).unwrap();
/// assert_eq!(hit.level, 0);
/// assert_eq!(hit.node_addr, PhysAddr(0x9000));
/// ```
#[derive(Debug, Clone)]
pub struct PwCache {
    entries: Vec<PwcEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PwCache {
    /// Creates a PWC with `capacity` entries (128 in the paper's baseline).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PwCache {
            entries: vec![
                PwcEntry {
                    tenant: TenantId(0),
                    level: 0,
                    prefix: 0,
                    node_addr: PhysAddr(0),
                    last_use: 0,
                    valid: false,
                };
                capacity
            ],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The VPN prefix consumed by levels `0..=level` for a table of
    /// `levels` levels with 9 index bits per level.
    fn prefix_of(vpn: Vpn, level: usize, levels: usize) -> u64 {
        let shift = 9 * (levels - 1 - level) as u64;
        vpn.0 >> shift
    }

    /// Finds the longest-prefix match for `vpn` in a `levels`-level table.
    ///
    /// Checks the deepest cacheable level first (`levels - 2`, i.e. the
    /// prefix that leaves only the leaf access) down to the root.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn, levels: usize) -> Option<PwcHit> {
        self.tick += 1;
        let tick = self.tick;
        // Levels `0..levels-1` produce reusable node pointers; the final
        // level's result is the translation itself (that goes in the TLB).
        for level in (0..levels.saturating_sub(1)).rev() {
            let prefix = Self::prefix_of(vpn, level, levels);
            for e in &mut self.entries {
                if e.valid && e.tenant == tenant && e.level == level && e.prefix == prefix {
                    e.last_use = tick;
                    self.hits += 1;
                    return Some(PwcHit {
                        level,
                        node_addr: e.node_addr,
                    });
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts (or refreshes) a partial translation: after consuming
    /// `prefix` at `level`, the walk continues from `node_addr`.
    pub fn fill(&mut self, tenant: TenantId, level: usize, prefix: u64, node_addr: PhysAddr) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.tenant == tenant && e.level == level && e.prefix == prefix)
        {
            e.node_addr = node_addr;
            e.last_use = tick;
            return;
        }
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("capacity > 0");
        *victim = PwcEntry {
            tenant,
            level,
            prefix,
            node_addr,
            last_use: tick,
            valid: true,
        };
    }

    /// Convenience: fills all cacheable levels of a completed walk.
    ///
    /// `node_addrs[i]` is the node visited at level `i`; the entry for level
    /// `i` caches `node_addrs[i + 1]` (the node the prefix leads to).
    pub fn fill_walk(&mut self, tenant: TenantId, vpn: Vpn, node_addrs: &[PhysAddr]) {
        let levels = node_addrs.len();
        for level in 0..levels.saturating_sub(1) {
            let prefix = Self::prefix_of(vpn, level, levels);
            self.fill(tenant, level, prefix, node_addrs[level + 1]);
        }
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses (no prefix at all) since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    #[test]
    fn cold_probe_misses() {
        let mut pwc = PwCache::new(8);
        assert!(pwc.probe(T0, Vpn(0), 4).is_none());
        assert_eq!(pwc.misses(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut pwc = PwCache::new(8);
        let vpn = Vpn(0x12345); // 4-level: prefixes at L0 = vpn>>27, L1 = >>18, L2 = >>9
        pwc.fill(T0, 0, vpn.0 >> 27, PhysAddr(0x1000));
        pwc.fill(T0, 2, vpn.0 >> 9, PhysAddr(0x3000));
        let hit = pwc.probe(T0, vpn, 4).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.node_addr, PhysAddr(0x3000));
    }

    #[test]
    fn fill_walk_caches_all_upper_levels() {
        let mut pwc = PwCache::new(8);
        let nodes = [
            PhysAddr(0x1000),
            PhysAddr(0x2000),
            PhysAddr(0x3000),
            PhysAddr(0x4000),
        ];
        pwc.fill_walk(T0, Vpn(0x777), &nodes);
        // Deepest cached level is 2 -> continue at node_addrs[3].
        let hit = pwc.probe(T0, Vpn(0x777), 4).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.node_addr, PhysAddr(0x4000));
        assert_eq!(pwc.occupancy(), 3);
    }

    #[test]
    fn sibling_page_hits_shared_prefix() {
        let mut pwc = PwCache::new(8);
        let nodes = [
            PhysAddr(0x1000),
            PhysAddr(0x2000),
            PhysAddr(0x3000),
            PhysAddr(0x4000),
        ];
        pwc.fill_walk(T0, Vpn(0x200), &nodes);
        // VPN 0x201 shares all upper levels with 0x200.
        let hit = pwc.probe(T0, Vpn(0x201), 4).unwrap();
        assert_eq!(hit.level, 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let mut pwc = PwCache::new(8);
        pwc.fill(T0, 2, 0x5, PhysAddr(0x1000));
        assert!(pwc.probe(T1, Vpn(0x5 << 9), 4).is_none());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut pwc = PwCache::new(2);
        pwc.fill(T0, 0, 1, PhysAddr(0x1));
        pwc.fill(T0, 0, 2, PhysAddr(0x2));
        // Touch prefix 1 so prefix 2 is LRU.
        assert!(pwc.probe(T0, Vpn(1 << 27), 4).is_some());
        pwc.fill(T0, 0, 3, PhysAddr(0x3));
        assert!(pwc.probe(T0, Vpn(2 << 27), 4).is_none(), "prefix 2 evicted");
        assert!(pwc.probe(T0, Vpn(1 << 27), 4).is_some());
    }

    #[test]
    fn refill_updates_in_place() {
        let mut pwc = PwCache::new(2);
        pwc.fill(T0, 1, 7, PhysAddr(0x1));
        pwc.fill(T0, 1, 7, PhysAddr(0x9));
        assert_eq!(pwc.occupancy(), 1);
        let hit = pwc.probe(T0, Vpn(7 << 18), 4).unwrap();
        assert_eq!(hit.node_addr, PhysAddr(0x9));
    }

    #[test]
    fn three_level_tables_probe_two_levels() {
        let mut pwc = PwCache::new(4);
        // For 3 levels, cacheable levels are 0 and 1.
        pwc.fill(T0, 1, 0x3, PhysAddr(0x5000));
        let hit = pwc.probe(T0, Vpn(0x3 << 9), 3).unwrap();
        assert_eq!(hit.level, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = PwCache::new(0);
    }
}
