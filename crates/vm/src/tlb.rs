//! Set-associative, LRU TLBs tagged by (tenant, virtual page).
//!
//! The same structure serves as a private per-SM L1 TLB (32 entries) and as
//! the shared L2 TLB (1024 entries, 16-way in the paper's baseline). Under
//! multi-tenancy, the shared L2 TLB is one of the two contended
//! virtual-memory resources; the TLB therefore tracks per-tenant occupancy
//! over time so experiments can report each tenant's *TLB share* (Fig. 9).

use walksteal_sim_core::{Cycle, Ppn, SimRng, TenantId, Vpn};

/// Replacement policy of a [`Tlb`].
///
/// Small private L1 TLBs use true LRU; large shared L2 TLBs use random
/// replacement (as hardware TLBs and GPGPU-Sim's model do). The choice is
/// load-bearing for multi-tenancy: random replacement lets a
/// walk-intensive tenant's fill stream probabilistically evict another
/// tenant's actively-reused entries — the shared-TLB thrash of §IV — while
/// true LRU would shield them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict a uniformly random way (invalid ways first).
    #[default]
    Random,
}

/// Geometry of a [`Tlb`].
///
/// # Examples
///
/// ```
/// use walksteal_vm::{Replacement, TlbConfig};
///
/// // The paper's shared L2 TLB: 1024 entries, 16-way.
/// let cfg = TlbConfig { sets: 64, ways: 16, replacement: Replacement::Random };
/// assert_eq!(cfg.entries(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl TlbConfig {
    /// Total entry capacity.
    #[must_use]
    pub fn entries(self) -> usize {
        self.sets * self.ways
    }
}

/// Valid bit in a packed [`Tlb::meta`] word; the low byte is the tenant id.
const META_VALID: u16 = 0x100;

/// A set-associative, LRU TLB holding translations for multiple tenants.
///
/// # Examples
///
/// ```
/// use walksteal_vm::{Replacement, Tlb, TlbConfig};
/// use walksteal_sim_core::{Cycle, Ppn, TenantId, Vpn};
///
/// let mut tlb = Tlb::new(TlbConfig { sets: 8, ways: 4, replacement: Replacement::Lru }, 2);
/// assert_eq!(tlb.probe(TenantId(0), Vpn(9)), None);
/// tlb.fill(TenantId(0), Vpn(9), Ppn(77), Cycle(10));
/// assert_eq!(tlb.probe(TenantId(0), Vpn(9)), Some(Ppn(77)));
/// // Another tenant's identical VPN does not alias.
/// assert_eq!(tlb.probe(TenantId(1), Vpn(9)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Hot probe tags, struct-of-arrays: a set probe compares `ways`
    /// contiguous VPNs plus `ways` contiguous packed `valid|tenant` words
    /// instead of striding over 32-byte entries.
    keys: Vec<u64>,
    meta: Vec<u16>,
    /// Cold payload, touched only on hit/fill.
    ppns: Vec<Ppn>,
    last_use: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Valid entries per tenant, kept incrementally.
    occupancy: Vec<usize>,
    /// Time-integral of per-tenant occupancy, for share reporting.
    occupancy_integral: Vec<f64>,
    last_update: Cycle,
    rng: SimRng,
}

impl Tlb {
    /// Creates an empty TLB able to track `n_tenants` tenants' occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways` is zero, or
    /// `n_tenants` is zero.
    #[must_use]
    pub fn new(cfg: TlbConfig, n_tenants: usize) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be positive");
        assert!(n_tenants > 0, "need at least one tenant");
        Tlb {
            cfg,
            keys: vec![0; cfg.sets * cfg.ways],
            meta: vec![0; cfg.sets * cfg.ways],
            ppns: vec![Ppn(0); cfg.sets * cfg.ways],
            last_use: vec![0; cfg.sets * cfg.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            occupancy: vec![0; n_tenants],
            occupancy_integral: vec![0.0; n_tenants],
            last_update: Cycle::ZERO,
            rng: SimRng::new(0x71b5_eed0 ^ (cfg.sets * 31 + cfg.ways) as u64),
        }
    }

    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.0 as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    /// Index of `(tenant, vpn)` within its set, in entry order.
    #[inline]
    fn find(&self, tenant: TenantId, vpn: Vpn) -> Option<usize> {
        let range = self.set_range(vpn);
        let want = META_VALID | u16::from(tenant.0);
        // Manual scan with the VPN compare first: it rejects almost every
        // way on its own, and the indexed loop avoids the zip iterator's
        // per-way bounds state (this runs on every translation).
        let (keys, meta) = (&self.keys[range.clone()], &self.meta[range.clone()]);
        for i in 0..keys.len() {
            if keys[i] == vpn.0 && meta[i] == want {
                return Some(range.start + i);
            }
        }
        None
    }

    /// Looks up `(tenant, vpn)`, updating LRU and hit/miss statistics.
    pub fn probe(&mut self, tenant: TenantId, vpn: Vpn) -> Option<Ppn> {
        self.tick += 1;
        if let Some(i) = self.find(tenant, vpn) {
            self.last_use[i] = self.tick;
            self.hits += 1;
            return Some(self.ppns[i]);
        }
        self.misses += 1;
        None
    }

    /// Resolves a same-cycle batch of probes in one pass over the tag
    /// arrays. `out` is cleared and receives one result per probe, in
    /// order.
    ///
    /// A probe never mutates tags, so every repeat of a `(tenant, vpn)`
    /// within the batch resolves to the way its first lookup found:
    /// consecutive repeats dedupe into a single tag scan whose result fans
    /// out, with only the per-probe bookkeeping (tick, LRU stamp, hit/miss
    /// counters) replayed. State evolution is identical to calling
    /// [`probe`](Self::probe) once per element in order (pinned by
    /// `tests/batch_differential.rs`).
    pub fn probe_batch(&mut self, probes: &[(TenantId, Vpn)], out: &mut Vec<Option<Ppn>>) {
        out.clear();
        out.reserve(probes.len());
        let mut memo: Option<(TenantId, Vpn, Option<usize>)> = None;
        for &(tenant, vpn) in probes {
            let way = match memo {
                Some((t, v, way)) if (t, v) == (tenant, vpn) => way,
                _ => {
                    let way = self.find(tenant, vpn);
                    memo = Some((tenant, vpn, way));
                    way
                }
            };
            self.tick += 1;
            if let Some(i) = way {
                self.last_use[i] = self.tick;
                self.hits += 1;
                out.push(Some(self.ppns[i]));
            } else {
                self.misses += 1;
                out.push(None);
            }
        }
    }

    /// As [`probe_batch`](Self::probe_batch) for a single-tenant run of
    /// probes, but stops after the first miss: a caller that *fills* on a
    /// miss (so later probes could see different tags) batches the leading
    /// hit run in one pass and resumes element-wise after handling the
    /// miss. Returns how many probes were consumed — every consumed probe,
    /// the trailing miss included, has its result in `out` and its
    /// bookkeeping applied exactly as a scalar [`probe`](Self::probe).
    pub fn probe_run(&mut self, tenant: TenantId, vpns: &[Vpn], out: &mut Vec<Option<Ppn>>) -> usize {
        out.clear();
        let mut memo: Option<(Vpn, usize)> = None;
        for (n, &vpn) in vpns.iter().enumerate() {
            let way = match memo {
                Some((v, way)) if v == vpn => Some(way),
                _ => self.find(tenant, vpn),
            };
            self.tick += 1;
            if let Some(i) = way {
                memo = Some((vpn, i));
                self.last_use[i] = self.tick;
                self.hits += 1;
                out.push(Some(self.ppns[i]));
            } else {
                self.misses += 1;
                out.push(None);
                return n + 1;
            }
        }
        vpns.len()
    }

    /// Checks residency without disturbing LRU or statistics.
    #[must_use]
    pub fn contains(&self, tenant: TenantId, vpn: Vpn) -> bool {
        self.find(tenant, vpn).is_some()
    }

    /// Integrates per-tenant occupancy up to `now`.
    fn advance_time(&mut self, now: Cycle) {
        let dt = now.saturating_since(self.last_update) as f64;
        if dt > 0.0 {
            for (acc, &occ) in self.occupancy_integral.iter_mut().zip(&self.occupancy) {
                *acc += occ as f64 * dt;
            }
            self.last_update = self.last_update.max(now);
        }
    }

    /// Inserts a translation at time `now`, evicting the set's LRU victim if
    /// needed. Returns the evicted mapping, if any.
    pub fn fill(
        &mut self,
        tenant: TenantId,
        vpn: Vpn,
        ppn: Ppn,
        now: Cycle,
    ) -> Option<(TenantId, Vpn)> {
        self.advance_time(now);
        self.tick += 1;
        let tick = self.tick;

        if let Some(i) = self.find(tenant, vpn) {
            self.last_use[i] = tick;
            self.ppns[i] = ppn;
            return None;
        }

        let range = self.set_range(vpn);
        let victim = match self.cfg.replacement {
            Replacement::Lru => {
                // First minimum of last_use (invalid ways count as 0),
                // matching `min_by_key` over the old entry array.
                let mut best = range.start;
                let mut best_key = if self.meta[best] & META_VALID != 0 {
                    self.last_use[best]
                } else {
                    0
                };
                for i in range.start + 1..range.end {
                    let key = if self.meta[i] & META_VALID != 0 {
                        self.last_use[i]
                    } else {
                        0
                    };
                    if key < best_key {
                        best = i;
                        best_key = key;
                    }
                }
                best
            }
            Replacement::Random => {
                // Prefer an invalid way; otherwise evict a random one.
                let ways = self.cfg.ways;
                let start = range.start;
                match self.meta[range].iter().position(|&m| m & META_VALID == 0) {
                    Some(i) => start + i,
                    None => start + self.rng.next_below(ways as u64) as usize,
                }
            }
        };
        let evicted = (self.meta[victim] & META_VALID != 0)
            .then(|| (TenantId(self.meta[victim] as u8), Vpn(self.keys[victim])));
        if let Some((t, _)) = evicted {
            self.occupancy[t.index()] -= 1;
        }
        self.keys[victim] = vpn.0;
        self.meta[victim] = META_VALID | u16::from(tenant.0);
        self.ppns[victim] = ppn;
        self.last_use[victim] = tick;
        self.occupancy[tenant.index()] += 1;
        evicted
    }

    /// Invalidates the single entry for `(tenant, vpn)` at time `now`, if
    /// resident — used when a coalescing organization promotes a base
    /// translation into a large-page range and must not map it twice.
    /// Returns whether an entry was dropped.
    pub fn invalidate_one(&mut self, tenant: TenantId, vpn: Vpn, now: Cycle) -> bool {
        if let Some(i) = self.find(tenant, vpn) {
            self.advance_time(now);
            self.meta[i] = 0;
            self.occupancy[tenant.index()] -= 1;
            true
        } else {
            false
        }
    }

    /// Invalidates every entry owned by `tenant` at time `now` — the TLB
    /// flush of a tenant departure. Occupancy integration runs up to `now`
    /// first, so share accounting credits the tenant for exactly the time
    /// its entries were resident. Returns how many entries were dropped.
    pub fn invalidate_tenant(&mut self, tenant: TenantId, now: Cycle) -> usize {
        self.advance_time(now);
        let want = META_VALID | u16::from(tenant.0);
        let mut dropped = 0;
        for m in &mut self.meta {
            if *m == want {
                *m = 0;
                dropped += 1;
            }
        }
        self.occupancy[tenant.index()] -= dropped;
        dropped
    }

    /// Current number of valid entries owned by `tenant`.
    #[must_use]
    pub fn occupancy_of(&self, tenant: TenantId) -> usize {
        self.occupancy[tenant.index()]
    }

    /// Time-averaged fraction of TLB capacity occupied by `tenant` over
    /// `[0, now]`.
    #[must_use]
    pub fn share_of(&self, tenant: TenantId, now: Cycle) -> f64 {
        let mut integral = self.occupancy_integral[tenant.index()];
        // Include the un-integrated tail up to `now`.
        let dt = now.saturating_since(self.last_update) as f64;
        integral += self.occupancy[tenant.index()] as f64 * dt;
        let denom = now.0 as f64 * self.cfg.entries() as f64;
        if denom == 0.0 {
            0.0
        } else {
            integral / denom
        }
    }

    /// Probe hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The TLB geometry.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(
            TlbConfig {
                sets: 2,
                ways: 2,
                replacement: Replacement::Lru,
            },
            2,
        )
    }

    #[test]
    fn random_replacement_fills_invalid_ways_first() {
        let mut t = Tlb::new(
            TlbConfig {
                sets: 1,
                ways: 4,
                replacement: Replacement::Random,
            },
            1,
        );
        for i in 0..4 {
            assert_eq!(t.fill(T0, Vpn(i), Ppn(i), Cycle(0)), None, "way {i}");
        }
        assert_eq!(t.occupancy_of(T0), 4);
        // Now full: the next fill evicts somebody.
        assert!(t.fill(T0, Vpn(9), Ppn(9), Cycle(0)).is_some());
    }

    #[test]
    fn random_replacement_eventually_evicts_active_entries() {
        // The property §IV depends on: under a fill stream, even an entry
        // that is probed constantly gets evicted with random replacement.
        let mut t = Tlb::new(
            TlbConfig {
                sets: 1,
                ways: 16,
                replacement: Replacement::Random,
            },
            2,
        );
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        let mut evicted = false;
        for i in 0..1000 {
            let _ = t.probe(T0, Vpn(0)); // keep it "hot"
            t.fill(T1, Vpn(100 + i), Ppn(1), Cycle(i));
            if !t.contains(T0, Vpn(0)) {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "random replacement should evict hot entries");
    }

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tiny();
        assert_eq!(t.probe(T0, Vpn(4)), None);
        t.fill(T0, Vpn(4), Ppn(9), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(4)), Some(Ppn(9)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn tenants_do_not_alias() {
        let mut t = tiny();
        t.fill(T0, Vpn(4), Ppn(9), Cycle(0));
        assert_eq!(t.probe(T1, Vpn(4)), None);
        t.fill(T1, Vpn(4), Ppn(10), Cycle(0));
        assert_eq!(t.probe(T0, Vpn(4)), Some(Ppn(9)));
        assert_eq!(t.probe(T1, Vpn(4)), Some(Ppn(10)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = tiny();
        // VPNs 0, 2, 4 map to set 0.
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        t.fill(T0, Vpn(2), Ppn(1), Cycle(0));
        t.probe(T0, Vpn(0)); // 2 becomes LRU
        let evicted = t.fill(T0, Vpn(4), Ppn(2), Cycle(0));
        assert_eq!(evicted, Some((T0, Vpn(2))));
    }

    #[test]
    fn cross_tenant_eviction_shifts_occupancy() {
        let mut t = tiny();
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        t.fill(T0, Vpn(2), Ppn(1), Cycle(0));
        assert_eq!(t.occupancy_of(T0), 2);
        // Tenant 1 fills the same set twice, evicting both of tenant 0's.
        t.fill(T1, Vpn(0), Ppn(5), Cycle(0));
        t.fill(T1, Vpn(2), Ppn(6), Cycle(0));
        assert_eq!(t.occupancy_of(T0), 0);
        assert_eq!(t.occupancy_of(T1), 2);
    }

    #[test]
    fn refill_same_vpn_updates_in_place() {
        let mut t = tiny();
        t.fill(T0, Vpn(4), Ppn(9), Cycle(0));
        assert_eq!(t.fill(T0, Vpn(4), Ppn(11), Cycle(0)), None);
        assert_eq!(t.probe(T0, Vpn(4)), Some(Ppn(11)));
        assert_eq!(t.occupancy_of(T0), 1);
    }

    #[test]
    fn share_integrates_over_time() {
        let mut t = tiny(); // 4 entries total
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        // From cycle 0 to 100, tenant 0 holds 1 of 4 entries.
        let share = t.share_of(T0, Cycle(100));
        assert!((share - 0.25).abs() < 1e-9, "share {share}");
        assert_eq!(t.share_of(T1, Cycle(100)), 0.0);
    }

    #[test]
    fn share_reflects_occupancy_changes() {
        let mut t = tiny();
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        t.fill(T0, Vpn(1), Ppn(1), Cycle(0));
        // At cycle 100, tenant1 takes over set 0 fully.
        t.fill(T1, Vpn(0), Ppn(2), Cycle(100));
        t.fill(T1, Vpn(2), Ppn(3), Cycle(100));
        // [0,100): T0 holds 2/4. [100,200): T0 holds 1/4 (vpn 1 in set 1).
        let share = t.share_of(T0, Cycle(200));
        assert!((share - 0.375).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn invalidate_tenant_flushes_only_that_tenant() {
        let mut t = tiny();
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        t.fill(T0, Vpn(1), Ppn(1), Cycle(0));
        t.fill(T1, Vpn(0), Ppn(2), Cycle(0));
        assert_eq!(t.invalidate_tenant(T0, Cycle(100)), 2);
        assert_eq!(t.occupancy_of(T0), 0);
        assert!(!t.contains(T0, Vpn(0)));
        assert!(t.contains(T1, Vpn(0)), "other tenant untouched");
        // Share accounting stops at the flush: [0,100) holds 2/4 entries,
        // nothing after.
        let share = t.share_of(T0, Cycle(200));
        assert!((share - 0.25).abs() < 1e-9, "share {share}");
        // Flushing again is a no-op.
        assert_eq!(t.invalidate_tenant(T0, Cycle(200)), 0);
    }

    #[test]
    fn contains_is_pure() {
        let mut t = tiny();
        t.fill(T0, Vpn(0), Ppn(0), Cycle(0));
        let h = t.hits();
        assert!(t.contains(T0, Vpn(0)));
        assert!(!t.contains(T1, Vpn(0)));
        assert_eq!(t.hits(), h);
    }

    #[test]
    fn share_zero_at_time_zero() {
        let t = tiny();
        assert_eq!(t.share_of(T0, Cycle(0)), 0.0);
    }

    #[test]
    fn probe_batch_matches_scalar_probes() {
        let mut a = tiny();
        let mut b = tiny();
        for (v, p) in [(0u64, 10u64), (2, 11), (5, 12)] {
            a.fill(T0, Vpn(v), Ppn(p), Cycle(0));
            b.fill(T0, Vpn(v), Ppn(p), Cycle(0));
        }
        let probes: Vec<(TenantId, Vpn)> = [0u64, 0, 3, 2, 2, 2, 5, 9, 9, 0]
            .into_iter()
            .map(|v| (T0, Vpn(v)))
            .collect();
        let mut batched = Vec::new();
        a.probe_batch(&probes, &mut batched);
        let scalar: Vec<Option<Ppn>> = probes.iter().map(|&(t, v)| b.probe(t, v)).collect();
        assert_eq!(batched, scalar);
        assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()));
        // LRU state must match too: same eviction from here on.
        assert_eq!(
            a.fill(T0, Vpn(4), Ppn(1), Cycle(1)),
            b.fill(T0, Vpn(4), Ppn(1), Cycle(1))
        );
    }

    #[test]
    fn probe_run_stops_after_first_miss() {
        let mut t = tiny();
        t.fill(T0, Vpn(0), Ppn(7), Cycle(0));
        let vpns = [Vpn(0), Vpn(0), Vpn(3), Vpn(0)];
        let mut out = Vec::new();
        let consumed = t.probe_run(T0, &vpns, &mut out);
        assert_eq!(consumed, 3);
        assert_eq!(out, vec![Some(Ppn(7)), Some(Ppn(7)), None]);
        assert_eq!(t.hits(), 2);
        assert_eq!(t.misses(), 1);
    }
}
